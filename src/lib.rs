//! # thread-locality
//!
//! A Rust reproduction of **"Thread Scheduling for Cache Locality"**
//! (Philbin, Edler, Anshus, Douglas, Li — ASPLOS VII, 1996): a
//! fine-grained, run-to-completion thread package whose scheduler uses
//! per-thread *address hints* to order execution for second-level-cache
//! locality, together with everything needed to reproduce the paper's
//! evaluation — a Pixie-style tracing substrate, a DineroIII-style
//! cache simulator with compulsory/capacity/conflict classification,
//! models of the paper's two SGI machines, and the four benchmark
//! applications in every published variant.
//!
//! This crate is a facade: it re-exports the workspace members so that
//! examples and downstream users can depend on one crate.
//!
//! * [`sched`] — the thread package ([`sched::Scheduler`],
//!   [`sched::Hints`], [`sched::SchedulerConfig`], bin tours,
//!   baselines).
//! * [`trace`] — traced containers and trace sinks.
//! * [`sim`] — the cache simulator and machine models.
//! * [`apps`] — matmul, PDE, SOR, and Barnes–Hut N-body workloads.
//!
//! # Quickstart
//!
//! Reorder fine-grained work for cache locality (the paper's §2.4
//! example, a blocked matrix-multiply schedule):
//!
//! ```
//! use thread_locality::sched::{Hints, RunMode, Scheduler, SchedulerConfig};
//!
//! // One "thread" per dot product, hinted by the two columns it reads.
//! fn dot(log: &mut Vec<(usize, usize)>, i: usize, j: usize) {
//!     log.push((i, j));
//! }
//!
//! let config = SchedulerConfig::for_cache(2 << 20, 2)?; // 2 MB L2, 2-D hints
//! let mut sched = Scheduler::new(config);
//! for i in 0..64usize {
//!     for j in 0..64usize {
//!         let a_col = 0x1000_0000u64 + (i as u64) * 8192;
//!         let b_col = 0x2000_0000u64 + (j as u64) * 8192;
//!         sched.fork(dot, i, j, Hints::two(a_col.into(), b_col.into()));
//!     }
//! }
//! let mut log = Vec::new();
//! let stats = sched.run(&mut log, RunMode::Consume);
//! assert_eq!(stats.threads_run, 64 * 64);
//! # Ok::<(), thread_locality::sched::ConfigError>(())
//! ```

/// The locality thread package (re-export of [`locality_sched`]).
pub mod sched {
    pub use locality_sched::*;
}

/// Memory-reference tracing substrate (re-export of [`memtrace`]).
pub mod trace {
    pub use memtrace::*;
}

/// Cache simulation and machine models (re-export of [`cachesim`]).
pub mod sim {
    pub use cachesim::*;
}

/// The paper's four applications (re-export of [`workloads`]).
pub mod apps {
    pub use workloads::*;
}

//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::ops::Range;

/// A size specification: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size` (proptest's
/// `prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

//! The [`Strategy`] trait and combinators.

use crate::{Arbitrary, TestRng};
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times a filtering strategy retries before giving up.
const FILTER_RETRIES: u32 = 1000;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, retrying on `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Keeps only generated values satisfying `f`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for [`any`](crate::any).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retries exhausted: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retries exhausted: {}", self.whence);
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

//! Workspace-local stand-in for the parts of the crates.io `proptest`
//! API this repository uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the *interface* its property tests need: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter_map`, range and
//! tuple strategies, [`collection::vec`], [`any`], `prop_oneof!`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and case index;
//!   re-running is deterministic, so the failure reproduces exactly.
//! * **Fixed case count** (default 64, `PROPTEST_CASES` overrides) —
//!   chosen so the whole suite stays fast in debug builds.
//! * `prop_assume!` skips the current case rather than resampling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic base seed for a named property.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The RNG for one case of one property.
pub fn test_rng(seed: u64, case: u32) -> TestRng {
    SmallRng::seed_from_u64(seed ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Generators for "any value of this type".
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        // Raw bit patterns: exercises subnormals, infinities, NaNs.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        f32::from_bits(rng.next_u32())
    }
}

/// Strategy producing arbitrary values of `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(binding in strategy, …) { … }`
/// expands to a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                let __seed = $crate::seed_for(stringify!($name));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_rng(__seed, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __run = move || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

//! Workspace-local stand-in for the parts of the crates.io `rand` API
//! this repository uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the *interface* it needs: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`]. The generator is a
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so statistical quality is
//! comparable; exact output streams are *not* guaranteed to match the
//! crates.io implementation, and nothing in this workspace depends on
//! them matching (tests assert determinism per seed, never golden
//! streams).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used
/// in this workspace).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without an explicit range.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone keeps the result exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// 53 random mantissa bits in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand seeds.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator; aliased to [`SmallRng`] here.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_u64, Rng};

    /// Random slice operations (only `shuffle` and `choose` are
    /// provided).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..=3);
            assert!(u <= 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle is ordered w.p. 1/100!");
    }
}

//! Workspace-local stand-in for the parts of the crates.io `criterion`
//! API this repository's benches use.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal wall-clock bench harness with
//! criterion's interface: benchmark groups, `sample_size`,
//! `throughput`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. It reports median / mean per-iteration time and derived
//! throughput to stdout. There is no statistical regression analysis,
//! no warm-up tuning, and no HTML report — comparisons within one run
//! on one host remain meaningful, which is all the ablation and
//! overhead benches here need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration throughput denominator for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per measured routine call in
/// [`Bencher::iter_batched`]; sizing hints only — this harness always
/// sets up one input per call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The top-level bench context handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named group of benchmarks sharing sample and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measurement-time hint; accepted for interface compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Warm-up-time hint; accepted for interface compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample.
        let mut bencher = Bencher { elapsed_ns: 0.0 };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed_ns: 0.0 };
            f(&mut bencher);
            samples_ns.push(bencher.elapsed_ns);
        }
        samples_ns.sort_by(f64::total_cmp);
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / median * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "{}/{name}: median {} mean {} ({} samples){rate}",
            self.name,
            fmt_ns(median),
            fmt_ns(mean),
            samples_ns.len(),
        );
    }

    /// Ends the group (printing nothing extra; reports are per-bench).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    elapsed_ns: f64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Bundles bench functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            println!();
        }
    };
}

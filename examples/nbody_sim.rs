//! The paper's irregular case (§4.4): Barnes–Hut N-body, where no
//! compile-time information exists and only runtime hints can recover
//! locality — threads are hinted by the 3-D position of their body.
//!
//! Run with: `cargo run --release --example nbody_sim`

use thread_locality::apps::nbody;
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bodies = 8_000;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 8.0)
        .expect("valid scaled machine");
    println!("machine: {machine}");
    println!("problem: {bodies} bodies (Plummer cluster), 2 timesteps\n");

    let params = nbody::NBodyParams {
        plane_extent: 4 * (machine.l2_config().size() / 3),
        ..nbody::NBodyParams::default()
    };

    // Unthreaded: bodies processed in (shuffled) storage order.
    let mut space = AddressSpace::new();
    let mut data = nbody::NBodyData::new(&mut space, bodies, 11);
    data.shuffle_storage_order(5);
    let snapshot = data.snapshot();
    let mut sim = SimSink::new(machine.hierarchy());
    nbody::unthreaded(&mut data, 2, params, &mut sim);
    let unthreaded = sim.finish();
    let reference = data.snapshot();

    // Threaded: one force thread per body, 3-D position hints.
    let mut data2 = nbody::NBodyData::new(&mut space, bodies, 11);
    data2.restore(&snapshot);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::for_cache(machine.l2_config().size(), 3)?;
    let report = nbody::threaded(&mut data2, 2, params, config, &mut sim);
    sim.add_threads(report.threads);
    let threaded = sim.finish();

    // Same trajectories, different memory behaviour.
    assert_eq!(
        data2.snapshot(),
        reference,
        "trajectories must agree bitwise"
    );

    let sched = report.sched.as_ref().expect("threaded report");
    println!("threaded scheduling: {sched}");
    println!("  (the paper: 64,000 threads in 46 bins, \"much less uniform\" than matmul)\n");
    println!(
        "L2 misses   unthreaded {:>9}   threaded {:>9}   ({:.2}x fewer)",
        unthreaded.l2.misses(),
        threaded.l2.misses(),
        unthreaded.l2.misses() as f64 / threaded.l2.misses() as f64
    );
    println!(
        "L2 capacity unthreaded {:>9}   threaded {:>9}   (paper: 2.3x fewer)",
        unthreaded.classes.capacity, threaded.classes.capacity
    );
    println!(
        "modeled     unthreaded {:>8.3}s   threaded {:>8.3}s",
        unthreaded.time_on(&machine).total(),
        threaded.time_on(&machine).total()
    );
    Ok(())
}

//! The paper's PDE case (§4.3): a red-black Gauss–Seidel smoother whose
//! loop structure no compiler of the era could tile — regular,
//! cache-conscious, and thread-scheduled versions produce identical
//! numerics with very different cache behaviour.
//!
//! Run with: `cargo run --release --example pde_solver`

use thread_locality::apps::pde;
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 513;
    let iters = 5;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 16.0)
        .expect("valid scaled machine");
    println!("machine: {machine}");
    println!("problem: {n}x{n} grid, {iters} red-black iterations + residual\n");

    let mut results = Vec::new();
    for version in ["regular", "cache-conscious", "threaded"] {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, n, 7);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = match version {
            "regular" => pde::regular(&mut data, iters, &mut sim),
            "cache-conscious" => pde::cache_conscious(&mut data, iters, &mut sim),
            _ => {
                let config = SchedulerConfig::for_cache(machine.l2_config().size(), 1)?;
                let report = pde::threaded(&mut data, iters, config, &mut sim);
                sim.add_threads(report.threads);
                report
            }
        };
        let sim_report = sim.finish();
        println!(
            "{version:<16} residual inf-norm {:.3e}  L2 misses {:>7}  modeled {:.3}s",
            data.residual_inf_norm(),
            sim_report.l2.misses(),
            sim_report.time_on(&machine).total()
        );
        results.push((report.checksum, sim_report));
    }

    // All three versions compute the same answer bit for bit.
    assert_eq!(results[0].0, results[1].0);
    assert_eq!(results[0].0, results[2].0);
    println!("\nall versions agree bitwise; the fused versions pass the data");
    println!("through the cache once per iteration instead of twice-plus-one.");
    Ok(())
}

//! Define your own machine model and find the scheduler's sweet spot:
//! a block-size sweep over a custom cache hierarchy (the experiment
//! behind the paper's Figure 4).
//!
//! Run with: `cargo run --release --example custom_machine`

use thread_locality::apps::sor;
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{CacheConfig, HierarchyConfig, MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical embedded part: 8 KiB direct-mapped L1,
    // 256 KiB 8-way L2, slow DRAM.
    let machine = MachineModel::custom(
        "custom-embedded",
        200e6, // 200 MHz
        1.0,   // instructions per cycle
        10.0,  // L1 miss penalty, cycles
        400.0, // L2 miss penalty, ns
        HierarchyConfig::new(
            CacheConfig::new(8 << 10, 32, 1)?,
            CacheConfig::new(256 << 10, 64, 8)?,
        ),
        900.0, // per-thread overhead, ns
    );
    println!("machine: {machine}\n");

    // SOR at a size ~8x the L2, threaded, sweeping the block size.
    let n = 513;
    let sweeps = 10;
    println!("SOR {n}x{n}, {sweeps} sweeps, threaded; sweeping block size:\n");
    println!(
        "{:>10}  {:>9}  {:>10}  {:>9}",
        "block", "bins", "L2 misses", "modeled"
    );
    for shift in 13..=20 {
        let block = 1u64 << shift;
        let config = SchedulerConfig::builder().block_size(block).build()?;
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, n, 3);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = sor::threaded(&mut data, sweeps, config, &mut sim);
        sim.add_threads(report.threads);
        let sim_report = sim.finish();
        let bins = report
            .sched
            .as_ref()
            .map_or(0, thread_locality::sched::SchedulerStats::bins);
        println!(
            "{:>9}K  {:>9}  {:>10}  {:>8.3}s",
            block >> 10,
            bins,
            sim_report.l2.misses(),
            sim_report.time_on(&machine).total()
        );
    }
    println!("\nThe minimum sits where one block (and its neighbours) fit the");
    println!("L2; beyond the cache size the bins stop fitting and misses grow —");
    println!("the knee of the paper's Figure 4.");
    Ok(())
}

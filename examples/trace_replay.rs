//! Record a workload's memory-reference trace to a file (the Pixie
//! step) and replay it through different cache configurations (the
//! DineroIII step) — the paper's decoupled measurement pipeline.
//!
//! Run with: `cargo run --release --example trace_replay`
//!
//! The same replay is available as a standalone tool:
//! `cargo run -p cachesim --bin dinero -- --l2 256K:128:4 /tmp/pde.trace`

use thread_locality::apps::pde;
use thread_locality::sim::{CacheConfig, Hierarchy, HierarchyConfig, SimSink};
use thread_locality::trace::{AddressSpace, TraceFileReader, TraceFileWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("thread-locality-pde.trace");

    // 1. Record: run the PDE kernel once, writing the trace file.
    {
        let file = std::fs::File::create(&path)?;
        let mut writer = TraceFileWriter::new(file);
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, 129, 7);
        pde::regular(&mut data, 3, &mut writer);
        println!("recorded {} events to {}", writer.events(), path.display());
        writer.finish()?;
    }
    let bytes = std::fs::metadata(&path)?.len();
    println!("trace file: {:.1} MiB\n", bytes as f64 / (1 << 20) as f64);

    // 2. Replay through a sweep of L2 sizes — no re-execution needed.
    println!(
        "{:>8}  {:>10}  {:>12}  {:>12}",
        "L2", "L2 misses", "capacity", "compulsory"
    );
    for l2_kib in [32u64, 64, 128, 256, 512] {
        let hierarchy = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(16 << 10, 32, 1)?,
            CacheConfig::new(l2_kib << 10, 128, 4)?,
        ));
        let mut sim = SimSink::new(hierarchy);
        let file = std::fs::File::open(&path)?;
        TraceFileReader::new(file).replay(&mut sim)?;
        let report = sim.finish();
        println!(
            "{:>7}K  {:>10}  {:>12}  {:>12}",
            l2_kib,
            report.l2.misses(),
            report.classes.capacity,
            report.classes.compulsory
        );
    }
    println!("\nCapacity misses vanish once the working set fits; compulsory");
    println!("misses are invariant — the 3C structure, straight from one trace.");
    std::fs::remove_file(&path).ok();
    Ok(())
}

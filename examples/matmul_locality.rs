//! End-to-end reproduction of the paper's headline result on one
//! workload: threaded matrix multiply vs the best untiled loop, traced
//! through the R8000 cache model.
//!
//! Run with: `cargo run --release --example matmul_locality`

use thread_locality::apps::matmul;
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // n = 192: three 288 KiB matrices against a 64 KiB L2 — the same
    // "data is ~13x the cache" regime as the paper's n = 1024 vs 2 MB.
    let n = 192;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine");
    println!("machine: {machine}");
    println!(
        "problem: {n}x{n} doubles, {} KiB of matrices\n",
        3 * n * n * 8 / 1024
    );

    // Untiled baseline (the paper's "interchanged" loop).
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 1);
    let mut sim = SimSink::new(machine.hierarchy());
    matmul::interchanged(&mut data, &mut sim);
    let untiled = sim.finish();

    // Threaded: one thread per dot product, block = half the L2.
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 1);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::for_cache(machine.l2_config().size(), 2)?;
    let report = matmul::threaded(&mut data, config, &mut sim);
    sim.add_threads(report.threads);
    let threaded = sim.finish();

    println!("untiled interchanged:\n{untiled}\n");
    println!(
        "threaded ({}):\n{threaded}\n",
        report.sched.as_ref().expect("threaded report")
    );

    let untiled_time = untiled.time_on(&machine);
    let threaded_time = threaded.time_on(&machine);
    println!("modeled time untiled : {untiled_time}");
    println!("modeled time threaded: {threaded_time}");
    println!(
        "\nL2 misses cut {:.1}x; modeled speedup {:.2}x (paper measured 5.1x on the R8000)",
        untiled.l2.misses() as f64 / threaded.l2.misses() as f64,
        untiled_time.total() / threaded_time.total()
    );
    Ok(())
}

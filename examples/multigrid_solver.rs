//! The application the paper's PDE kernel lives in: a multigrid V-cycle
//! Poisson solver, with the smoother in each of the paper's three
//! flavours — same bits out, different cache traffic.
//!
//! Run with: `cargo run --release --example multigrid_solver`

use thread_locality::apps::multigrid::{Multigrid, Smoother};
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::{AddressSpace, NullSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 513;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 16.0)
        .expect("valid scaled machine");
    println!("machine: {machine}");
    println!("problem: -∇²u = f on {n}x{n}, V(2,2) cycles\n");

    // Convergence: the V-cycle's raison d'être.
    let mut space = AddressSpace::new();
    let mut mg = Multigrid::new(&mut space, n, 7);
    println!("levels: {}", mg.levels());
    let mut norm = mg.residual_norm(&mut NullSink);
    println!("residual inf-norm per V-cycle:");
    print!("  {norm:9.2e}");
    for _ in 0..6 {
        mg.v_cycle(2, 2, Smoother::CacheConscious, &mut NullSink);
        norm = mg.residual_norm(&mut NullSink);
        print!(" -> {norm:9.2e}");
    }
    println!("\n");

    // Cache behaviour of one V-cycle under each smoother.
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "smoother", "L2 misses", "L2 capacity", "modeled"
    );
    let sched_config = SchedulerConfig::for_cache(machine.l2_config().size(), 1)?;
    for (name, smoother) in [
        ("regular", Smoother::Regular),
        ("cache-conscious", Smoother::CacheConscious),
        ("threaded", Smoother::Threaded(sched_config)),
    ] {
        let mut space = AddressSpace::new();
        let mut mg = Multigrid::new(&mut space, n, 7);
        let mut sim = SimSink::new(machine.hierarchy());
        mg.v_cycle(2, 2, smoother, &mut sim);
        let checksum = mg.checksum();
        let report = sim.finish();
        println!(
            "{:<16} {:>10} {:>12} {:>9.3}s   (checksum {checksum:+.6e})",
            name,
            report.l2.misses(),
            report.classes.capacity,
            report.time_on(&machine).total()
        );
    }
    println!("\nIdentical checksums: the fused and threaded smoothers change only");
    println!("the order in which the same arithmetic happens — and the misses.");
    Ok(())
}

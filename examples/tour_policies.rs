//! Ablation of a design choice the paper leaves open: the bin *tour*.
//! "Scheduling involves traversing the bins along some path, preferably
//! the shortest one" — the implementation used allocation order. This
//! example compares allocation order against sorted, Hilbert-curve,
//! Morton, and random tours on the threaded matrix multiply.
//!
//! Run with: `cargo run --release --example tour_policies`

use thread_locality::apps::matmul;
use thread_locality::sched::{SchedulerConfig, Tour};
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 160;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine");
    println!("machine: {machine}");
    println!("threaded matmul, n = {n}; block = L2/2; varying the bin tour:\n");
    println!(
        "{:>18}  {:>10}  {:>12}  {:>9}",
        "tour", "L2 misses", "L2 capacity", "modeled"
    );

    let block = machine.l2_config().size() / 2;
    for (name, tour) in [
        ("allocation-order", Tour::AllocationOrder),
        ("sorted-key", Tour::SortedKey),
        ("hilbert", Tour::Hilbert),
        ("morton", Tour::Morton),
        ("random", Tour::Random(42)),
    ] {
        let config = SchedulerConfig::builder()
            .block_size(block.next_power_of_two() / 2)
            .tour(tour)
            .build()?;
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, n, 9);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
        let sim_report = sim.finish();
        println!(
            "{:>18}  {:>10}  {:>12}  {:>8.3}s",
            name,
            sim_report.l2.misses(),
            sim_report.classes.capacity,
            sim_report.time_on(&machine).total()
        );
    }
    println!("\nIntra-bin locality does most of the work (even the random tour");
    println!("keeps each bin's working set resident); smarter tours shave the");
    println!("inter-bin transitions, worth one block reload per step.");
    Ok(())
}

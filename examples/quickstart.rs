//! Quickstart: fork fine-grained threads with address hints and watch
//! the scheduler group them by locality.
//!
//! Run with: `cargo run --example quickstart`

use thread_locality::sched::{Hints, RunMode, Scheduler, SchedulerConfig};

/// The per-thread work record: which (i, j) ran, in order.
type Log = Vec<(usize, usize)>;

fn work(log: &mut Log, i: usize, j: usize) {
    log.push((i, j));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with a 64 KiB last-level cache and 2-D hints: the paper's
    // default rule sizes each block dimension at half the cache.
    let config = SchedulerConfig::for_cache(64 << 10, 2)?;
    let mut sched = Scheduler::new(config);

    // Pretend we have two arrays of 8 columns x 8 KiB, and a unit of
    // work per column pair — e.g. a dot product. Fork order is row
    // major (i outer), the natural program order.
    let a_base = 0x1000_0000u64;
    let b_base = 0x2000_0000u64;
    let col = 8 << 10;
    for i in 0..8usize {
        for j in 0..8usize {
            sched.fork(
                work,
                i,
                j,
                Hints::two(
                    (a_base + i as u64 * col).into(),
                    (b_base + j as u64 * col).into(),
                ),
            );
        }
    }

    println!("scheduled: {}", sched.stats());
    let mut log = Log::new();
    let stats = sched.run(&mut log, RunMode::Consume);
    println!("ran: {stats}\n");

    // Threads sharing a (block_i, block_j) cell ran back to back, so
    // each cache-sized chunk of the two arrays was reused before being
    // evicted:
    println!("execution order (i, j), grouped as the scheduler emitted it:");
    for chunk in log.chunks(16) {
        let cells: Vec<String> = chunk.iter().map(|(i, j)| format!("{i}{j}")).collect();
        println!("  {}", cells.join(" "));
    }
    println!("\nNote how all pairs from the same 4x4 block run adjacently —");
    println!("the paper's Figure 2, reproduced.");
    Ok(())
}

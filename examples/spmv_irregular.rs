//! Extension workload: sparse matrix–vector product with a shuffled
//! work list. The access pattern is entirely data-dependent — the case
//! the paper's introduction motivates ("data might be allocated
//! dynamically or accessed indirectly") — and a one-address hint per
//! row is enough for the scheduler to restore the matrix's band
//! structure.
//!
//! Run with: `cargo run --release --example spmv_irregular`

use thread_locality::apps::spmv;
use thread_locality::sched::SchedulerConfig;
use thread_locality::sim::{MachineModel, SimSink};
use thread_locality::trace::AddressSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 65_536; // x = 512 KiB
    let band = 64;
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine"); // 64 KiB L2
    println!("machine: {machine}");
    println!("problem: {n}x{n} banded CSR (half-width {band}), shuffled work list\n");

    // Baseline: rows in work-list order.
    let mut space = AddressSpace::new();
    let mut data = spmv::SpmvData::banded(&mut space, n, band, 6, 9);
    println!("nonzeros: {}", data.nnz());
    let mut sim = SimSink::new(machine.hierarchy());
    spmv::worklist(&mut data, &mut sim);
    let baseline = sim.finish();
    let reference = data.checksum();

    // Threaded: one thread per row, hinted by its x segment.
    let mut space = AddressSpace::new();
    let mut data = spmv::SpmvData::banded(&mut space, n, band, 6, 9);
    let mut sim = SimSink::new(machine.hierarchy());
    let config = SchedulerConfig::builder()
        .block_size(machine.l2_config().size() / 4)
        .build()?;
    let report = spmv::threaded(&mut data, config, &mut sim);
    sim.add_threads(report.threads);
    let binned = sim.finish();

    assert_eq!(data.checksum(), reference, "same product either way");
    println!("scheduling: {}\n", report.sched.as_ref().expect("threaded"));
    println!(
        "L2 misses   work-list {:>9}   binned {:>9}   ({:.2}x fewer)",
        baseline.l2.misses(),
        binned.l2.misses(),
        baseline.l2.misses() as f64 / binned.l2.misses() as f64
    );
    println!(
        "L2 capacity work-list {:>9}   binned {:>9}",
        baseline.classes.capacity, binned.classes.capacity
    );
    println!(
        "modeled     work-list {:>8.3}s   binned {:>8.3}s",
        baseline.time_on(&machine).total(),
        binned.time_on(&machine).total()
    );
    println!("\nOne address per row — the first x entry it reads — was enough to");
    println!("recover the band structure the shuffled work list destroyed.");
    Ok(())
}

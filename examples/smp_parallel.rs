//! The paper's SMP future work, demonstrated: locality bins double as
//! cache-affinity work units for multiple cores. Each worker claims
//! whole bins, so a bin's cache-sized working set is loaded into one
//! core's cache exactly once.
//!
//! Run with: `cargo run --release --example smp_parallel`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use thread_locality::sched::{Hints, ParScheduler, SchedulerConfig};
use thread_locality::trace::{AddressSpace, MatrixLayout, TracedMatrix};

/// Shared context: read-only operand matrices plus an atomic output
/// (f64 bit-patterns), so dot-product threads write disjoint cells
/// without locks.
struct MatMulCtx {
    at: TracedMatrix,
    b: TracedMatrix,
    c: Vec<AtomicU64>,
    n: usize,
}

fn dot_product(ctx: &MatMulCtx, i: usize, j: usize) {
    let mut acc = 0.0f64;
    for k in 0..ctx.n {
        acc += ctx.at.at(k, i) * ctx.b.at(k, j);
    }
    ctx.c[j * ctx.n + i].store(acc.to_bits(), Ordering::Relaxed);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 640;
    let mut space = AddressSpace::new();
    let at = TracedMatrix::from_fn(&mut space, n, n, MatrixLayout::ColMajor, |i, j| {
        ((i * 31 + j * 17) % 97) as f64 / 97.0
    });
    let b = TracedMatrix::from_fn(&mut space, n, n, MatrixLayout::ColMajor, |i, j| {
        ((i * 13 + j * 41) % 89) as f64 / 89.0
    });
    let ctx = MatMulCtx {
        at,
        b,
        c: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
        n,
    };

    // Block = half of a typical 2 MB L2, 2-D hints on the columns.
    let config = SchedulerConfig::for_cache(2 << 20, 2)?;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "parallel threaded matmul, n = {n}, {} threads ({} core(s) available —\nspeedup is bounded by that)\n",
        n * n,
        cores
    );
    println!("{:>8}  {:>10}  {:>8}", "workers", "wall time", "speedup");

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let mut sched: ParScheduler<MatMulCtx> = ParScheduler::new(config);
        for i in 0..n {
            for j in 0..n {
                sched.fork(
                    dot_product,
                    i,
                    j,
                    Hints::two(ctx.at.col_addr(i), ctx.b.col_addr(j)),
                );
            }
        }
        let start = Instant::now();
        let stats = sched.run(&ctx, workers);
        let elapsed = start.elapsed();
        assert_eq!(stats.threads_run, (n * n) as u64);
        let base = *baseline.get_or_insert(elapsed.as_secs_f64());
        println!(
            "{workers:>8}  {:>9.3}s  {:>7.2}x",
            elapsed.as_secs_f64(),
            base / elapsed.as_secs_f64()
        );
    }

    // Verify one output cell against a direct dot product.
    let check = f64::from_bits(ctx.c[5 * n + 3].load(Ordering::Relaxed));
    let mut expect = 0.0;
    for k in 0..n {
        expect += ctx.at.at(k, 3) * ctx.b.at(k, 5);
    }
    assert_eq!(check, expect);
    println!("\nresult verified; bins served as per-core affinity units.");
    Ok(())
}

//! The shipped [`BinPolicy`] permutations, replayed over recorded
//! hints.
//!
//! The analyzer never reaches into scheduler internals: bin membership
//! and dispatch order are recomputed from the public policy API by
//! *mirror replay* — fork one marker thread per recorded hint list into
//! a fresh [`Scheduler`] under the policy being checked, run it, and
//! log the fork indices in execution order. The engine is deterministic
//! given (config, policy, fork-ordered hints), so the marker
//! permutation is exactly the permutation the real run used.

use locality_sched::{
    BinPolicy, Hints, PaperBlockHash, RunMode, Scheduler, SchedulerConfig, SingleBin, UniqueBin,
    MAX_DIMS,
};
use memtrace::{SchedLogSink, ScheduleLog};
use std::collections::HashMap;

/// The shipped bin-policy families `schedlint` proves safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`PaperBlockHash`] derived from the capture's config (the
    /// paper's flat L2 policy, the default everywhere).
    Paper,
    /// [`Hierarchical`](locality_sched::Hierarchical) L1-in-L2 nesting
    /// (skipped when the capture provides no hierarchical geometry).
    Hierarchical,
    /// [`SingleBin`] — FIFO order, the paper's "touch" baseline.
    Single,
    /// [`UniqueBin`] — one bin per thread (the random-shuffle
    /// baseline's binning; under the allocation-order tour it
    /// preserves fork order).
    Unique,
}

impl PolicyKind {
    /// Every shipped policy family.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Paper,
        PolicyKind::Hierarchical,
        PolicyKind::Single,
        PolicyKind::Unique,
    ];

    /// Short report label.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Paper => "paper",
            PolicyKind::Hierarchical => "hierarchical",
            PolicyKind::Single => "single",
            PolicyKind::Unique => "unique",
        }
    }
}

fn mark(log: &mut Vec<usize>, index: usize, _unused: usize) {
    log.push(index);
}

/// Replays `hints` (fork order) through a fresh scheduler under
/// `policy` and returns the dispatch permutation: element `k` is the
/// fork index of the `k`-th thread to execute.
///
/// # Panics
///
/// Panics if the scheduler does not run exactly one marker per fork —
/// impossible for the shipped engine, and worth a loud failure if a
/// future engine breaks it.
pub fn dispatch_order<P: BinPolicy>(
    config: SchedulerConfig,
    policy: P,
    hints: &[Hints],
) -> Vec<usize> {
    let mut sched: Scheduler<Vec<usize>, P> = Scheduler::with_policy(config, policy);
    for (index, &h) in hints.iter().enumerate() {
        sched.fork(mark, index, 0, h);
    }
    let mut log = Vec::with_capacity(hints.len());
    sched.run(&mut log, RunMode::Consume);
    assert_eq!(log.len(), hints.len(), "marker replay lost threads");
    log
}

/// A mirror replay with its schedule-event stream: the dispatch
/// permutation plus the [`ScheduleLog`] of the serial drain (forks,
/// drain-unit begin/end, dispatches — resolved to fork indices — and
/// the final barrier), ready for happens-before indexing.
#[derive(Clone, Debug)]
pub struct DispatchTrace {
    /// Dispatch permutation: element `k` is the fork index of the
    /// `k`-th thread to execute.
    pub order: Vec<usize>,
    /// The serial drain's schedule-event stream, fork-labeled.
    pub log: ScheduleLog,
}

struct MarkCtx<'a> {
    order: Vec<usize>,
    sink: &'a mut SchedLogSink,
}

fn mark_traced(ctx: &mut MarkCtx<'_>, index: usize, _unused: usize) {
    ctx.order.push(index);
}

/// Like [`dispatch_order`], but records the drain's schedule events
/// alongside the permutation. The engine is deterministic given
/// (config, policy, fork-ordered hints), so the returned log is too.
///
/// # Panics
///
/// Panics if the scheduler does not run exactly one marker per fork.
pub fn dispatch_trace<P: BinPolicy>(
    config: SchedulerConfig,
    policy: P,
    hints: &[Hints],
) -> DispatchTrace {
    let mut sink = SchedLogSink::new();
    let mut sched: Scheduler<MarkCtx<'_>, P> = Scheduler::with_policy(config, policy);
    for (index, &h) in hints.iter().enumerate() {
        sched.fork_traced(mark_traced, index, 0, h, &mut sink);
    }
    let mut ctx = MarkCtx {
        order: Vec::with_capacity(hints.len()),
        sink: &mut sink,
    };
    sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
    let order = ctx.order;
    assert_eq!(order.len(), hints.len(), "marker replay lost threads");
    let mut log = sink.into_log();
    log.relabel_dispatch_forks(&order);
    DispatchTrace { order, log }
}

/// Bin membership of every forked thread under one policy, at both
/// nesting levels (identical for flat policies). Ids are dense, in
/// first-appearance (allocation) order — the ready-list order.
#[derive(Clone, Debug)]
pub struct BinAssignment {
    /// Finest-level bin id per fork index.
    pub fine: Vec<usize>,
    /// Number of distinct fine bins.
    pub fine_bins: usize,
    /// Parent bin id per fork index (== fine for flat policies).
    pub parent: Vec<usize>,
    /// Number of distinct parent bins.
    pub parent_bins: usize,
    /// Nesting levels of the policy (1 = flat).
    pub levels: u32,
}

/// Computes bin membership by replaying the public policy mapping over
/// `hints` in fork order (a fresh policy instance, so stateful
/// policies like [`UniqueBin`] start from their fork-counter origin).
pub fn assign_bins<P: BinPolicy>(mut policy: P, hints: &[Hints]) -> BinAssignment {
    let levels = policy.depth();
    let unique = policy.always_unique();
    let mut fine_ix: HashMap<[u64; MAX_DIMS], usize> = HashMap::new();
    let mut parent_ix: HashMap<[u64; MAX_DIMS], usize> = HashMap::new();
    let mut fine = Vec::with_capacity(hints.len());
    let mut parent = Vec::with_capacity(hints.len());
    for &h in hints {
        let key = policy.bin_key(h);
        let fid = if unique {
            fine.len()
        } else {
            let next = fine_ix.len();
            *fine_ix.entry(key).or_insert(next)
        };
        let pid = if unique {
            fid
        } else {
            let next = parent_ix.len();
            *parent_ix
                .entry(policy.ancestor_key(key, levels - 1))
                .or_insert(next)
        };
        fine.push(fid);
        parent.push(pid);
    }
    let fine_bins = if unique { fine.len() } else { fine_ix.len() };
    let parent_bins = if unique {
        parent.len()
    } else {
        parent_ix.len()
    };
    BinAssignment {
        fine,
        fine_bins,
        parent,
        parent_bins,
        levels,
    }
}

/// Builds the [`PaperBlockHash`] the capture's config implies.
pub fn paper_policy(config: &SchedulerConfig) -> PaperBlockHash {
    PaperBlockHash::from_config(config)
}

/// Builds the degenerate single-bin policy.
pub fn single_policy() -> SingleBin {
    SingleBin
}

/// Builds the degenerate one-bin-per-thread policy.
pub fn unique_policy() -> UniqueBin {
    UniqueBin::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    fn config(block: u64) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(block)
            .build()
            .unwrap()
    }

    #[test]
    fn single_bin_preserves_fork_order() {
        let hints: Vec<Hints> = (0..8)
            .map(|i| Hints::one(Addr::new(0x1000 * (8 - i))))
            .collect();
        let order = dispatch_order(config(1024), single_policy(), &hints);
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn unique_bin_under_allocation_tour_preserves_fork_order() {
        let hints: Vec<Hints> = (0..8)
            .map(|i| Hints::one(Addr::new(0x1000 * (8 - i))))
            .collect();
        let order = dispatch_order(config(1024), unique_policy(), &hints);
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn paper_policy_groups_by_block() {
        // Forks 0 and 2 share a block; dispatch drains their bin first.
        let hints = vec![
            Hints::one(Addr::new(0x10)),
            Hints::one(Addr::new(0x100_000)),
            Hints::one(Addr::new(0x20)),
        ];
        let cfg = config(1024);
        let order = dispatch_order(cfg, paper_policy(&cfg), &hints);
        assert_eq!(order, vec![0, 2, 1]);
        let bins = assign_bins(paper_policy(&cfg), &hints);
        assert_eq!(bins.fine, vec![0, 1, 0]);
        assert_eq!(bins.fine_bins, 2);
        assert_eq!(bins.parent, bins.fine);
    }

    #[test]
    fn dispatch_trace_logs_forks_units_and_fork_labeled_dispatches() {
        use memtrace::SchedEvent;
        let hints = vec![
            Hints::one(Addr::new(0x10)),
            Hints::one(Addr::new(0x100_000)),
            Hints::one(Addr::new(0x20)),
        ];
        let cfg = config(1024);
        let trace = dispatch_trace(cfg, paper_policy(&cfg), &hints);
        assert_eq!(trace.order, vec![0, 2, 1]);
        let forks: Vec<u32> = trace
            .log
            .events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Dispatch { fork, .. } => Some(*fork),
                _ => None,
            })
            .collect();
        assert_eq!(forks, vec![0, 2, 1], "dispatches carry fork indices");
        let begins = trace
            .log
            .events
            .iter()
            .filter(|e| matches!(e, SchedEvent::DrainBegin { .. }))
            .count();
        assert_eq!(begins, 2, "two bins, two drain units");
        assert_eq!(trace.log.events.last(), Some(&SchedEvent::Barrier));
        assert_eq!(
            trace.log.events[..3],
            [
                SchedEvent::Fork { actor: 0, fork: 0 },
                SchedEvent::Fork { actor: 0, fork: 1 },
                SchedEvent::Fork { actor: 0, fork: 2 },
            ]
        );
    }

    #[test]
    fn hierarchical_assignment_has_two_levels() {
        use locality_sched::Hierarchical;
        let policy = Hierarchical::uniform(1024, 4096, false).unwrap();
        let hints = vec![
            Hints::one(Addr::new(0x0)),
            Hints::one(Addr::new(0x400)), // same parent, different sub-bin
            Hints::one(Addr::new(0x1000)), // different parent
        ];
        let bins = assign_bins(policy, &hints);
        assert_eq!(bins.levels, 2);
        assert_eq!(bins.fine, vec![0, 1, 2]);
        assert_eq!(bins.parent, vec![0, 0, 1]);
    }
}

//! Inter-thread conflict graph construction.
//!
//! Two threads of one phase *conflict* when their footprints overlap
//! on at least one word granule with at least one side writing (W/W or
//! R/W). Word granularity matters: overlap at word granularity is a
//! true data dependency whose order a scheduler must preserve, while
//! distinct words on one cache *line* are false sharing — a locality
//! hazard, not a correctness one — and are handled by the separate
//! false-sharing detector.

use memtrace::ThreadFootprint;
use std::collections::BTreeMap;

/// One conflicting thread pair (fork indices, `a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// Fork index of the earlier-forked thread.
    pub a: usize,
    /// Fork index of the later-forked thread.
    pub b: usize,
    /// Number of shared word granules with a write on either side.
    pub words: u64,
    /// One of the conflicting word granules (`addr / 8`), for reports.
    pub example_word: u64,
}

/// Builds the conflict graph of one phase from fork-indexed
/// footprints. Pairs come back sorted by `(a, b)`; the computation is
/// fully deterministic.
pub fn conflict_pairs(footprints: &[ThreadFootprint]) -> Vec<ConflictPair> {
    // Invert: word → writers, word → readers. BTreeMaps keep every
    // downstream iteration deterministic.
    let mut writers: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, fp) in footprints.iter().enumerate() {
        for &w in fp.write_words() {
            writers.entry(w).or_default().push(i);
        }
        for &r in fp.read_words() {
            readers.entry(r).or_default().push(i);
        }
    }
    let mut pairs: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    let bump = |pairs: &mut BTreeMap<(usize, usize), (u64, u64)>, x: usize, y: usize, word| {
        if x == y {
            return;
        }
        let key = (x.min(y), x.max(y));
        pairs.entry(key).or_insert((0, word)).0 += 1;
    };
    for (&word, ws) in &writers {
        // W/W on the same word.
        for (i, &w1) in ws.iter().enumerate() {
            for &w2 in &ws[i + 1..] {
                bump(&mut pairs, w1, w2, word);
            }
        }
        // R/W on the same word.
        if let Some(rs) = readers.get(&word) {
            for &w in ws {
                for &r in rs {
                    bump(&mut pairs, w, r, word);
                }
            }
        }
    }
    pairs
        .into_iter()
        .map(|((a, b), (words, example_word))| ConflictPair {
            a,
            b,
            words,
            example_word,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{Access, Addr};

    fn fp(reads: &[u64], writes: &[u64]) -> ThreadFootprint {
        let mut f = ThreadFootprint::new();
        for &r in reads {
            f.record(Access::read(Addr::new(r * 8), 8));
        }
        for &w in writes {
            f.record(Access::write(Addr::new(w * 8), 8));
        }
        f
    }

    #[test]
    fn read_read_overlap_is_not_a_conflict() {
        let fps = [fp(&[1, 2, 3], &[]), fp(&[2, 3, 4], &[])];
        assert!(conflict_pairs(&fps).is_empty());
    }

    #[test]
    fn write_read_overlap_conflicts() {
        let fps = [fp(&[], &[10]), fp(&[10], &[])];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
        assert_eq!(pairs[0].words, 1);
        assert_eq!(pairs[0].example_word, 10);
    }

    #[test]
    fn write_write_overlap_conflicts_once_per_word() {
        let fps = [fp(&[], &[5, 6]), fp(&[], &[5, 6]), fp(&[], &[7])];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
        assert_eq!(pairs[0].words, 2);
    }

    #[test]
    fn disjoint_words_on_one_line_do_not_conflict() {
        // Words 0 and 1 share any line ≥ 16 bytes but are distinct
        // granules: false sharing, not a conflict.
        let fps = [fp(&[], &[0]), fp(&[1], &[])];
        assert!(conflict_pairs(&fps).is_empty());
    }
}

//! Inter-thread conflict graph construction.
//!
//! Two threads of one phase *conflict* when their footprints overlap
//! on at least one word granule with at least one side writing (W/W or
//! R/W). Word granularity matters: overlap at word granularity is a
//! true data dependency whose order a scheduler must preserve, while
//! distinct words on one cache *line* are false sharing — a locality
//! hazard, not a correctness one — and are handled by the separate
//! false-sharing detector.
//!
//! The graph is *aggregated per (thread pair, line)*: footprint words
//! are bucketed into [`CONFLICT_LINE_WORDS`]-word lines and each
//! bucket's overlap is resolved with per-thread word bitmasks, so one
//! adversarial phase where many threads write one huge shared range
//! costs `O(lines × threads-on-line²)` bit-parallel steps — never a
//! per-word pair enumeration — and the output stays one record per
//! conflicting pair regardless of how many words overlap. Exact
//! per-word counts survive as the summary fields
//! [`ConflictPair::words`] / [`ConflictPair::lines`].

use memtrace::ThreadFootprint;
use std::collections::BTreeMap;

/// Words per aggregation line of the conflict graph (a 64-byte line of
/// 8-byte words — an aggregation granule only, not a semantic one:
/// conflicts are still decided per word via the line's bitmasks).
pub const CONFLICT_LINE_WORDS: u64 = 8;

/// One conflicting thread pair (fork indices, `a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictPair {
    /// Fork index of the earlier-forked thread.
    pub a: usize,
    /// Fork index of the later-forked thread.
    pub b: usize,
    /// Number of shared word granules with a write on either side.
    pub words: u64,
    /// Number of [`CONFLICT_LINE_WORDS`]-word lines those words span.
    pub lines: u64,
    /// One of the conflicting word granules (`addr / 8`), for reports.
    pub example_word: u64,
}

/// Per-thread touch masks within one aggregation line.
#[derive(Clone, Copy)]
struct LineTouch {
    thread: usize,
    reads: u8,
    writes: u8,
}

/// Builds the conflict graph of one phase from fork-indexed
/// footprints. Pairs come back sorted by `(a, b)`; the computation is
/// fully deterministic.
pub fn conflict_pairs(footprints: &[ThreadFootprint]) -> Vec<ConflictPair> {
    // Invert per *line*, not per word: line → per-thread word bitmasks.
    // The BTreeMap keeps every downstream iteration deterministic, and
    // threads appear in fork-index order within each line.
    let mut lines: BTreeMap<u64, Vec<LineTouch>> = BTreeMap::new();
    let touch = |lines: &mut BTreeMap<u64, Vec<LineTouch>>, thread: usize, word: u64, w: bool| {
        let line = word / CONFLICT_LINE_WORDS;
        let bit = 1u8 << (word % CONFLICT_LINE_WORDS);
        let slots = lines.entry(line).or_default();
        let slot = match slots.last_mut() {
            Some(last) if last.thread == thread => last,
            _ => {
                slots.push(LineTouch {
                    thread,
                    reads: 0,
                    writes: 0,
                });
                slots.last_mut().expect("just pushed")
            }
        };
        if w {
            slot.writes |= bit;
        } else {
            slot.reads |= bit;
        }
    };
    for (i, fp) in footprints.iter().enumerate() {
        for &w in fp.write_words() {
            touch(&mut lines, i, w, true);
        }
        for &r in fp.read_words() {
            touch(&mut lines, i, r, false);
        }
    }
    // Per line, resolve every thread pair's overlap bit-parallel over
    // the whole line; accumulate one record per pair.
    let mut pairs: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();
    for (&line, slots) in &lines {
        for (i, ta) in slots.iter().enumerate() {
            for tb in &slots[i + 1..] {
                debug_assert_ne!(ta.thread, tb.thread, "per-thread masks are merged");
                let conflict =
                    (ta.writes & (tb.reads | tb.writes)) | (tb.writes & (ta.reads | ta.writes));
                if conflict == 0 {
                    continue;
                }
                let key = (ta.thread.min(tb.thread), ta.thread.max(tb.thread));
                let example = line * CONFLICT_LINE_WORDS + u64::from(conflict.trailing_zeros());
                let entry = pairs.entry(key).or_insert((0, 0, example));
                entry.0 += u64::from(conflict.count_ones());
                entry.1 += 1;
            }
        }
    }
    pairs
        .into_iter()
        .map(|((a, b), (words, lines, example_word))| ConflictPair {
            a,
            b,
            words,
            lines,
            example_word,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{Access, Addr};

    fn fp(reads: &[u64], writes: &[u64]) -> ThreadFootprint {
        let mut f = ThreadFootprint::new();
        for &r in reads {
            f.record(Access::read(Addr::new(r * 8), 8));
        }
        for &w in writes {
            f.record(Access::write(Addr::new(w * 8), 8));
        }
        f
    }

    #[test]
    fn read_read_overlap_is_not_a_conflict() {
        let fps = [fp(&[1, 2, 3], &[]), fp(&[2, 3, 4], &[])];
        assert!(conflict_pairs(&fps).is_empty());
    }

    #[test]
    fn write_read_overlap_conflicts() {
        let fps = [fp(&[], &[10]), fp(&[10], &[])];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
        assert_eq!(pairs[0].words, 1);
        assert_eq!(pairs[0].lines, 1);
        assert_eq!(pairs[0].example_word, 10);
    }

    #[test]
    fn write_write_overlap_conflicts_once_per_word() {
        let fps = [fp(&[], &[5, 6]), fp(&[], &[5, 6]), fp(&[], &[7])];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (0, 1));
        assert_eq!(pairs[0].words, 2);
        assert_eq!(pairs[0].lines, 1);
    }

    #[test]
    fn disjoint_words_on_one_line_do_not_conflict() {
        // Words 0 and 1 share any line ≥ 16 bytes but are distinct
        // granules: false sharing, not a conflict.
        let fps = [fp(&[], &[0]), fp(&[1], &[])];
        assert!(conflict_pairs(&fps).is_empty());
    }

    #[test]
    fn adversarial_overlap_stays_one_record_per_pair_with_exact_counts() {
        // Three threads all write the same 4096-word range: the output
        // is 3 pair records (not O(words²)), each carrying the exact
        // word and line summary counts.
        let range: Vec<u64> = (0..4096).collect();
        let fps = [fp(&[], &range), fp(&[], &range), fp(&[], &range)];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 3);
        for pair in &pairs {
            assert_eq!(pair.words, 4096);
            assert_eq!(pair.lines, 4096 / CONFLICT_LINE_WORDS);
            assert_eq!(pair.example_word, 0);
        }
        assert_eq!(
            pairs.iter().map(|p| (p.a, p.b)).collect::<Vec<_>>(),
            vec![(0, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn conflicts_spanning_lines_count_every_line_once() {
        // Words 6..10 straddle the line-0/line-1 boundary.
        let shared: Vec<u64> = (6..10).collect();
        let fps = [fp(&[], &shared), fp(&shared, &[])];
        let pairs = conflict_pairs(&fps);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].words, 4);
        assert_eq!(pairs[0].lines, 2);
        assert_eq!(pairs[0].example_word, 6);
    }
}

//! Report assembly: JSON (benchdiff-consumable) and terminal text.

use crate::analysis::KernelSummary;
use std::fmt::Write as _;

/// The full `schedlint` report: one [`KernelSummary`] per analyzed
/// workload plus the knobs the run used.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// Machine label the analyses ran against.
    pub machine: String,
    /// Hint-coverage threshold in effect.
    pub hint_threshold_pct: f64,
    /// Analyzed workloads, in run order.
    pub kernels: Vec<KernelSummary>,
}

impl AnalyzeReport {
    /// Creates an empty report.
    pub fn new(machine: &str, hint_threshold_pct: f64) -> Self {
        AnalyzeReport {
            machine: machine.to_string(),
            hint_threshold_pct,
            kernels: Vec::new(),
        }
    }

    /// Total error findings.
    pub fn errors(&self) -> u64 {
        self.kernels.iter().map(KernelSummary::errors).sum()
    }

    /// Total warning findings.
    pub fn warnings(&self) -> u64 {
        self.kernels.iter().map(KernelSummary::warnings).sum()
    }

    /// Gate verdict: errors always fail; warnings fail only when
    /// promoted by `--gate-warnings`.
    pub fn gate_failed(&self, gate_warnings: bool) -> bool {
        self.errors() > 0 || (gate_warnings && self.warnings() > 0)
    }

    /// Serializes the report in the bench JSON idiom: an `experiment`
    /// tag, one flat numeric row per workload (labeled by `workload`,
    /// so `benchdiff` diffs it as `rows[matmul].conflict_pairs`), and a
    /// string-only `findings` array `benchdiff` skips.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"experiment\":\"schedlint\",\"machine\":\"{}\",\
             \"hint_threshold_pct\":{:.1},\"rows\":[",
            escape(&self.machine),
            self.hint_threshold_pct
        );
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"workload\":\"{}\",\"threads\":{},\"phases\":{},\"bins\":{},\
                 \"conflict_pairs\":{},\"violations\":{},\"reordered_convergent\":{},\
                 \"steal_unsafe_pairs\":{},\"overflow_bins\":{},\"overflow_subbins\":{},\
                 \"false_sharing_lines\":{},\"cross_node_pairs\":{},\
                 \"hb_events\":{},\"hb_units\":{},\"hb_obligations\":{},\"hb_races\":{},\
                 \"errors\":{},\"warnings\":{}",
                escape(&k.workload),
                k.threads,
                k.phases,
                k.bins,
                k.conflict_pairs,
                k.violations,
                k.reordered_convergent,
                k.steal_unsafe_pairs,
                k.overflow_bins,
                k.overflow_subbins,
                k.false_sharing_lines,
                k.cross_node_pairs,
                k.hb_events,
                k.hb_units,
                k.hb_obligations,
                k.hb_races,
                k.errors(),
                k.warnings(),
            )
            .expect("writing to String cannot fail");
            if let (Some(min), Some(mean)) = (k.hint_coverage_min_pct, k.hint_coverage_mean_pct) {
                write!(
                    json,
                    ",\"hint_coverage_min_pct\":{min:.1},\"hint_coverage_mean_pct\":{mean:.1}"
                )
                .expect("writing to String cannot fail");
            }
            for check in k.checks.iter().filter(|c| c.checked) {
                write!(
                    json,
                    ",\"violations_{}\":{}",
                    check.policy, check.violations
                )
                .expect("writing to String cannot fail");
            }
            json.push('}');
        }
        json.push_str("],\"findings\":[");
        let mut first = true;
        for k in &self.kernels {
            for f in &k.findings {
                if !first {
                    json.push(',');
                }
                first = false;
                write!(
                    json,
                    "{{\"severity\":\"{}\",\"analysis\":\"{}\",\"workload\":\"{}\",\
                     \"detail\":\"{}\"}}",
                    f.severity.label(),
                    f.analysis,
                    escape(&f.workload),
                    escape(&f.detail),
                )
                .expect("writing to String cannot fail");
            }
        }
        json.push_str("]}");
        json
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "schedlint: {} (hint threshold {:.0}%)\n",
            self.machine, self.hint_threshold_pct
        );
        for k in &self.kernels {
            let coverage = match (k.hint_coverage_min_pct, k.hint_coverage_mean_pct) {
                (Some(min), Some(mean)) => {
                    format!(", hint coverage min {min:.1}% mean {mean:.1}%")
                }
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}: {} thread(s) / {} phase(s) / {} bin(s), {} conflict pair(s), \
                 {} violation(s), {} hb obligation(s) / {} race(s){coverage}",
                k.workload,
                k.threads,
                k.phases,
                k.bins,
                k.conflict_pairs,
                k.violations,
                k.hb_obligations,
                k.hb_races
            );
            for check in &k.checks {
                let verdict = if !check.checked {
                    "skipped (no geometry)".to_string()
                } else if check.violations > 0 {
                    format!("{} VIOLATION(S)", check.violations)
                } else if check.reordered > 0 {
                    format!("order-safe ({} convergent reorder(s))", check.reordered)
                } else {
                    "order-safe".to_string()
                };
                let _ = writeln!(
                    out,
                    "    policy {:<12} {verdict}, {} steal-unsafe pair(s)",
                    check.policy, check.steal_unsafe
                );
            }
            for f in &k.findings {
                let _ = writeln!(
                    out,
                    "    [{}] {}: {}",
                    f.severity.label(),
                    f.analysis,
                    f.detail
                );
            }
        }
        let _ = writeln!(
            out,
            "schedlint: {} error(s), {} warning(s)",
            self.errors(),
            self.warnings()
        );
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PolicyCheck;
    use crate::{Finding, Severity};

    fn summary() -> KernelSummary {
        KernelSummary {
            workload: "matmul".to_string(),
            threads: 4,
            phases: 1,
            bins: 2,
            conflict_pairs: 0,
            violations: 0,
            reordered_convergent: 0,
            steal_unsafe_pairs: 0,
            hint_coverage_min_pct: Some(80.0),
            hint_coverage_mean_pct: Some(92.5),
            overflow_bins: 0,
            overflow_subbins: 0,
            false_sharing_lines: 1,
            cross_node_pairs: 0,
            hb_events: 24,
            hb_units: 2,
            hb_obligations: 0,
            hb_races: 0,
            checks: vec![PolicyCheck {
                policy: "paper",
                checked: true,
                violations: 0,
                reordered: 0,
                steal_unsafe: 0,
                hb_obligations: 0,
            }],
            findings: vec![Finding {
                severity: Severity::Warning,
                analysis: "false-sharing",
                workload: "matmul".to_string(),
                detail: "1 cache line \"falsely\" shared".to_string(),
            }],
        }
    }

    #[test]
    fn json_has_the_bench_report_shape() {
        let mut report = AnalyzeReport::new("r8000/16", 25.0);
        report.kernels.push(summary());
        let json = report.to_json();
        assert!(json.starts_with("{\"experiment\":\"schedlint\""), "{json}");
        assert!(json.contains("\"workload\":\"matmul\""), "{json}");
        assert!(json.contains("\"violations_paper\":0"), "{json}");
        assert!(json.contains("\\\"falsely\\\""), "{json}");
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 1);
        assert!(!report.gate_failed(false));
        assert!(report.gate_failed(true));
    }

    #[test]
    fn text_report_mentions_every_section() {
        let mut report = AnalyzeReport::new("r8000/16", 25.0);
        report.kernels.push(summary());
        let text = report.to_text();
        assert!(text.contains("matmul"), "{text}");
        assert!(text.contains("policy paper"), "{text}");
        assert!(text.contains("[warning] false-sharing"), "{text}");
        assert!(text.contains("0 error(s), 1 warning(s)"), "{text}");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}

//! `schedlint` — static schedule analysis over thread footprints.
//!
//! The paper's entire speedup rests on an unchecked assumption: threads
//! created within a phase are mutually independent, so the bin
//! scheduler may reorder them freely, and the fork-time address *hints*
//! actually describe what each thread touches. This crate turns that
//! assumption into a checked invariant. It captures per-thread memory
//! footprints (via [`memtrace::FootprintSink`] listening to the
//! scheduler's schedule events, or a `tracefile` replay of the same)
//! plus the thread/hint graph, and runs four analyses:
//!
//! 1. **Conflict analysis** ([`conflict`]) — the inter-thread conflict
//!    graph (W/W and R/W overlap at word granularity) within each
//!    phase, checked against the dispatch permutation of every shipped
//!    [`BinPolicy`](locality_sched::BinPolicy): a conflicting pair a
//!    policy reorders in an order-exact kernel is an **error**.
//! 2. **Hint-accuracy lint** — threads whose hint blocks cover less
//!    than a threshold fraction of their footprint (stale or wrong
//!    hints silently erode locality).
//! 3. **Bin-overflow lint** — bins whose aggregate footprint exceeds
//!    the [`MachineModel`](cachesim::MachineModel) L2 capacity (or L1,
//!    for hierarchical sub-bins): bins that cannot deliver the reuse
//!    the policy promises.
//! 4. **False-sharing detector** — distinct-word, same-line accesses
//!    from threads in different bins.
//! 5. **Cross-node sharing lint** — conflicting pairs whose bins sit
//!    under different subtrees of the coarsest level of a depth-≥ 3
//!    [`TopologyPolicy`](locality_sched::TopologyPolicy): words that
//!    ping-pong across the machine no matter how bins are drained.
//!
//! Findings serialize to JSON in the bench report idiom
//! (`{"experiment": ..., "rows": [...]}`, consumable by `benchdiff`)
//! and gate CI through `benchdiff`-style exit codes: 0 clean, 1 gate
//! failure, 2 usage error.

pub mod analysis;
pub mod capture;
pub mod conflict;
pub mod fixture;
pub mod hb;
pub mod policies;
pub mod report;

pub use analysis::{analyze, AnalyzeOptions, KernelSummary, PolicyCheck};
pub use capture::{
    capture_kernel, default_machine, AnalyzeScale, Capture, DrainConcurrency, PhaseModel,
};
pub use conflict::{conflict_pairs, ConflictPair};
pub use fixture::Fixture;
pub use hb::{
    hb_report, stealing_log, unordered_conflicts, HbIndex, HbReport, ObligationKind,
    OrderObligation, VectorClock,
};
pub use policies::{
    assign_bins, dispatch_order, dispatch_trace, BinAssignment, DispatchTrace, PolicyKind,
};
pub use report::AnalyzeReport;

/// How serious a finding is — decides the gate outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: expected behaviour worth surfacing (e.g. the
    /// convergent SOR reorders, spatial N-body hints).
    Info,
    /// Suspicious but not semantics-breaking on the shipped serial
    /// path (overflowing bins, false sharing, steal-unsafe pairs).
    Warning,
    /// A schedule-safety or hint bug: a policy reorders conflicting
    /// threads of an order-exact kernel, or a hint misses its thread's
    /// footprint.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analysis finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// Which analysis produced it: `"conflict-order"`, `"hb-race"`,
    /// `"steal-safety"`, `"hint-accuracy"`, `"bin-overflow"`,
    /// `"false-sharing"`, or `"cross-node-sharing"`.
    pub analysis: &'static str,
    /// The workload (kernel or fixture) the finding belongs to.
    pub workload: String,
    /// Human-readable description.
    pub detail: String,
}

//! The four analyses, run over one [`Capture`].

use crate::capture::{Capture, DrainConcurrency, PhaseModel};
use crate::conflict::{conflict_pairs, ConflictPair};
use crate::hb::{stealing_log, HbIndex, ObligationKind, OrderObligation};
use crate::policies::{
    assign_bins, dispatch_trace, paper_policy, single_policy, unique_policy, BinAssignment,
    PolicyKind,
};
use crate::{Finding, Severity};
use locality_sched::BinPolicy;
use memtrace::{ThreadFootprint, WORD_BYTES};
use std::collections::{BTreeMap, BTreeSet};
use workloads::{HintKind, OrderSemantics};

/// Tunable thresholds.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOptions {
    /// Minimum acceptable hint coverage, percent of footprint lines
    /// inside the hinted blocks. Threads below it are errors. The
    /// default sits under the worst legitimate kernel value (a PDE
    /// thread whose stencil straddles a block boundary covers ~22%)
    /// and far above a genuinely wrong hint (0%).
    pub hint_threshold_pct: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            hint_threshold_pct: 20.0,
        }
    }
}

/// Order-safety result for one policy family.
#[derive(Clone, Debug)]
pub struct PolicyCheck {
    /// Policy label.
    pub policy: &'static str,
    /// `false` when the policy could not be built for this capture
    /// (e.g. degenerate hierarchical geometry) and was skipped.
    pub checked: bool,
    /// Conflicting pairs the policy's serial drain reorders in an
    /// order-exact workload (must be 0 for every shipped policy).
    pub violations: u64,
    /// Conflicting pairs reordered in a convergence-equivalent
    /// workload (allowed; informational).
    pub reordered: u64,
    /// Conflicting pairs split across bins — unordered by
    /// happens-before in the stealing execution model: their order is
    /// guaranteed only by the serial tour, not by bin containment, so
    /// a multi-worker or stealing drain may flip them.
    pub steal_unsafe: u64,
    /// Order obligations checked against the happens-before indices
    /// (one [`ForkOrder`](crate::ObligationKind::ForkOrder) per
    /// conflicting pair in order-exact workloads, plus one
    /// [`ConflictOrder`](crate::ObligationKind::ConflictOrder) per
    /// conflicting pair in the stealing model).
    pub hb_obligations: u64,
}

/// Everything `schedlint` reports for one workload.
#[derive(Clone, Debug)]
pub struct KernelSummary {
    /// Workload label.
    pub workload: String,
    /// Threads analyzed (all phases).
    pub threads: u64,
    /// Phases (scheduler runs) analyzed.
    pub phases: u64,
    /// Bins under the capture's flat paper policy, summed over phases.
    pub bins: u64,
    /// Conflicting thread pairs across all phases.
    pub conflict_pairs: u64,
    /// Worst per-policy violation count (0 = every policy safe).
    pub violations: u64,
    /// Worst per-policy reorder count in convergent workloads.
    pub reordered_convergent: u64,
    /// Cross-bin conflicting pairs under the paper policy.
    pub steal_unsafe_pairs: u64,
    /// Minimum per-thread hint coverage, percent (`None` for spatial
    /// hints or when no thread had both hints and a footprint).
    pub hint_coverage_min_pct: Option<f64>,
    /// Mean per-thread hint coverage, percent.
    pub hint_coverage_mean_pct: Option<f64>,
    /// Flat bins whose aggregate footprint exceeds the L2 capacity.
    pub overflow_bins: u64,
    /// Hierarchical sub-bins whose footprint exceeds the L1 capacity.
    pub overflow_subbins: u64,
    /// Cache lines falsely shared across bins (distinct words, same
    /// line, ≥ 1 writer, different bins).
    pub false_sharing_lines: u64,
    /// Conflicting pairs whose bins live under different subtrees of
    /// the coarsest topology level (0 unless the capture carries a
    /// depth-≥ 3 topology).
    pub cross_node_pairs: u64,
    /// Schedule events replayed into happens-before indices (serial +
    /// stealing model, all policies, all phases).
    pub hb_events: u64,
    /// Drain units of the capture policy's serial trace.
    pub hb_units: u64,
    /// Order obligations checked across all policies.
    pub hb_obligations: u64,
    /// Data races: conflicting pairs unordered by happens-before under
    /// the capture's *declared* drain concurrency (always 0 for
    /// [`Serial`](DrainConcurrency::Serial) captures — the total
    /// dispatch order covers every pair).
    pub hb_races: u64,
    /// Per-policy order-safety results.
    pub checks: Vec<PolicyCheck>,
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
}

impl KernelSummary {
    /// Error-severity findings.
    pub fn errors(&self) -> u64 {
        self.count(Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> u64 {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count() as u64
    }
}

/// Runs all four analyses over a capture.
pub fn analyze(capture: &Capture, opts: &AnalyzeOptions) -> KernelSummary {
    let exact = capture.semantics == OrderSemantics::Exact;
    let mut checks: Vec<PolicyCheck> = PolicyKind::ALL
        .iter()
        .map(|k| PolicyCheck {
            policy: k.name(),
            checked: !(*k == PolicyKind::Hierarchical && capture.hierarchical.is_none()),
            violations: 0,
            reordered: 0,
            steal_unsafe: 0,
            hb_obligations: 0,
        })
        .collect();
    let mut findings = Vec::new();
    let mut threads = 0u64;
    let mut bins = 0u64;
    let mut total_conflicts = 0u64;
    let mut hb_events = 0u64;
    let mut hb_units = 0u64;
    let mut race_example: Option<String> = None;
    let mut coverage = CoverageStats::default();
    let mut overflow = OverflowStats::default();
    let mut false_sharing = FalseSharingStats::default();
    let mut cross_node = CrossNodeStats::default();
    let mut order_examples: BTreeMap<&'static str, String> = BTreeMap::new();

    for (phase_ix, phase) in capture.phases.iter().enumerate() {
        threads += phase.threads() as u64;
        let conflicts = conflict_pairs(&phase.footprints);
        total_conflicts += conflicts.len() as u64;
        let paper_bins = assign_bins(paper_policy(&capture.config), &phase.hints);
        bins += paper_bins.fine_bins as u64;

        for (check, kind) in checks.iter_mut().zip(PolicyKind::ALL.iter()) {
            if !check.checked {
                continue;
            }
            let assignment = match kind {
                PolicyKind::Paper => paper_bins.clone(),
                PolicyKind::Hierarchical => {
                    assign_bins(capture.hierarchical.expect("checked above"), &phase.hints)
                }
                PolicyKind::Single => assign_bins(single_policy(), &phase.hints),
                PolicyKind::Unique => assign_bins(unique_policy(), &phase.hints),
            };
            let trace = match kind {
                PolicyKind::Paper => {
                    dispatch_trace(capture.config, paper_policy(&capture.config), &phase.hints)
                }
                PolicyKind::Hierarchical => dispatch_trace(
                    capture.config,
                    capture.hierarchical.expect("checked above"),
                    &phase.hints,
                ),
                PolicyKind::Single => dispatch_trace(capture.config, single_policy(), &phase.hints),
                PolicyKind::Unique => dispatch_trace(capture.config, unique_policy(), &phase.hints),
            };
            // Two happens-before indices per policy: the serial drain's
            // real event stream (totally ordered — decides fork-order
            // obligations), and the modeled stealing drain (only
            // same-bin order survives — decides which conflicting
            // pairs race when units migrate).
            let serial = HbIndex::from_log(&trace.log);
            let stealing = HbIndex::from_log(&stealing_log(
                phase.threads(),
                &assignment.fine,
                &trace.order,
            ));
            hb_events += serial.events + stealing.events;
            if *kind == PolicyKind::Paper {
                hb_units += serial.units;
            }
            let position = {
                let mut position = vec![0usize; trace.order.len()];
                for (pos, &fork) in trace.order.iter().enumerate() {
                    position[fork] = pos;
                }
                position
            };
            for pair in &conflicts {
                let fork_order = OrderObligation {
                    kind: ObligationKind::ForkOrder,
                    a: pair.a,
                    b: pair.b,
                };
                let preserved = fork_order.satisfied(&serial);
                debug_assert_eq!(
                    preserved,
                    position[pair.a] < position[pair.b],
                    "serial happens-before must agree with the dispatch permutation"
                );
                if exact {
                    check.hb_obligations += 1;
                }
                if !preserved {
                    if exact {
                        check.violations += 1;
                        order_examples.entry(check.policy).or_insert_with(|| {
                            format!(
                                "phase {phase_ix}: thread {} runs before conflicting \
                                 earlier thread {} (word {:#x})",
                                pair.b,
                                pair.a,
                                pair.example_word * WORD_BYTES
                            )
                        });
                    } else {
                        check.reordered += 1;
                    }
                }
                let conflict_order = OrderObligation {
                    kind: ObligationKind::ConflictOrder,
                    a: pair.a,
                    b: pair.b,
                };
                check.hb_obligations += 1;
                let unordered = !conflict_order.satisfied(&stealing);
                debug_assert_eq!(
                    unordered,
                    assignment.fine[pair.a] != assignment.fine[pair.b],
                    "stealing-model races must be exactly the cross-bin pairs"
                );
                if unordered {
                    check.steal_unsafe += 1;
                    if *kind == PolicyKind::Paper
                        && capture.concurrency == DrainConcurrency::Stealing
                    {
                        race_example.get_or_insert_with(|| {
                            format!(
                                "phase {phase_ix}: threads {} and {} (bins {} and {}) \
                                 share word {:#x} with no happens-before edge",
                                pair.a,
                                pair.b,
                                assignment.fine[pair.a],
                                assignment.fine[pair.b],
                                pair.example_word * WORD_BYTES
                            )
                        });
                    }
                }
            }
        }

        if capture.hint_kind == HintKind::Address {
            coverage.accumulate(capture, phase_ix, phase, opts);
        }
        overflow.accumulate(capture, phase_ix, phase, &paper_bins);
        false_sharing.accumulate(capture, phase_ix, phase, &paper_bins);
        cross_node.accumulate(capture, phase_ix, phase, &conflicts);
    }

    // Findings: conflict-order errors per policy, then the rest.
    for check in &checks {
        if check.violations > 0 {
            findings.push(Finding {
                severity: Severity::Error,
                analysis: "conflict-order",
                workload: capture.workload.clone(),
                detail: format!(
                    "policy `{}` reorders {} conflicting pair(s) in an order-exact \
                     workload; e.g. {}",
                    check.policy, check.violations, order_examples[check.policy]
                ),
            });
        }
    }
    let reordered_max = checks.iter().map(|c| c.reordered).max().unwrap_or(0);
    if reordered_max > 0 {
        findings.push(Finding {
            severity: Severity::Info,
            analysis: "conflict-order",
            workload: capture.workload.clone(),
            detail: format!(
                "convergence-equivalent workload: policies reorder up to {reordered_max} \
                 conflicting pair(s) per schedule (allowed; the paper's own observation \
                 about threaded SOR)"
            ),
        });
    }
    let paper_steal = checks
        .iter()
        .find(|c| c.policy == "paper")
        .map_or(0, |c| c.steal_unsafe);
    // The happens-before race lint: under a declared stealing drain,
    // an unordered conflicting pair is not a "may flip" warning but a
    // W/W or R/W data race — an error, regardless of order semantics.
    let hb_races = match capture.concurrency {
        DrainConcurrency::Serial => 0,
        DrainConcurrency::Stealing => paper_steal,
    };
    if hb_races > 0 {
        let breakdown: Vec<String> = checks
            .iter()
            .filter(|c| c.checked && c.steal_unsafe > 0)
            .map(|c| format!("{}: {}", c.policy, c.steal_unsafe))
            .collect();
        findings.push(Finding {
            severity: Severity::Error,
            analysis: "hb-race",
            workload: capture.workload.clone(),
            detail: format!(
                "{} conflicting pair(s) unordered by happens-before under the declared \
                 stealing drain ({}); e.g. {}",
                hb_races,
                breakdown.join(", "),
                race_example.as_deref().unwrap_or("(no example)")
            ),
        });
    }
    if exact && paper_steal > 0 && capture.concurrency == DrainConcurrency::Serial {
        let breakdown: Vec<String> = checks
            .iter()
            .filter(|c| c.checked && c.steal_unsafe > 0)
            .map(|c| format!("{}: {}", c.policy, c.steal_unsafe))
            .collect();
        findings.push(Finding {
            severity: Severity::Warning,
            analysis: "steal-safety",
            workload: capture.workload.clone(),
            detail: format!(
                "conflicting pairs cross bin boundaries ({}); their order is preserved \
                 by the serial allocation-order tour but not by bin containment, so a \
                 multi-worker or stealing drain may flip them",
                breakdown.join(", ")
            ),
        });
    }
    coverage.report(capture, opts, &mut findings);
    overflow.report(capture, &mut findings);
    false_sharing.report(capture, &mut findings);
    cross_node.report(capture, &mut findings);
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));

    KernelSummary {
        workload: capture.workload.clone(),
        threads,
        phases: capture.phases.len() as u64,
        bins,
        conflict_pairs: total_conflicts,
        violations: checks.iter().map(|c| c.violations).max().unwrap_or(0),
        reordered_convergent: reordered_max,
        steal_unsafe_pairs: paper_steal,
        hint_coverage_min_pct: coverage.min_pct(),
        hint_coverage_mean_pct: coverage.mean_pct(),
        overflow_bins: overflow.flat,
        overflow_subbins: overflow.sub,
        false_sharing_lines: false_sharing.lines,
        cross_node_pairs: cross_node.pairs,
        hb_events,
        hb_units,
        hb_obligations: checks.iter().map(|c| c.hb_obligations).sum(),
        hb_races,
        checks,
        findings,
    }
}

/// Hint-accuracy accumulator (address-hint workloads only).
#[derive(Default)]
struct CoverageStats {
    sum_pct: f64,
    measured: u64,
    min_pct: Option<f64>,
    /// (phase, fork index, pct) of sub-threshold threads.
    offenders: Vec<(usize, usize, f64)>,
}

impl CoverageStats {
    fn accumulate(
        &mut self,
        capture: &Capture,
        phase_ix: usize,
        phase: &PhaseModel,
        opts: &AnalyzeOptions,
    ) {
        let line = capture.machine.l2_line();
        for (fork, (hints, fp)) in phase.hints.iter().zip(&phase.footprints).enumerate() {
            if fp.is_empty() || hints.dims() == 0 {
                continue;
            }
            let mut region_lines: BTreeSet<u64> = BTreeSet::new();
            for dim in 0..hints.dims() {
                let hint = hints.get(dim);
                if hint.is_null() {
                    continue;
                }
                let block = capture.config.block_size(dim);
                let start = hint.raw() & !(block - 1);
                region_lines.extend(start / line..(start + block) / line);
            }
            let footprint_lines = fp.lines(line);
            let covered = footprint_lines
                .iter()
                .filter(|l| region_lines.contains(l))
                .count();
            let pct = 100.0 * covered as f64 / footprint_lines.len() as f64;
            self.sum_pct += pct;
            self.measured += 1;
            self.min_pct = Some(self.min_pct.map_or(pct, |m: f64| m.min(pct)));
            if pct < opts.hint_threshold_pct {
                self.offenders.push((phase_ix, fork, pct));
            }
        }
    }

    fn min_pct(&self) -> Option<f64> {
        self.min_pct
    }

    fn mean_pct(&self) -> Option<f64> {
        (self.measured > 0).then(|| self.sum_pct / self.measured as f64)
    }

    fn report(&self, capture: &Capture, opts: &AnalyzeOptions, findings: &mut Vec<Finding>) {
        if capture.hint_kind == HintKind::Spatial {
            findings.push(Finding {
                severity: Severity::Info,
                analysis: "hint-accuracy",
                workload: capture.workload.clone(),
                detail: "hints are spatial coordinates, not data addresses; coverage \
                         lint skipped (paper §4.4)"
                    .to_string(),
            });
            return;
        }
        if self.offenders.is_empty() {
            return;
        }
        let examples: Vec<String> = self
            .offenders
            .iter()
            .take(5)
            .map(|(p, t, pct)| format!("phase {p} thread {t}: {pct:.1}%"))
            .collect();
        findings.push(Finding {
            severity: Severity::Error,
            analysis: "hint-accuracy",
            workload: capture.workload.clone(),
            detail: format!(
                "{} thread(s) whose hint blocks cover < {:.0}% of their footprint \
                 ({}): hints are stale or wrong",
                self.offenders.len(),
                opts.hint_threshold_pct,
                examples.join(", ")
            ),
        });
    }
}

/// Bin-overflow accumulator.
#[derive(Default)]
struct OverflowStats {
    flat: u64,
    sub: u64,
    worst_flat: Option<(usize, usize, u64)>,
    worst_sub: Option<(usize, usize, u64)>,
}

impl OverflowStats {
    fn accumulate(
        &mut self,
        capture: &Capture,
        phase_ix: usize,
        phase: &PhaseModel,
        paper_bins: &BinAssignment,
    ) {
        let machine = &capture.machine;
        // Flat bins against the L2 budget.
        for (bin, bytes) in
            bin_footprint_bytes(&phase.footprints, &paper_bins.fine, machine.l2_line())
        {
            if bytes > machine.l2_capacity() {
                self.flat += 1;
                if self.worst_flat.is_none_or(|(_, _, b)| bytes > b) {
                    self.worst_flat = Some((phase_ix, bin, bytes));
                }
            }
        }
        // Hierarchical sub-bins against the L1 budget.
        if let Some(policy) = capture.hierarchical {
            let assignment = assign_bins(policy, &phase.hints);
            for (bin, bytes) in
                bin_footprint_bytes(&phase.footprints, &assignment.fine, machine.l1_line())
            {
                if bytes > machine.l1_capacity() {
                    self.sub += 1;
                    if self.worst_sub.is_none_or(|(_, _, b)| bytes > b) {
                        self.worst_sub = Some((phase_ix, bin, bytes));
                    }
                }
            }
        }
    }

    fn report(&self, capture: &Capture, findings: &mut Vec<Finding>) {
        let machine = &capture.machine;
        if let Some((phase, bin, bytes)) = self.worst_flat {
            findings.push(Finding {
                severity: Severity::Warning,
                analysis: "bin-overflow",
                workload: capture.workload.clone(),
                detail: format!(
                    "{} bin(s) exceed the {} B L2 budget (worst: phase {phase} bin \
                     {bin} holds {bytes} B): these bins cannot deliver the reuse the \
                     policy promises",
                    self.flat,
                    machine.l2_capacity()
                ),
            });
        }
        if let Some((phase, bin, bytes)) = self.worst_sub {
            findings.push(Finding {
                severity: Severity::Warning,
                analysis: "bin-overflow",
                workload: capture.workload.clone(),
                detail: format!(
                    "{} hierarchical sub-bin(s) exceed the {} B L1 budget (worst: \
                     phase {phase} sub-bin {bin} holds {bytes} B)",
                    self.sub,
                    machine.l1_capacity()
                ),
            });
        }
    }
}

/// Aggregate footprint of every bin, in bytes of distinct
/// `line_size`-byte lines. Returns `(bin id, bytes)` in bin order.
fn bin_footprint_bytes(
    footprints: &[ThreadFootprint],
    bin_of: &[usize],
    line_size: u64,
) -> Vec<(usize, u64)> {
    let mut lines: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    for (fp, &bin) in footprints.iter().zip(bin_of) {
        lines.entry(bin).or_default().extend(fp.lines(line_size));
    }
    lines
        .into_iter()
        .map(|(bin, set)| (bin, set.len() as u64 * line_size))
        .collect()
}

/// False-sharing accumulator.
#[derive(Default)]
struct FalseSharingStats {
    lines: u64,
    examples: Vec<String>,
}

impl FalseSharingStats {
    fn accumulate(
        &mut self,
        capture: &Capture,
        phase_ix: usize,
        phase: &PhaseModel,
        paper_bins: &BinAssignment,
    ) {
        let line_size = capture.machine.l2_line();
        // line → per-thread (words on the line, wrote the line?).
        #[allow(clippy::type_complexity)]
        let mut members: BTreeMap<u64, Vec<(usize, BTreeSet<u64>, bool)>> = BTreeMap::new();
        for (thread, fp) in phase.footprints.iter().enumerate() {
            let mut on_line: BTreeMap<u64, (BTreeSet<u64>, bool)> = BTreeMap::new();
            for &w in fp.read_words() {
                on_line
                    .entry(w * WORD_BYTES / line_size)
                    .or_default()
                    .0
                    .insert(w);
            }
            for &w in fp.write_words() {
                let entry = on_line.entry(w * WORD_BYTES / line_size).or_default();
                entry.0.insert(w);
                entry.1 = true;
            }
            for (line, (words, wrote)) in on_line {
                members
                    .entry(line)
                    .or_default()
                    .push((thread, words, wrote));
            }
        }
        for (line, threads) in members {
            if threads.len() < 2 || !threads.iter().any(|(_, _, wrote)| *wrote) {
                continue;
            }
            let mut shared = false;
            'pairs: for (i, (ta, wa, wrote_a)) in threads.iter().enumerate() {
                for (tb, wb, wrote_b) in &threads[i + 1..] {
                    if paper_bins.fine[*ta] == paper_bins.fine[*tb] {
                        continue;
                    }
                    if !(*wrote_a || *wrote_b) {
                        continue;
                    }
                    if wa.is_disjoint(wb) {
                        shared = true;
                        if self.examples.len() < 3 {
                            self.examples.push(format!(
                                "phase {phase_ix} line {:#x}: threads {ta} and {tb} \
                                 (bins {} and {}) touch distinct words",
                                line * line_size,
                                paper_bins.fine[*ta],
                                paper_bins.fine[*tb]
                            ));
                        }
                        break 'pairs;
                    }
                }
            }
            if shared {
                self.lines += 1;
            }
        }
    }

    fn report(&self, capture: &Capture, findings: &mut Vec<Finding>) {
        if self.lines == 0 {
            return;
        }
        findings.push(Finding {
            severity: Severity::Warning,
            analysis: "false-sharing",
            workload: capture.workload.clone(),
            detail: format!(
                "{} cache line(s) falsely shared across bins ({}); threads in \
                 different bins write/read distinct words of the same line",
                self.lines,
                self.examples.join("; ")
            ),
        });
    }
}

/// Cross-node sharing accumulator: conflicting pairs whose hint bins
/// sit under different subtrees of the coarsest topology level. Only
/// engages at depth ≥ 3 — with two levels the coarsest rung is the L2
/// itself, and bin containment (steal-safety) already covers that.
#[derive(Default)]
struct CrossNodeStats {
    pairs: u64,
    examples: Vec<String>,
}

impl CrossNodeStats {
    fn accumulate(
        &mut self,
        capture: &Capture,
        phase_ix: usize,
        phase: &PhaseModel,
        conflicts: &[ConflictPair],
    ) {
        let Some(mut policy) = capture.topology else {
            return;
        };
        let depth = policy.depth();
        if depth < 3 {
            return;
        }
        for pair in conflicts {
            let key_a = policy.bin_key(phase.hints[pair.a]);
            let key_b = policy.bin_key(phase.hints[pair.b]);
            if policy.ancestor_key(key_a, depth - 1) != policy.ancestor_key(key_b, depth - 1) {
                self.pairs += 1;
                if self.examples.len() < 3 {
                    self.examples.push(format!(
                        "phase {phase_ix}: threads {} and {} share word {:#x} across \
                         node subtrees",
                        pair.a,
                        pair.b,
                        pair.example_word * WORD_BYTES
                    ));
                }
            }
        }
    }

    fn report(&self, capture: &Capture, findings: &mut Vec<Finding>) {
        if self.pairs == 0 {
            return;
        }
        findings.push(Finding {
            severity: Severity::Warning,
            analysis: "cross-node-sharing",
            workload: capture.workload.clone(),
            detail: format!(
                "{} conflicting pair(s) span different node subtrees ({}); the shared \
                 words ping-pong across the machine's coarsest level no matter how \
                 bins are drained",
                self.pairs,
                self.examples.join("; ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{capture_kernel, default_machine, AnalyzeScale};
    use workloads::Kernel;

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn every_policy_is_order_safe_on_the_pde() {
        let capture = capture_kernel(Kernel::Pde, &default_machine(), &AnalyzeScale::default());
        let summary = analyze(&capture, &AnalyzeOptions::default());
        assert!(summary.conflict_pairs > 0, "PDE neighbours must conflict");
        assert_eq!(summary.violations, 0);
        for check in &summary.checks {
            assert!(check.checked, "{} skipped", check.policy);
            assert_eq!(check.violations, 0, "{} reorders the PDE", check.policy);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn matmul_threads_are_conflict_free() {
        let capture = capture_kernel(Kernel::MatMul, &default_machine(), &AnalyzeScale::default());
        let summary = analyze(&capture, &AnalyzeOptions::default());
        assert_eq!(summary.conflict_pairs, 0);
        assert_eq!(summary.violations, 0);
        assert_eq!(summary.errors(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn sor_reorders_are_informational_not_errors() {
        let capture = capture_kernel(Kernel::Sor, &default_machine(), &AnalyzeScale::default());
        let summary = analyze(&capture, &AnalyzeOptions::default());
        assert!(summary.conflict_pairs > 0, "sweeps must conflict");
        assert_eq!(
            summary.violations, 0,
            "convergent reorders are not violations"
        );
        assert_eq!(summary.errors(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn nbody_skips_hint_accuracy_and_is_conflict_free() {
        let capture = capture_kernel(Kernel::NBody, &default_machine(), &AnalyzeScale::default());
        let summary = analyze(&capture, &AnalyzeOptions::default());
        assert_eq!(summary.conflict_pairs, 0);
        assert_eq!(summary.hint_coverage_min_pct, None);
        assert_eq!(summary.errors(), 0);
    }
}

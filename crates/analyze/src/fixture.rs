//! Seeded regression fixtures with deliberately injected bugs.
//!
//! Each fixture runs real threads through a real [`Scheduler`] with a
//! [`FootprintSink`] attached — the same capture path the kernels use —
//! but the thread bodies are synthetic, so exactly one defect is
//! present by construction. CI runs `schedlint --fixture <name> --gate`
//! and asserts the gate *fails* with exactly the injected finding: the
//! analyzer must neither miss the bug nor over-report.

use crate::capture::{Capture, DrainConcurrency, PhaseModel};
use cachesim::MachineModel;
use locality_sched::{
    Hierarchical, Hints, PaperBlockHash, RunMode, Scheduler, SchedulerConfig, TopologyPolicy,
};
use memtrace::{Addr, FootprintSink, TraceSink};
use workloads::{HintKind, OrderSemantics};

/// Fixture block size: one 4 KB block per hint region.
const BLOCK: u64 = 4096;
/// L1 sub-block for the fixtures' hierarchical geometry.
const SUB_BLOCK: u64 = 1024;
/// Base address of the fixtures' data regions.
const BASE: u64 = 0x10_000;
/// Coarsest ("node") rung of the cross-node fixture's depth-3 ladder.
const NODE_BLOCK: u64 = 64 * 1024;

/// The injected-bug fixtures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fixture {
    /// Eight threads with private 4 KB regions, each hinting its own
    /// region base — except thread 3, whose hint points at an unrelated
    /// address far away. Expected findings: exactly one hint-accuracy
    /// **error** (thread 3 at 0% coverage) and nothing else.
    WrongHint,
    /// Two threads in different bins, each working inside its own
    /// hinted block — plus one shared cache line where thread 0 writes
    /// word 0 and thread 1 reads word 1. Distinct words, same line,
    /// different bins: exactly one false-sharing **warning** and
    /// nothing else.
    FalseSharing,
    /// Two threads under *convergent* semantics, each working in its
    /// own hinted region, that both write one contended word — and the
    /// two regions sit under different node subtrees of a depth-3
    /// topology on the NUMA machine. The word ping-pongs across the
    /// coarsest level no matter how bins are drained: exactly one
    /// cross-node-sharing **warning** and nothing else.
    CrossNode,
    /// Two threads in different flat bins, under *convergent* semantics
    /// and a declared [`Stealing`](DrainConcurrency::Stealing) drain,
    /// that both write one contended word outside both hinted blocks.
    /// The serial tour orders them, but bin containment does not — a
    /// stealing drain can run them concurrently, so the pair is a data
    /// race: exactly one happens-before **error** and nothing else.
    UnorderedRace,
}

impl Fixture {
    /// Every fixture.
    pub const ALL: [Fixture; 4] = [
        Fixture::WrongHint,
        Fixture::FalseSharing,
        Fixture::CrossNode,
        Fixture::UnorderedRace,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Fixture::WrongHint => "wrong-hint",
            Fixture::FalseSharing => "false-sharing",
            Fixture::CrossNode => "cross-node",
            Fixture::UnorderedRace => "unordered-race",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Fixture> {
        Fixture::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Runs the fixture through a real scheduler and captures it.
    pub fn capture(self) -> Capture {
        let (plan, hints) = match self {
            Fixture::WrongHint => wrong_hint_plan(),
            Fixture::FalseSharing => false_sharing_plan(),
            Fixture::CrossNode => cross_node_plan(),
            Fixture::UnorderedRace => unordered_race_plan(),
        };
        let mut capture = capture_plan(self.name(), plan, hints);
        match self {
            Fixture::CrossNode => {
                // Convergent semantics: the same-word conflict is
                // allowed, so the only finding left is the cross-node
                // warning.
                capture.semantics = OrderSemantics::Convergent;
                capture.machine = MachineModel::numa2();
                capture.topology =
                    TopologyPolicy::uniform(&[SUB_BLOCK, BLOCK, NODE_BLOCK], false).ok();
            }
            Fixture::UnorderedRace => {
                // Convergent semantics (any serial order converges) but
                // a *stealing* drain declaration: the cross-bin
                // conflict is unordered by happens-before, which is
                // the injected race.
                capture.semantics = OrderSemantics::Convergent;
                capture.concurrency = DrainConcurrency::Stealing;
            }
            _ => {}
        }
        capture
    }
}

/// One synthetic reference: `(is_write, address)`; always 8 bytes.
type Op = (bool, u64);

/// Thread 3's bogus hint target: far outside every data region.
const WRONG_HINT_ADDR: u64 = 0x4000_0000;

fn wrong_hint_plan() -> (Vec<Vec<Op>>, Vec<Hints>) {
    let mut plan = Vec::new();
    let mut hints = Vec::new();
    for t in 0..8u64 {
        let region = BASE + t * BLOCK;
        let mut ops = Vec::new();
        for w in 0..8 {
            ops.push((false, region + w * 8));
            ops.push((true, region + 128 + w * 8));
        }
        plan.push(ops);
        let hint = if t == 3 { WRONG_HINT_ADDR } else { region };
        hints.push(Hints::one(Addr::new(hint)));
    }
    (plan, hints)
}

/// The falsely shared line, outside both hinted blocks.
const SHARED_LINE: u64 = BASE + 8 * BLOCK;

fn false_sharing_plan() -> (Vec<Vec<Op>>, Vec<Hints>) {
    let region_a = BASE;
    let region_b = BASE + BLOCK;
    let mut ops_a: Vec<Op> = (0..10).map(|k| (true, region_a + k * 0x100)).collect();
    let mut ops_b: Vec<Op> = (0..10).map(|k| (true, region_b + k * 0x100)).collect();
    // Same 128-byte line, distinct words: false sharing, not a conflict.
    ops_a.push((true, SHARED_LINE));
    ops_b.push((false, SHARED_LINE + 8));
    (
        vec![ops_a, ops_b],
        vec![
            Hints::one(Addr::new(region_a)),
            Hints::one(Addr::new(region_b)),
        ],
    )
}

/// The contended word both cross-node threads write: inside thread 0's
/// node subtree but outside both hinted blocks.
const CONTENDED: u64 = BASE + 2 * BLOCK;

fn cross_node_plan() -> (Vec<Vec<Op>>, Vec<Hints>) {
    let region_a = BASE;
    let region_b = BASE + NODE_BLOCK;
    let mut ops_a: Vec<Op> = (0..10).map(|k| (true, region_a + k * 0x100)).collect();
    let mut ops_b: Vec<Op> = (0..10).map(|k| (true, region_b + k * 0x100)).collect();
    // Same word, both writing: a true conflict (fine under convergent
    // semantics) between threads binned under different node subtrees.
    ops_a.push((true, CONTENDED));
    ops_b.push((true, CONTENDED));
    (
        vec![ops_a, ops_b],
        vec![
            Hints::one(Addr::new(region_a)),
            Hints::one(Addr::new(region_b)),
        ],
    )
}

/// The raced word both unordered-race threads write: outside both
/// hinted blocks, in neither thread's bin.
const RACED: u64 = BASE + 9 * BLOCK;

fn unordered_race_plan() -> (Vec<Vec<Op>>, Vec<Hints>) {
    let region_a = BASE;
    let region_b = BASE + BLOCK;
    let mut ops_a: Vec<Op> = (0..10).map(|k| (true, region_a + k * 0x100)).collect();
    let mut ops_b: Vec<Op> = (0..10).map(|k| (true, region_b + k * 0x100)).collect();
    // Same word, both writing: a true conflict between threads the
    // paper policy puts in different bins. Under a stealing drain the
    // pair is reachable concurrently — a data race.
    ops_a.push((true, RACED));
    ops_b.push((true, RACED));
    (
        vec![ops_a, ops_b],
        vec![
            Hints::one(Addr::new(region_a)),
            Hints::one(Addr::new(region_b)),
        ],
    )
}

struct FixtureCtx<'a> {
    plan: &'a [Vec<Op>],
    sink: &'a mut FootprintSink,
}

fn fixture_thread(ctx: &mut FixtureCtx<'_>, index: usize, _unused: usize) {
    for &(is_write, addr) in &ctx.plan[index] {
        if is_write {
            ctx.sink.write(Addr::new(addr), 8);
        } else {
            ctx.sink.read(Addr::new(addr), 8);
        }
    }
}

fn capture_plan(name: &str, plan: Vec<Vec<Op>>, hints: Vec<Hints>) -> Capture {
    let config = SchedulerConfig::builder()
        .block_size(BLOCK)
        .build()
        .expect("power-of-two block");
    let mut sink = FootprintSink::new();
    {
        let mut sched: Scheduler<FixtureCtx<'_>, PaperBlockHash> =
            Scheduler::with_policy(config, PaperBlockHash::from_config(&config));
        for (index, &h) in hints.iter().enumerate() {
            sched.fork_traced(fixture_thread, index, 0, h, &mut sink);
        }
        let mut ctx = FixtureCtx {
            plan: &plan,
            sink: &mut sink,
        };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
    }
    let phases = sink
        .into_phases()
        .into_iter()
        .map(|trace| PhaseModel::from_trace(trace, &config))
        .collect();
    Capture {
        workload: format!("fixture/{name}"),
        semantics: OrderSemantics::Exact,
        hint_kind: HintKind::Address,
        config,
        hierarchical: Hierarchical::uniform(SUB_BLOCK, BLOCK, false).ok(),
        topology: None,
        machine: MachineModel::r8000(),
        concurrency: DrainConcurrency::Serial,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_names_round_trip() {
        for f in Fixture::ALL {
            assert_eq!(Fixture::from_name(f.name()), Some(f));
        }
        assert_eq!(Fixture::from_name("nope"), None);
    }

    #[test]
    fn wrong_hint_capture_is_one_phase_of_eight() {
        let capture = Fixture::WrongHint.capture();
        assert_eq!(capture.phases.len(), 1);
        let phase = &capture.phases[0];
        assert_eq!(phase.threads(), 8);
        assert!(phase.footprints.iter().all(|fp| !fp.is_empty()));
    }

    #[test]
    fn false_sharing_capture_splits_the_two_threads_into_two_bins() {
        let capture = Fixture::FalseSharing.capture();
        let phase = &capture.phases[0];
        let bins = crate::policies::assign_bins(
            crate::policies::paper_policy(&capture.config),
            &phase.hints,
        );
        assert_eq!(bins.fine_bins, 2);
    }
}

//! Vector-clock happens-before engine over schedule-event streams.
//!
//! The mirror-replay proof (PR 5) shows a policy's *serial* drain
//! preserves conflicting-pair order; it says nothing about what happens
//! when drain units migrate between actors — `ParScheduler` stealing,
//! the sharded simulator's hand-offs, serving-lane grants. This module
//! generalizes the proof: replay a [`ScheduleLog`] into per-actor
//! vector clocks at **drain-unit granularity** and decide, for any two
//! thread bodies, whether the log orders them.
//!
//! Drain-unit granularity is sound because a drain unit (one bin, or
//! one parent group's sub-bins) executes serially on exactly one actor,
//! and every migration mechanism in the codebase — deque stealing,
//! shard hand-off, lane grant — moves *whole units*, never fractions.
//! So intra-unit bodies inherit the actor's program order, and
//! inter-unit order reduces to the clock algebra below.
//!
//! Clock rules (each event ticks the acting actor so snapshots are
//! strictly increasing per actor):
//!
//! * [`Fork`](SchedEvent::Fork) stores the forking actor's clock as the
//!   thread's *birth clock*.
//! * [`Dispatch`](SchedEvent::Dispatch) joins the thread's birth clock
//!   (publication edge: the body sees everything its forker saw) and
//!   snapshots the actor's clock as the *body clock*.
//! * [`Steal`](SchedEvent::Steal) ticks the thief only — **no join**.
//!   A steal moves unexecuted work, not history; the publication edge
//!   is already the fork → dispatch join. Joining here would invent
//!   ordering that no synchronization enforces and hide real races.
//! * [`Handoff`](SchedEvent::Handoff) is a synchronizing edge: the
//!   receiver joins the sender's clock (shard queue flush, merge, lane
//!   grant).
//! * [`Barrier`](SchedEvent::Barrier) joins every actor with every
//!   other (the final join of a run).
//!
//! Two bodies `a`, `b` satisfy `a ⇒ b` iff `b`'s body clock has seen
//! `a`'s actor tick at `a`'s dispatch: `Va[A_a] ≤ Vb[A_a]`.

use crate::capture::Capture;
use crate::conflict::{conflict_pairs, ConflictPair};
use crate::policies::{assign_bins, dispatch_trace, paper_policy, single_policy, unique_policy};
use locality_sched::BinPolicy;
use memtrace::{SchedEvent, ScheduleLog, ThreadFootprint, WORD_BYTES};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use workloads::OrderSemantics;

/// A per-actor vector clock: `t[a]` counts actor `a`'s events observed
/// so far.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    t: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `actors` actors.
    pub fn new(actors: u32) -> Self {
        VectorClock {
            t: vec![0; actors as usize],
        }
    }

    /// Advances `actor`'s component.
    #[inline]
    pub fn tick(&mut self, actor: u32) {
        self.t[actor as usize] += 1;
    }

    /// Pointwise maximum with `other` (the join of two histories).
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.t.iter_mut().zip(&other.t) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `actor`'s component.
    #[inline]
    pub fn get(&self, actor: u32) -> u64 {
        self.t[actor as usize]
    }
}

/// The happens-before relation of one [`ScheduleLog`], queryable per
/// dispatched thread body.
#[derive(Clone, Debug)]
pub struct HbIndex {
    /// Per dispatched fork: (executing actor, body clock snapshot).
    bodies: Vec<Option<(u32, VectorClock)>>,
    /// Per dispatched fork: the (actor, drain unit) it executed inside,
    /// when the log wrapped the dispatch in begin/end events.
    unit_of: Vec<Option<(u32, u32)>>,
    /// Events processed.
    pub events: u64,
    /// Drain units opened ([`DrainBegin`](SchedEvent::DrainBegin)s).
    pub units: u64,
}

impl HbIndex {
    /// Replays `log` into per-actor clocks and snapshots every
    /// dispatched body.
    ///
    /// # Panics
    ///
    /// Panics if an event names an actor `>= log.actors`, or a
    /// [`Dispatch`](SchedEvent::Dispatch) a fork that was never forked
    /// in a log that contains [`Fork`](SchedEvent::Fork) events.
    pub fn from_log(log: &ScheduleLog) -> HbIndex {
        let actors = log.actors;
        let mut clocks: Vec<VectorClock> = (0..actors).map(|_| VectorClock::new(actors)).collect();
        let mut births: Vec<Option<VectorClock>> = Vec::new();
        let mut open: Vec<Option<u32>> = vec![None; actors as usize];
        let mut index = HbIndex {
            bodies: Vec::new(),
            unit_of: Vec::new(),
            events: log.events.len() as u64,
            units: 0,
        };
        let ensure = |v: &mut Vec<Option<VectorClock>>, fork: u32| {
            if v.len() <= fork as usize {
                v.resize(fork as usize + 1, None);
            }
        };
        for &event in &log.events {
            match event {
                SchedEvent::Fork { actor, fork } => {
                    clocks[actor as usize].tick(actor);
                    ensure(&mut births, fork);
                    births[fork as usize] = Some(clocks[actor as usize].clone());
                }
                SchedEvent::DrainBegin { actor, unit } => {
                    clocks[actor as usize].tick(actor);
                    open[actor as usize] = Some(unit);
                    index.units += 1;
                }
                SchedEvent::Dispatch { actor, fork } => {
                    clocks[actor as usize].tick(actor);
                    if let Some(Some(birth)) = births.get(fork as usize) {
                        clocks[actor as usize].join(birth);
                    } else {
                        assert!(
                            births.is_empty(),
                            "dispatch of fork {fork} without a Fork event"
                        );
                    }
                    if index.bodies.len() <= fork as usize {
                        index.bodies.resize(fork as usize + 1, None);
                        index.unit_of.resize(fork as usize + 1, None);
                    }
                    index.bodies[fork as usize] = Some((actor, clocks[actor as usize].clone()));
                    index.unit_of[fork as usize] = open[actor as usize].map(|unit| (actor, unit));
                }
                SchedEvent::DrainEnd { actor, .. } => {
                    clocks[actor as usize].tick(actor);
                    open[actor as usize] = None;
                }
                SchedEvent::Steal { thief, .. } => {
                    // Provenance only — see the module docs on why a
                    // steal must not join.
                    clocks[thief as usize].tick(thief);
                }
                SchedEvent::Handoff { from, to } => {
                    clocks[from as usize].tick(from);
                    let snapshot = clocks[from as usize].clone();
                    clocks[to as usize].tick(to);
                    clocks[to as usize].join(&snapshot);
                }
                SchedEvent::Barrier => {
                    let mut all = VectorClock::new(actors);
                    for clock in &clocks {
                        all.join(clock);
                    }
                    for (a, clock) in clocks.iter_mut().enumerate() {
                        *clock = all.clone();
                        clock.tick(a as u32);
                    }
                }
            }
        }
        index
    }

    /// `true` when fork `fork` has a recorded body.
    pub fn dispatched(&self, fork: usize) -> bool {
        self.bodies.get(fork).is_some_and(Option::is_some)
    }

    /// The (actor, drain unit) fork `fork` executed inside, if known.
    pub fn unit_of(&self, fork: usize) -> Option<(u32, u32)> {
        self.unit_of.get(fork).copied().flatten()
    }

    /// `true` when body `a` happens before body `b` in every execution
    /// consistent with the log. `false` for unknown forks or `a == b`.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let (Some(Some((actor_a, clock_a))), Some(Some((_, clock_b)))) =
            (self.bodies.get(a), self.bodies.get(b))
        else {
            return false;
        };
        clock_b.get(*actor_a) >= clock_a.get(*actor_a)
    }

    /// `true` when the log orders `a` and `b` either way.
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        self.happens_before(a, b) || self.happens_before(b, a)
    }
}

/// What an [`OrderObligation`] demands of the happens-before relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObligationKind {
    /// Fork order must be preserved: `a ⇒ b` (order-exact workloads,
    /// `a` forked before `b`).
    ForkOrder,
    /// The pair must be ordered *some* way (`a ⇒ b` or `b ⇒ a`): the
    /// data-race lint for conflicting pairs.
    ConflictOrder,
    /// An explicit dependency edge `a ⇒ b` from a task DAG
    /// (forward-looking: futures/continuation scheduling plugs its
    /// edges in here without an analyzer rewrite).
    DagEdge,
}

/// One ordering demand between two thread bodies, checkable against
/// any [`HbIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderObligation {
    /// What must hold.
    pub kind: ObligationKind,
    /// First fork index (the earlier/source side for directed kinds).
    pub a: usize,
    /// Second fork index.
    pub b: usize,
}

impl OrderObligation {
    /// Checks the obligation against `index`.
    pub fn satisfied(&self, index: &HbIndex) -> bool {
        match self.kind {
            ObligationKind::ForkOrder | ObligationKind::DagEdge => {
                index.happens_before(self.a, self.b)
            }
            ObligationKind::ConflictOrder => index.ordered(self.a, self.b),
        }
    }
}

/// Models a *stealing* drain of one phase as a [`ScheduleLog`]: every
/// fine bin is its own actor (actor `bin + 1`; stealing migrates whole
/// bins, so a bin is the unit that can land on any worker), forks all
/// happen on actor 0, and bin actors never synchronize with each other.
/// Within a bin, bodies keep their serial dispatch order (`order`, the
/// mirror-replay permutation); across bins, only the fork → dispatch
/// publication edges order anything — which is exactly the guarantee a
/// work-stealing drain (including `TopologyAware`, which merely *biases*
/// victim choice) actually provides.
pub fn stealing_log(forks: usize, fine: &[usize], order: &[usize]) -> ScheduleLog {
    assert_eq!(fine.len(), forks);
    assert_eq!(order.len(), forks);
    let fine_bins = fine.iter().copied().max().map_or(0, |m| m + 1);
    let mut log = ScheduleLog::new(u32::try_from(fine_bins + 1).expect("bins fit u32"));
    for f in 0..forks {
        log.push(SchedEvent::Fork {
            actor: 0,
            fork: u32::try_from(f).expect("fork fits u32"),
        });
    }
    let mut by_bin: Vec<Vec<u32>> = vec![Vec::new(); fine_bins];
    for &f in order {
        by_bin[fine[f]].push(u32::try_from(f).expect("fork fits u32"));
    }
    for (bin, members) in by_bin.iter().enumerate() {
        let actor = u32::try_from(bin + 1).expect("actor fits u32");
        let unit = u32::try_from(bin).expect("unit fits u32");
        log.push(SchedEvent::DrainBegin { actor, unit });
        for &fork in members {
            log.push(SchedEvent::Dispatch { actor, fork });
        }
        log.push(SchedEvent::DrainEnd { actor, unit });
    }
    log.push(SchedEvent::Barrier);
    log
}

/// Counts conflicting pairs the index leaves unordered — the pairs a
/// migrating drain may execute in either order, i.e. data races under
/// that execution model.
pub fn unordered_conflicts(index: &HbIndex, conflicts: &[ConflictPair]) -> u64 {
    conflicts
        .iter()
        .filter(|pair| !index.ordered(pair.a, pair.b))
        .count() as u64
}

/// One steal-safety certificate row of `ANALYZE_hb.json`: a kernel ×
/// policy pair with its obligation counts under both execution models.
#[derive(Clone, Debug)]
pub struct HbRow {
    /// Row label: `<workload>/<policy>`.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Phases analyzed.
    pub phases: u64,
    /// Drain units of the serial trace, summed over phases.
    pub hb_units: u64,
    /// Schedule events processed (serial + stealing model).
    pub hb_events: u64,
    /// Order obligations checked.
    pub hb_obligations: u64,
    /// Conflicting pairs found.
    pub hb_conflict_pairs: u64,
    /// [`ForkOrder`](ObligationKind::ForkOrder) obligations violated in
    /// the serial model (must be 0 — the mirror-replay theorem).
    pub hb_violations: u64,
    /// Conflicting pairs unordered in the stealing model.
    pub hb_unordered: u64,
    /// 1 when `hb_unordered == 0`: the policy is certified safe to
    /// drain with stealing workers for this kernel.
    pub hb_steal_safe: u64,
}

/// One sharded-replay certificate row: the simulator's shard partition
/// checked against a kernel's real footprints.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Row label: `<workload>/shards<requested>`.
    pub workload: String,
    /// Shards the plan actually produced.
    pub shards: u32,
    /// Events in the modeled hand-off log (one merge round).
    pub hb_events: u64,
    /// Footprint words whose cache line straddles a shard boundary
    /// (must be 0: every cross-shard edge chains through the merge on
    /// actor 0, so split-line LRU state would be a race).
    pub hb_cross_shard_words: u64,
    /// 1 when `hb_cross_shard_words == 0`.
    pub hb_steal_safe: u64,
}

/// The machine-checkable certificate report emitted as
/// `ANALYZE_hb.json`. Every input is deterministic (seeded captures,
/// serial mirror replay, modeled stealing/shard logs), so two runs
/// produce byte-identical JSON.
#[derive(Clone, Debug)]
pub struct HbReport {
    /// Machine label the captures ran against.
    pub machine: String,
    /// Kernel × policy certificate rows.
    pub rows: Vec<HbRow>,
    /// Kernel × shard-count certificate rows.
    pub shard_rows: Vec<ShardRow>,
}

/// Builds one certificate row for `capture` under `policy`.
fn policy_row<P: BinPolicy + Copy>(capture: &Capture, name: &str, policy: P) -> HbRow {
    let exact = capture.semantics == OrderSemantics::Exact;
    let mut row = HbRow {
        workload: format!("{}/{}", capture.workload, name),
        policy: name.to_string(),
        phases: capture.phases.len() as u64,
        hb_units: 0,
        hb_events: 0,
        hb_obligations: 0,
        hb_conflict_pairs: 0,
        hb_violations: 0,
        hb_unordered: 0,
        hb_steal_safe: 0,
    };
    for phase in &capture.phases {
        let conflicts = conflict_pairs(&phase.footprints);
        let trace = dispatch_trace(capture.config, policy, &phase.hints);
        let serial = HbIndex::from_log(&trace.log);
        let assignment = assign_bins(policy, &phase.hints);
        let stealing = HbIndex::from_log(&stealing_log(
            phase.threads(),
            &assignment.fine,
            &trace.order,
        ));
        row.hb_units += serial.units;
        row.hb_events += serial.events + stealing.events;
        row.hb_conflict_pairs += conflicts.len() as u64;
        for pair in &conflicts {
            if exact {
                row.hb_obligations += 1;
                let fork_order = OrderObligation {
                    kind: ObligationKind::ForkOrder,
                    a: pair.a,
                    b: pair.b,
                };
                if !fork_order.satisfied(&serial) {
                    row.hb_violations += 1;
                }
            }
            row.hb_obligations += 1;
        }
        row.hb_unordered += unordered_conflicts(&stealing, &conflicts);
    }
    row.hb_steal_safe = u64::from(row.hb_unordered == 0);
    row
}

/// Models one merge round of an `s`-shard simulator pipeline —
/// identical in shape to `ShardedSimSink::schedule_log` after one
/// drain: producer → shard hand-offs, one drain unit per shard, shard →
/// merge hand-offs, barrier.
pub fn shard_model_log(shards: u32) -> ScheduleLog {
    let mut log = ScheduleLog::new(shards + 1);
    for s in 0..shards {
        log.push(SchedEvent::Handoff { from: 0, to: s + 1 });
    }
    for s in 0..shards {
        log.push(SchedEvent::DrainBegin {
            actor: s + 1,
            unit: s,
        });
        log.push(SchedEvent::DrainEnd {
            actor: s + 1,
            unit: s,
        });
    }
    for s in 0..shards {
        log.push(SchedEvent::Handoff { from: s + 1, to: 0 });
    }
    log.push(SchedEvent::Barrier);
    log
}

/// Certifies the sharded simulator's partition against `capture`'s real
/// footprints: every footprint word's cache line must map entirely to
/// one shard, because per-shard replay is serial and shards only
/// synchronize through the merge.
pub fn shard_certificate(capture: &Capture, requested: u32) -> ShardRow {
    let plan = cachesim::ShardPlan::for_hierarchy(&capture.machine.hierarchy(), requested);
    let line = capture.machine.l2_line();
    let mut cross = 0u64;
    for phase in &capture.phases {
        for fp in &phase.footprints {
            cross += cross_shard_words(fp, &plan, line);
        }
    }
    ShardRow {
        workload: format!("{}/shards{requested}", capture.workload),
        shards: plan.shards(),
        hb_events: shard_model_log(plan.shards()).len() as u64,
        hb_cross_shard_words: cross,
        hb_steal_safe: u64::from(cross == 0),
    }
}

/// Counts words of one footprint whose `line`-byte cache line straddles
/// a shard boundary of `plan`.
fn cross_shard_words(fp: &ThreadFootprint, plan: &cachesim::ShardPlan, line: u64) -> u64 {
    let words: BTreeSet<u64> = fp
        .read_words()
        .iter()
        .chain(fp.write_words())
        .copied()
        .collect();
    words
        .into_iter()
        .filter(|&w| {
            let addr = w * WORD_BYTES;
            plan.shard_of(addr) != plan.shard_of(addr & !(line - 1))
        })
        .count() as u64
}

/// Builds the full certificate report over `captures` (typically the
/// four paper kernels): one row per capture × policy (paper,
/// hierarchical and topology when the geometry supports them, single,
/// unique), then one shard row per capture × {2, 4} shards.
pub fn hb_report(machine: &str, captures: &[Capture]) -> HbReport {
    let mut report = HbReport {
        machine: machine.to_string(),
        rows: Vec::new(),
        shard_rows: Vec::new(),
    };
    for capture in captures {
        report
            .rows
            .push(policy_row(capture, "paper", paper_policy(&capture.config)));
        if let Some(h) = capture.hierarchical {
            report.rows.push(policy_row(capture, "hierarchical", h));
        }
        if let Some(t) = capture.topology {
            report.rows.push(policy_row(capture, "topology", t));
        }
        report
            .rows
            .push(policy_row(capture, "single", single_policy()));
        report
            .rows
            .push(policy_row(capture, "unique", unique_policy()));
        for shards in [2, 4] {
            report.shard_rows.push(shard_certificate(capture, shards));
        }
    }
    report
}

impl HbReport {
    /// Serializes the report in the bench JSON idiom (an `experiment`
    /// tag, flat numeric rows keyed by `workload`, an empty `findings`
    /// array). Field order is fixed, every number is an integer, and
    /// the row order is the deterministic build order: the output is
    /// byte-reproducible run-to-run.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"experiment\":\"schedlint-hb\",\"machine\":\"{}\",\"rows\":[",
            crate::report::escape(&self.machine)
        );
        let mut first = true;
        for r in &self.rows {
            if !first {
                json.push(',');
            }
            first = false;
            write!(
                json,
                "{{\"workload\":\"{}\",\"policy\":\"{}\",\"phases\":{},\"hb_units\":{},\
                 \"hb_events\":{},\"hb_obligations\":{},\"hb_conflict_pairs\":{},\
                 \"hb_violations\":{},\"hb_unordered\":{},\"hb_steal_safe\":{}}}",
                crate::report::escape(&r.workload),
                crate::report::escape(&r.policy),
                r.phases,
                r.hb_units,
                r.hb_events,
                r.hb_obligations,
                r.hb_conflict_pairs,
                r.hb_violations,
                r.hb_unordered,
                r.hb_steal_safe,
            )
            .expect("writing to String cannot fail");
        }
        for r in &self.shard_rows {
            if !first {
                json.push(',');
            }
            first = false;
            write!(
                json,
                "{{\"workload\":\"{}\",\"shards\":{},\"hb_events\":{},\
                 \"hb_cross_shard_words\":{},\"hb_steal_safe\":{}}}",
                crate::report::escape(&r.workload),
                r.shards,
                r.hb_events,
                r.hb_cross_shard_words,
                r.hb_steal_safe,
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("],\"findings\":[]}");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_log(forks: usize, order: &[usize]) -> ScheduleLog {
        let mut log = ScheduleLog::new(1);
        for f in 0..forks {
            log.push(SchedEvent::Fork {
                actor: 0,
                fork: f as u32,
            });
        }
        log.push(SchedEvent::DrainBegin { actor: 0, unit: 0 });
        for &f in order {
            log.push(SchedEvent::Dispatch {
                actor: 0,
                fork: f as u32,
            });
        }
        log.push(SchedEvent::DrainEnd { actor: 0, unit: 0 });
        log.push(SchedEvent::Barrier);
        log
    }

    #[test]
    fn serial_log_totally_orders_bodies_by_dispatch_position() {
        let index = HbIndex::from_log(&serial_log(3, &[2, 0, 1]));
        assert!(index.happens_before(2, 0));
        assert!(index.happens_before(0, 1));
        assert!(index.happens_before(2, 1));
        assert!(!index.happens_before(1, 2));
        assert!(index.ordered(0, 2));
        assert_eq!(index.units, 1);
        assert_eq!(index.unit_of(0), Some((0, 0)));
    }

    #[test]
    fn stealing_model_orders_within_bins_only() {
        // Forks 0,2 in bin 0; forks 1,3 in bin 1; serial order 0,2,1,3.
        let log = stealing_log(4, &[0, 1, 0, 1], &[0, 2, 1, 3]);
        let index = HbIndex::from_log(&log);
        assert!(index.happens_before(0, 2), "same bin keeps serial order");
        assert!(index.happens_before(1, 3));
        assert!(!index.ordered(0, 1), "cross-bin bodies race");
        assert!(!index.ordered(2, 3));
        assert_eq!(index.units, 2);
    }

    #[test]
    fn steal_events_add_no_ordering() {
        // Two actors each dispatch one fork; a steal between them must
        // not make the bodies ordered.
        let mut log = ScheduleLog::new(3);
        log.push(SchedEvent::Fork { actor: 0, fork: 0 });
        log.push(SchedEvent::Fork { actor: 0, fork: 1 });
        log.push(SchedEvent::Dispatch { actor: 1, fork: 0 });
        log.push(SchedEvent::Steal {
            thief: 2,
            victim: 1,
            units: 1,
        });
        log.push(SchedEvent::Dispatch { actor: 2, fork: 1 });
        let index = HbIndex::from_log(&log);
        assert!(!index.ordered(0, 1));
    }

    #[test]
    fn handoff_and_barrier_are_synchronizing_edges() {
        let mut log = ScheduleLog::new(2);
        log.push(SchedEvent::Fork { actor: 0, fork: 0 });
        log.push(SchedEvent::Fork { actor: 0, fork: 1 });
        log.push(SchedEvent::Dispatch { actor: 0, fork: 0 });
        log.push(SchedEvent::Handoff { from: 0, to: 1 });
        log.push(SchedEvent::Dispatch { actor: 1, fork: 1 });
        let index = HbIndex::from_log(&log);
        assert!(index.happens_before(0, 1), "handoff carries history");
        assert!(!index.happens_before(1, 0));

        let mut log = ScheduleLog::new(2);
        log.push(SchedEvent::Fork { actor: 0, fork: 0 });
        log.push(SchedEvent::Fork { actor: 0, fork: 1 });
        log.push(SchedEvent::Dispatch { actor: 1, fork: 0 });
        log.push(SchedEvent::Barrier);
        log.push(SchedEvent::Dispatch { actor: 0, fork: 1 });
        let index = HbIndex::from_log(&log);
        assert!(index.happens_before(0, 1), "barrier joins all actors");
    }

    #[test]
    fn obligation_kinds_check_the_right_directions() {
        let index = HbIndex::from_log(&serial_log(2, &[1, 0]));
        let fork_order = OrderObligation {
            kind: ObligationKind::ForkOrder,
            a: 0,
            b: 1,
        };
        assert!(!fork_order.satisfied(&index), "fork order was flipped");
        let conflict = OrderObligation {
            kind: ObligationKind::ConflictOrder,
            a: 0,
            b: 1,
        };
        assert!(conflict.satisfied(&index), "still ordered, just reversed");
        let dag = OrderObligation {
            kind: ObligationKind::DagEdge,
            a: 1,
            b: 0,
        };
        assert!(dag.satisfied(&index));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn shard_model_log_matches_the_simulator_shape() {
        use cachesim::{MachineModel, ShardPlan, ShardedSimSink};
        use memtrace::TraceSink;
        let machine = MachineModel::r8000();
        let plan = ShardPlan::for_hierarchy(&machine.hierarchy(), 4);
        let mut sink = ShardedSimSink::with_plan(machine.hierarchy(), plan);
        for i in 0..64u64 {
            sink.access(memtrace::Access::read(memtrace::Addr::new(i * 64), 8));
        }
        // report() flushes the queues: exactly one drain round.
        let _ = sink.report();
        assert_eq!(
            shard_model_log(plan.shards()).digest(),
            sink.schedule_log().digest(),
            "modeled log must stay in lockstep with the simulator's"
        );
    }
}

//! `schedlint` — schedule-safety, hint-accuracy, bin-overflow, and
//! false-sharing analysis over captured thread footprints.
//!
//! ```text
//! schedlint [--kernel matmul|pde|sor|nbody|all] [--fixture NAME]
//!           [--hint-threshold PCT] [--json PATH] [--hb-json PATH]
//!           [--gate] [--gate-warnings] [--quiet]
//! ```
//!
//! `--hb-json` writes the happens-before steal-safety certificate
//! report (`ANALYZE_hb.json`) over the analyzed kernels: one row per
//! kernel × policy with vector-clock obligation counts, plus sharded
//! simulator partition certificates. The output is byte-reproducible
//! run-to-run.
//!
//! Exit codes follow the `benchdiff` convention: 0 = clean, 1 = gate
//! failure (`--gate`: any error finding; `--gate-warnings` additionally
//! promotes warnings), 2 = usage or I/O error.

use analyze::{
    analyze, capture_kernel, default_machine, hb_report, AnalyzeOptions, AnalyzeReport,
    AnalyzeScale, Fixture,
};
use workloads::Kernel;

struct Args {
    kernels: Vec<Kernel>,
    fixtures: Vec<Fixture>,
    hint_threshold_pct: f64,
    json: Option<String>,
    hb_json: Option<String>,
    gate: bool,
    gate_warnings: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: schedlint [--kernel matmul|pde|sor|nbody|all]\n\
         \x20                [--fixture wrong-hint|false-sharing|cross-node|unordered-race]\n\
         \x20                [--hint-threshold PCT] [--json PATH] [--hb-json PATH]\n\
         \x20                [--gate] [--gate-warnings] [--quiet]\n\
         \n\
         Analyzes captured thread footprints for schedule-safety violations,\n\
         happens-before races, inaccurate hints, overflowing bins, and\n\
         cross-bin false sharing. With no --kernel/--fixture, analyzes all\n\
         four paper kernels. --hb-json writes the vector-clock steal-safety\n\
         certificates for the analyzed kernels.\n\
         Exit codes: 0 clean, 1 gate failure, 2 usage/IO error."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        kernels: Vec::new(),
        fixtures: Vec::new(),
        hint_threshold_pct: AnalyzeOptions::default().hint_threshold_pct,
        json: None,
        hb_json: None,
        gate: false,
        gate_warnings: false,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--kernel" => {
                let name = argv.next().unwrap_or_else(|| usage());
                if name == "all" {
                    args.kernels = Kernel::ALL.to_vec();
                } else {
                    match Kernel::ALL.into_iter().find(|k| k.name() == name) {
                        Some(k) => args.kernels.push(k),
                        None => {
                            eprintln!("schedlint: unknown kernel '{name}'");
                            usage();
                        }
                    }
                }
            }
            "--fixture" => {
                let name = argv.next().unwrap_or_else(|| usage());
                match Fixture::from_name(&name) {
                    Some(f) => args.fixtures.push(f),
                    None => {
                        eprintln!("schedlint: unknown fixture '{name}'");
                        usage();
                    }
                }
            }
            "--hint-threshold" => {
                let pct = argv.next().unwrap_or_else(|| usage());
                match pct.parse::<f64>() {
                    Ok(v) if (0.0..=100.0).contains(&v) => args.hint_threshold_pct = v,
                    _ => {
                        eprintln!("schedlint: bad threshold '{pct}' (want 0..=100)");
                        usage();
                    }
                }
            }
            "--json" => args.json = Some(argv.next().unwrap_or_else(|| usage())),
            "--hb-json" => args.hb_json = Some(argv.next().unwrap_or_else(|| usage())),
            "--gate" => args.gate = true,
            "--gate-warnings" => {
                args.gate = true;
                args.gate_warnings = true;
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("schedlint: unknown argument '{other}'");
                usage();
            }
        }
    }
    if args.kernels.is_empty() && args.fixtures.is_empty() {
        args.kernels = Kernel::ALL.to_vec();
    }
    args
}

fn main() {
    let args = parse_args();
    let machine = default_machine();
    let scale = AnalyzeScale::default();
    let opts = AnalyzeOptions {
        hint_threshold_pct: args.hint_threshold_pct,
    };
    let mut report = AnalyzeReport::new(machine.name(), opts.hint_threshold_pct);
    let mut captures = Vec::new();
    for &kernel in &args.kernels {
        let capture = capture_kernel(kernel, &machine, &scale);
        report.kernels.push(analyze(&capture, &opts));
        captures.push(capture);
    }
    for &fixture in &args.fixtures {
        let capture = fixture.capture();
        report.kernels.push(analyze(&capture, &opts));
    }
    if !args.quiet {
        print!("{}", report.to_text());
    }
    if let Some(path) = &args.json {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("schedlint: cannot write {path}: {err}");
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.hb_json {
        let hb = hb_report(machine.name(), &captures);
        if let Err(err) = std::fs::write(path, hb.to_json()) {
            eprintln!("schedlint: cannot write {path}: {err}");
            std::process::exit(2);
        }
    }
    if args.gate && report.gate_failed(args.gate_warnings) {
        eprintln!(
            "schedlint: gate FAILED ({} error(s), {} warning(s))",
            report.errors(),
            report.warnings()
        );
        std::process::exit(1);
    }
}

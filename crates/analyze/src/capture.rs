//! Footprint capture: run a kernel once under the paper's flat policy
//! with a [`FootprintSink`] attached, and normalize the result into
//! fork-indexed per-thread footprints.
//!
//! The sink records footprints in *dispatch* order (it only sees
//! `thread_begin` events as the drain proceeds), while hints arrive in
//! *fork* order. The two are related by the capture policy's dispatch
//! permutation, which [`PhaseModel::from_trace`] recovers by mirror
//! replay ([`dispatch_order`]) and inverts — after that, footprint `i`
//! belongs to the `i`-th forked thread, and any *other* policy's
//! permutation can be checked against the same data.

use crate::policies::{dispatch_order, paper_policy};
use cachesim::MachineModel;
use locality_sched::{
    Hierarchical, Hints, SchedulerConfig, TopologyPolicy, MAX_DIMS, PACKAGE_TRACE_BASE,
};
use memtrace::{Addr, AddressSpace, FootprintSink, PhaseTrace, ThreadFootprint};
use workloads::{matmul, nbody, pde, sor, BinGeometry, HintKind, Kernel, OrderSemantics};

/// Fixed data seed: capture must be reproducible run-to-run so the
/// committed `ANALYZE_smoke.json` counts stay byte-stable.
const CAPTURE_SEED: u64 = 1996;

/// Problem sizes for analysis captures. Small enough that the four
/// kernels analyze in well under a second, large enough that every
/// kernel spreads over multiple bins on the [`default_machine`].
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeScale {
    /// Matrix side for matmul (n² dot-product threads).
    pub matmul_n: usize,
    /// Grid side for the PDE.
    pub pde_n: usize,
    /// Red-black iterations (= phases) for the PDE.
    pub pde_iters: usize,
    /// Grid side for SOR.
    pub sor_n: usize,
    /// SOR sweeps (all forked into one phase).
    pub sor_t: usize,
    /// Bodies for the N-body.
    pub nbody_n: usize,
    /// N-body timesteps (= phases).
    pub nbody_iters: usize,
}

impl Default for AnalyzeScale {
    fn default() -> Self {
        AnalyzeScale {
            matmul_n: 32,
            pde_n: 48,
            pde_iters: 2,
            sor_n: 32,
            sor_t: 3,
            nbody_n: 64,
            nbody_iters: 2,
        }
    }
}

/// The machine `schedlint` analyzes against by default: the paper's
/// R8000 scaled so the [`AnalyzeScale`] working sets span several
/// bins (L1 16 KB → 1 KB, L2 2 MB → 8 KB), the same shrink-the-cache
/// trick the bench suite's smoke tier uses.
pub fn default_machine() -> MachineModel {
    MachineModel::r8000()
        .scaled_split(1.0 / 16.0, 1.0 / 256.0)
        .expect("valid scaled machine")
}

/// One phase, fork-indexed: `hints[i]` and `footprints[i]` both refer
/// to the `i`-th forked thread.
#[derive(Clone, Debug)]
pub struct PhaseModel {
    /// Fork-order hints, rebuilt as [`Hints`].
    pub hints: Vec<Hints>,
    /// Fork-indexed footprints.
    pub footprints: Vec<ThreadFootprint>,
}

impl PhaseModel {
    /// Normalizes a raw [`PhaseTrace`] using the capture policy
    /// implied by `config` (the flat paper policy the kernel ran
    /// under).
    ///
    /// # Panics
    ///
    /// Panics if the trace is inconsistent (forks ≠ dispatches), which
    /// would mean the capture run was not a traced scheduler run.
    pub fn from_trace(trace: PhaseTrace, config: &SchedulerConfig) -> Self {
        assert_eq!(
            trace.hints.len(),
            trace.dispatches.len(),
            "phase forked {} threads but dispatched {}",
            trace.hints.len(),
            trace.dispatches.len(),
        );
        let hints: Vec<Hints> = trace.hints.iter().map(|h| rebuild_hints(h)).collect();
        let order = dispatch_order(*config, paper_policy(config), &hints);
        let mut footprints = vec![ThreadFootprint::new(); hints.len()];
        for (k, fp) in trace.dispatches.into_iter().enumerate() {
            footprints[order[k]] = fp;
        }
        PhaseModel { hints, footprints }
    }

    /// Threads in the phase.
    pub fn threads(&self) -> usize {
        self.hints.len()
    }
}

/// Rebuilds a [`Hints`] value from the recorded address list (the
/// scheduler emits `as_array()[..dims()]`, so packing the slice back
/// into the fixed array is lossless).
pub fn rebuild_hints(addrs: &[Addr]) -> Hints {
    assert!(addrs.len() <= MAX_DIMS, "more hints than MAX_DIMS");
    let mut a = [Addr::NULL; MAX_DIMS];
    a[..addrs.len()].copy_from_slice(addrs);
    Hints::four(a[0], a[1], a[2], a[3])
}

/// How the workload declares its threads may be drained — the
/// execution model the happens-before race lint judges conflicts
/// against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainConcurrency {
    /// The workload runs under the serial allocation-order drain (the
    /// paper's scheduler): the total dispatch order orders every
    /// conflicting pair, and cross-bin conflicts are at most
    /// steal-safety *warnings*.
    Serial,
    /// The workload declares it may be drained by stealing workers:
    /// only same-bin order and fork → dispatch publication are
    /// guaranteed, so a conflicting pair unordered by happens-before
    /// is a data race — an **error**.
    Stealing,
}

/// A captured workload: everything the analyses need.
#[derive(Clone, Debug)]
pub struct Capture {
    /// Report label (kernel name or fixture name).
    pub workload: String,
    /// Ordering contract of the workload.
    pub semantics: OrderSemantics,
    /// What the hints denote (hint-accuracy only applies to
    /// [`HintKind::Address`]).
    pub hint_kind: HintKind,
    /// The scheduler config the capture ran under (block sizes define
    /// the hint regions; also the mirror-replay config).
    pub config: SchedulerConfig,
    /// Hierarchical (L1-in-L2) policy to check, when the geometry
    /// supports one.
    pub hierarchical: Option<Hierarchical>,
    /// Full-depth topology policy, when the geometry supports one.
    /// Drives the cross-node sharing lint (which only engages at
    /// depth ≥ 3, where the coarsest level is a node, not a cache).
    pub topology: Option<TopologyPolicy>,
    /// The machine whose caches define line sizes and capacities.
    pub machine: MachineModel,
    /// Declared drain concurrency (kernels are [`Serial`]; fixtures
    /// may declare [`Stealing`] to engage the race lint).
    ///
    /// [`Serial`]: DrainConcurrency::Serial
    /// [`Stealing`]: DrainConcurrency::Stealing
    pub concurrency: DrainConcurrency,
    /// Fork-indexed phases.
    pub phases: Vec<PhaseModel>,
}

/// Runs `kernel` at `scale` on `machine` with a footprint sink
/// attached and returns the normalized capture. Package-trace traffic
/// (the scheduler's own synthetic references above
/// [`PACKAGE_TRACE_BASE`]) is filtered out: the analyses concern
/// application data.
pub fn capture_kernel(kernel: Kernel, machine: &MachineModel, scale: &AnalyzeScale) -> Capture {
    let geometry = BinGeometry::for_machine(machine);
    let config = geometry.flat_config(kernel);
    let policy = paper_policy(&config);
    let mut sink = FootprintSink::ignoring_at_or_above(Addr::new(PACKAGE_TRACE_BASE));
    let mut space = AddressSpace::new();
    match kernel {
        Kernel::MatMul => {
            let mut data = matmul::MatMulData::new(&mut space, scale.matmul_n, CAPTURE_SEED);
            matmul::threaded_with(&mut data, config, policy, &mut sink);
        }
        Kernel::Pde => {
            let mut data = pde::PdeData::new(&mut space, scale.pde_n, CAPTURE_SEED);
            pde::threaded_with(&mut data, scale.pde_iters, config, policy, &mut sink);
        }
        Kernel::Sor => {
            let mut data = sor::SorData::new(&mut space, scale.sor_n, CAPTURE_SEED);
            sor::threaded_with(&mut data, scale.sor_t, config, policy, &mut sink);
        }
        Kernel::NBody => {
            let mut data = nbody::NBodyData::new(&mut space, scale.nbody_n, CAPTURE_SEED);
            let params = nbody::NBodyParams {
                // The scheduling plane scales with the analysis
                // machine's L2 (the default is tied to the full-size
                // R8000), keeping ~4 blocks per dimension.
                plane_extent: 4 * (machine.l2_capacity() / 3),
                ..nbody::NBodyParams::default()
            };
            nbody::threaded_with(
                &mut data,
                scale.nbody_iters,
                params,
                config,
                policy,
                &mut sink,
            );
        }
    }
    let phases = sink
        .into_phases()
        .into_iter()
        .map(|trace| PhaseModel::from_trace(trace, &config))
        .collect();
    Capture {
        workload: kernel.name().to_string(),
        semantics: kernel.order_semantics(),
        hint_kind: kernel.hint_kind(),
        config,
        hierarchical: geometry.hierarchical(kernel).ok(),
        topology: geometry.topology_policy(kernel).ok(),
        machine: machine.clone(),
        concurrency: DrainConcurrency::Serial,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_hints_round_trips_every_arity() {
        let cases = [
            Hints::none(),
            Hints::one(Addr::new(0x10)),
            Hints::two(Addr::new(0x10), Addr::new(0x20)),
            Hints::three(Addr::new(0x10), Addr::new(0x20), Addr::new(0x30)),
        ];
        for h in cases {
            let recorded = &h.as_array()[..h.dims()];
            assert_eq!(rebuild_hints(recorded), h);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn pde_capture_has_one_phase_per_iteration() {
        let machine = default_machine();
        let scale = AnalyzeScale {
            pde_n: 24,
            pde_iters: 3,
            ..AnalyzeScale::default()
        };
        let capture = capture_kernel(Kernel::Pde, &machine, &scale);
        assert_eq!(capture.phases.len(), 3);
        for phase in &capture.phases {
            assert_eq!(phase.threads(), 24); // one fork per line, i3 in 1..=n
                                             // Nearly all threads touch the grid (the last line's thread
                                             // only works on residual iterations, so it may be empty).
            let non_empty = phase.footprints.iter().filter(|fp| !fp.is_empty()).count();
            assert!(non_empty >= 22, "only {non_empty} threads left footprints");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // kernel capture / simulator replay: too slow under miri
    fn matmul_capture_spreads_over_multiple_bins() {
        let machine = default_machine();
        let capture = capture_kernel(Kernel::MatMul, &machine, &AnalyzeScale::default());
        assert_eq!(capture.phases.len(), 1);
        let phase = &capture.phases[0];
        assert_eq!(phase.threads(), 32 * 32);
        let bins = crate::policies::assign_bins(paper_policy(&capture.config), &phase.hints);
        assert!(bins.fine_bins > 1, "expected multiple bins");
    }
}

//! Injected-bug regression fixtures: the analyzer must report exactly
//! the planted finding — no misses, no over-reporting.

use analyze::{analyze, AnalyzeOptions, AnalyzeReport, Fixture, Severity};

fn report_for(fixture: Fixture) -> AnalyzeReport {
    let opts = AnalyzeOptions::default();
    let mut report = AnalyzeReport::new("fixture", opts.hint_threshold_pct);
    report.kernels.push(analyze(&fixture.capture(), &opts));
    report
}

#[test]
fn wrong_hint_fixture_reports_exactly_one_hint_accuracy_error() {
    let report = report_for(Fixture::WrongHint);
    let summary = &report.kernels[0];
    assert_eq!(
        summary.findings.len(),
        1,
        "over-reporting: {:#?}",
        summary.findings
    );
    let finding = &summary.findings[0];
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.analysis, "hint-accuracy");
    assert!(
        finding.detail.contains("thread 3") && finding.detail.contains("0.0%"),
        "wrong offender: {}",
        finding.detail
    );
    // The planted bug is a hint bug only: schedule safety must be clean.
    assert_eq!(summary.conflict_pairs, 0);
    assert_eq!(summary.violations, 0);
    assert_eq!(summary.false_sharing_lines, 0);
    assert_eq!(summary.hint_coverage_min_pct, Some(0.0));
    // Gate: errors fail `--gate` (exit 1 in the binary).
    assert!(report.gate_failed(false));
}

#[test]
fn false_sharing_fixture_reports_exactly_one_false_sharing_warning() {
    let report = report_for(Fixture::FalseSharing);
    let summary = &report.kernels[0];
    assert_eq!(
        summary.findings.len(),
        1,
        "over-reporting: {:#?}",
        summary.findings
    );
    let finding = &summary.findings[0];
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.analysis, "false-sharing");
    assert!(
        finding.detail.contains("threads 0 and 1"),
        "wrong pair: {}",
        finding.detail
    );
    assert_eq!(summary.false_sharing_lines, 1);
    // Word-disjoint accesses must NOT register as conflicts...
    assert_eq!(summary.conflict_pairs, 0);
    assert_eq!(summary.violations, 0);
    // ...and both hints stay comfortably above the coverage threshold.
    assert!(summary.hint_coverage_min_pct.unwrap() > 85.0);
    // Gate: warnings pass `--gate` but fail `--gate-warnings`.
    assert!(!report.gate_failed(false));
    assert!(report.gate_failed(true));
}

#[test]
fn cross_node_fixture_reports_exactly_one_cross_node_warning() {
    let report = report_for(Fixture::CrossNode);
    let summary = &report.kernels[0];
    assert_eq!(
        summary.findings.len(),
        1,
        "over-reporting: {:#?}",
        summary.findings
    );
    let finding = &summary.findings[0];
    assert_eq!(finding.severity, Severity::Warning);
    assert_eq!(finding.analysis, "cross-node-sharing");
    assert!(
        finding.detail.contains("threads 0 and 1"),
        "wrong pair: {}",
        finding.detail
    );
    assert_eq!(summary.cross_node_pairs, 1);
    // The contended word is a true conflict, allowed by the fixture's
    // convergent semantics — and same-word sharing is not false sharing.
    assert_eq!(summary.conflict_pairs, 1);
    assert_eq!(summary.violations, 0);
    assert_eq!(summary.false_sharing_lines, 0);
    // Gate: warnings pass `--gate` but fail `--gate-warnings`.
    assert!(!report.gate_failed(false));
    assert!(report.gate_failed(true));
}

#[test]
fn unordered_race_fixture_reports_exactly_one_hb_race_error() {
    let report = report_for(Fixture::UnorderedRace);
    let summary = &report.kernels[0];
    assert_eq!(
        summary.findings.len(),
        1,
        "over-reporting: {:#?}",
        summary.findings
    );
    let finding = &summary.findings[0];
    assert_eq!(finding.severity, Severity::Error);
    assert_eq!(finding.analysis, "hb-race");
    assert!(
        finding.detail.contains("threads 0 and 1"),
        "wrong pair: {}",
        finding.detail
    );
    assert_eq!(summary.hb_races, 1);
    // The contended word is one true conflict; the serial tour orders
    // it (no violations) but happens-before does not under the
    // declared stealing drain.
    assert_eq!(summary.conflict_pairs, 1);
    assert_eq!(summary.violations, 0);
    assert_eq!(summary.steal_unsafe_pairs, 1);
    // Same-word sharing is not false sharing, and both hints cover
    // their regions.
    assert_eq!(summary.false_sharing_lines, 0);
    assert!(summary.hint_coverage_min_pct.unwrap() > 85.0);
    // Gate: the race is an error, so plain `--gate` fails (exit 1).
    assert!(report.gate_failed(false));
}

#[test]
fn serial_captures_never_report_hb_races() {
    // The same cross-bin conflict under a *serial* declaration stays a
    // warning-level concern: the race lint must not fire.
    for fixture in [
        Fixture::WrongHint,
        Fixture::FalseSharing,
        Fixture::CrossNode,
    ] {
        let report = report_for(fixture);
        let summary = &report.kernels[0];
        assert_eq!(summary.hb_races, 0, "{}", fixture.name());
        assert!(
            summary.findings.iter().all(|f| f.analysis != "hb-race"),
            "{}: spurious race finding",
            fixture.name()
        );
    }
}

#[test]
fn fixture_findings_serialize_into_the_report_json() {
    let report = report_for(Fixture::WrongHint);
    let json = report.to_json();
    assert!(
        json.contains("\"workload\":\"fixture/wrong-hint\""),
        "{json}"
    );
    assert!(json.contains("\"analysis\":\"hint-accuracy\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
}

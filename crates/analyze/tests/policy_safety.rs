//! Schedule-safety properties: no shipped bin policy may reorder
//! conflicting threads of an order-exact workload.
//!
//! The red-black PDE is the adversarial case — every interior line
//! conflicts with its neighbours through the shared `u` columns, and
//! the per-line hints march monotonically through memory, so a policy
//! that binned or toured carelessly would interleave conflicting lines
//! out of fork order. The property sweeps grid sizes, iteration counts,
//! and machine geometries; the four-kernel check pins the shipped
//! configuration.

use analyze::{
    analyze, capture_kernel, default_machine, hb_report, AnalyzeOptions, AnalyzeScale, Capture,
    HbReport, KernelSummary,
};
use cachesim::MachineModel;
use proptest::prelude::*;
use workloads::Kernel;

/// Asserts the happens-before certificate rows for `capture` agree
/// with the mirror-replay verdicts in `summary`: identical fork-order
/// violation counts (the serial models coincide) and identical
/// unordered-pair counts (the stealing model's races are exactly the
/// cross-bin conflicts mirror replay flags as steal-unsafe). HB can
/// therefore never contradict the PR 5 proof — it extends it.
fn assert_hb_matches_mirror_replay(report: &HbReport, capture: &Capture, summary: &KernelSummary) {
    for check in summary.checks.iter().filter(|c| c.checked) {
        let label = format!("{}/{}", capture.workload, check.policy);
        let row = report
            .rows
            .iter()
            .find(|r| r.workload == label)
            .unwrap_or_else(|| panic!("no certificate row for {label}"));
        assert_eq!(
            row.hb_violations, check.violations,
            "{label}: HB fork-order verdict diverges from mirror replay"
        );
        assert_eq!(
            row.hb_unordered, check.steal_unsafe,
            "{label}: HB stealing-model races diverge from cross-bin pairs"
        );
        assert_eq!(row.hb_steal_safe == 1, check.steal_unsafe == 0, "{label}");
        assert_eq!(row.hb_conflict_pairs, summary.conflict_pairs, "{label}");
    }
}

#[test]
fn all_four_kernels_have_zero_violations_under_every_shipped_policy() {
    let machine = default_machine();
    let scale = AnalyzeScale::default();
    for kernel in Kernel::ALL {
        let summary = analyze(
            &capture_kernel(kernel, &machine, &scale),
            &AnalyzeOptions::default(),
        );
        assert_eq!(
            summary.violations,
            0,
            "{}: summary violations",
            kernel.name()
        );
        for check in &summary.checks {
            assert!(
                check.checked,
                "{}: policy {} unexpectedly skipped",
                kernel.name(),
                check.policy
            );
            assert_eq!(
                check.violations,
                0,
                "{}: policy {} reorders conflicting threads",
                kernel.name(),
                check.policy
            );
        }
    }
}

#[test]
fn hb_certificates_agree_with_mirror_replay_on_every_kernel() {
    let machine = default_machine();
    let scale = AnalyzeScale::default();
    let captures: Vec<Capture> = Kernel::ALL
        .iter()
        .map(|&k| capture_kernel(k, &machine, &scale))
        .collect();
    let report = hb_report(machine.name(), &captures);
    for capture in &captures {
        let summary = analyze(capture, &AnalyzeOptions::default());
        assert_hb_matches_mirror_replay(&report, capture, &summary);
        assert_eq!(
            summary.hb_races, 0,
            "{}: serial kernels never race",
            capture.workload
        );
    }
    // The lint passes clean on every shipped policy × kernel — the
    // topology rows (TopologyAware stealing) included.
    for row in &report.rows {
        assert_eq!(row.hb_violations, 0, "{}", row.workload);
        assert!(
            row.hb_obligations > 0 || row.hb_conflict_pairs == 0,
            "{}",
            row.workload
        );
    }
    assert!(
        report.rows.iter().any(|r| r.policy == "topology"),
        "kernels must carry a topology certificate row"
    );
    // Every shard partition certificate must hold: no cache line may
    // straddle a shard boundary.
    assert_eq!(report.shard_rows.len(), captures.len() * 2);
    for row in &report.shard_rows {
        assert_eq!(row.hb_cross_shard_words, 0, "{}", row.workload);
        assert_eq!(row.hb_steal_safe, 1, "{}", row.workload);
    }
}

#[test]
fn hb_report_json_is_byte_identical_across_two_full_regenerations() {
    let machine = default_machine();
    let scale = AnalyzeScale::default();
    let build = || {
        let captures: Vec<Capture> = Kernel::ALL
            .iter()
            .map(|&k| capture_kernel(k, &machine, &scale))
            .collect();
        hb_report(machine.name(), &captures).to_json()
    };
    let first = build();
    let second = build();
    assert_eq!(first, second, "ANALYZE_hb.json must be byte-reproducible");
    assert!(first.starts_with("{\"experiment\":\"schedlint-hb\""));
}

#[test]
fn the_pde_conflict_graph_is_nonempty() {
    // Guards the property below against vacuity: if the capture pipeline
    // ever stopped seeing the red-black neighbour dependencies, zero
    // violations would be meaningless.
    let summary = analyze(
        &capture_kernel(Kernel::Pde, &default_machine(), &AnalyzeScale::default()),
        &AnalyzeOptions::default(),
    );
    assert!(summary.conflict_pairs > 0);
    assert!(summary.threads > 0);
}

proptest! {
    /// No shipped policy reorders conflicting red-black PDE threads,
    /// across grid sizes, iteration counts, and cache geometries.
    #[test]
    fn no_shipped_policy_reorders_conflicting_pde_threads(
        n in 8usize..40,
        iters in 1usize..4,
        l2_shrink in prop_oneof![Just(64.0), Just(256.0), Just(1024.0)],
    ) {
        let machine = MachineModel::r8000().scaled_split(1.0 / 16.0, 1.0 / l2_shrink).expect("valid scaled machine");
        let scale = AnalyzeScale {
            pde_n: n,
            pde_iters: iters,
            ..AnalyzeScale::default()
        };
        let capture = capture_kernel(Kernel::Pde, &machine, &scale);
        let summary = analyze(&capture, &AnalyzeOptions::default());
        prop_assert_eq!(summary.phases, iters as u64);
        for check in &summary.checks {
            prop_assert_eq!(
                check.violations,
                0,
                "policy {} reorders conflicting threads at n={} iters={} shrink={}",
                check.policy,
                n,
                iters,
                l2_shrink
            );
        }
        // The happens-before engine must reach the same verdicts as
        // mirror replay at every sampled scale and geometry.
        let report = hb_report(machine.name(), std::slice::from_ref(&capture));
        assert_hb_matches_mirror_replay(&report, &capture, &summary);
    }
}

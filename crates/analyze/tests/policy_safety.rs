//! Schedule-safety properties: no shipped bin policy may reorder
//! conflicting threads of an order-exact workload.
//!
//! The red-black PDE is the adversarial case — every interior line
//! conflicts with its neighbours through the shared `u` columns, and
//! the per-line hints march monotonically through memory, so a policy
//! that binned or toured carelessly would interleave conflicting lines
//! out of fork order. The property sweeps grid sizes, iteration counts,
//! and machine geometries; the four-kernel check pins the shipped
//! configuration.

use analyze::{analyze, capture_kernel, default_machine, AnalyzeOptions, AnalyzeScale};
use cachesim::MachineModel;
use proptest::prelude::*;
use workloads::Kernel;

#[test]
fn all_four_kernels_have_zero_violations_under_every_shipped_policy() {
    let machine = default_machine();
    let scale = AnalyzeScale::default();
    for kernel in Kernel::ALL {
        let summary = analyze(
            &capture_kernel(kernel, &machine, &scale),
            &AnalyzeOptions::default(),
        );
        assert_eq!(
            summary.violations,
            0,
            "{}: summary violations",
            kernel.name()
        );
        for check in &summary.checks {
            assert!(
                check.checked,
                "{}: policy {} unexpectedly skipped",
                kernel.name(),
                check.policy
            );
            assert_eq!(
                check.violations,
                0,
                "{}: policy {} reorders conflicting threads",
                kernel.name(),
                check.policy
            );
        }
    }
}

#[test]
fn the_pde_conflict_graph_is_nonempty() {
    // Guards the property below against vacuity: if the capture pipeline
    // ever stopped seeing the red-black neighbour dependencies, zero
    // violations would be meaningless.
    let summary = analyze(
        &capture_kernel(Kernel::Pde, &default_machine(), &AnalyzeScale::default()),
        &AnalyzeOptions::default(),
    );
    assert!(summary.conflict_pairs > 0);
    assert!(summary.threads > 0);
}

proptest! {
    /// No shipped policy reorders conflicting red-black PDE threads,
    /// across grid sizes, iteration counts, and cache geometries.
    #[test]
    fn no_shipped_policy_reorders_conflicting_pde_threads(
        n in 8usize..40,
        iters in 1usize..4,
        l2_shrink in prop_oneof![Just(64.0), Just(256.0), Just(1024.0)],
    ) {
        let machine = MachineModel::r8000().scaled_split(1.0 / 16.0, 1.0 / l2_shrink).expect("valid scaled machine");
        let scale = AnalyzeScale {
            pde_n: n,
            pde_iters: iters,
            ..AnalyzeScale::default()
        };
        let capture = capture_kernel(Kernel::Pde, &machine, &scale);
        let summary = analyze(&capture, &AnalyzeOptions::default());
        prop_assert_eq!(summary.phases, iters as u64);
        for check in &summary.checks {
            prop_assert_eq!(
                check.violations,
                0,
                "policy {} reorders conflicting threads at n={} iters={} shrink={}",
                check.policy,
                n,
                iters,
                l2_shrink
            );
        }
    }
}

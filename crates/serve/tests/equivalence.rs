//! Online-vs-offline equivalence: with every request arriving at t=0
//! and an unbounded admission queue, the continuously-draining online
//! engine must execute requests in **exactly** the offline batch
//! scheduler's order, with identical per-request miss deltas — for
//! every bin policy and any lane count.
//!
//! This is the contract that makes the online mode trustworthy: lanes
//! model time overlap only, never reorder execution, and the online
//! ready-queue reproduces the batch tour.

use cachesim::MachineModel;
use locality_sched::EvictionPolicy;
use proptest::prelude::*;
use serve::{
    run_offline, run_serve, AdmissionPolicy, ExecRecord, Request, ServeConfig, ServePolicy,
    TraceConfig, TraceGen,
};

/// The t=0 variant of a trace: same requests, all arriving at the
/// epoch.
fn at_epoch(config: TraceConfig) -> impl Iterator<Item = Request> {
    TraceGen::new(config).map(|r| Request { arrival_ns: 0, ..r })
}

fn machine(index: usize) -> MachineModel {
    match index {
        0 => MachineModel::r8000(),
        1 => MachineModel::r10000(),
        2 => MachineModel::modern(),
        3 => MachineModel::r8000()
            .scaled(0.25)
            .expect("valid scaled machine"),
        4 => MachineModel::r10000()
            .scaled_split(0.5, 0.125)
            .expect("valid scaled machine"),
        _ => MachineModel::numa2(),
    }
}

fn policy(index: usize) -> ServePolicy {
    ServePolicy::all()[index % ServePolicy::all().len()]
}

fn online_log(
    config: TraceConfig,
    machine: &MachineModel,
    lanes: usize,
    policy: ServePolicy,
) -> Vec<ExecRecord> {
    // Eviction and shedding at their bench defaults: the equivalence
    // contract requires that a t=0 run NEVER evicts (only insert-time
    // reaping, and every insert precedes the first drain) and an
    // unbounded queue never sheds — so the log must still match batch.
    let serve_config = ServeConfig {
        lanes,
        queue_bound: u64::MAX,
        admission: AdmissionPolicy::ShedOldest,
        eviction: EvictionPolicy::LruCap { max_records: 8192 },
        log_execution: true,
    };
    let out = run_serve(at_epoch(config), machine, &serve_config, policy).unwrap();
    assert_eq!(out.report.rejected, 0, "unbounded queue rejected");
    assert_eq!(out.report.shed, 0, "unbounded queue shed");
    assert_eq!(out.report.evictions, 0, "a t=0 run must never evict");
    assert_eq!(out.report.completed, config.requests, "requests dropped");
    out.log
}

fn trace_config(seed: u64, requests: u64, objects: u64, zipf_s: f64) -> TraceConfig {
    TraceConfig {
        seed,
        requests,
        objects,
        zipf_s,
        object_bytes: 4096,
        mean_interarrival_ns: 200,
        burst_factor: 4,
        burst_len: 32,
        calm_len: 96,
    }
}

proptest! {
    /// The headline property: online(t=0, unbounded, any lane count)
    /// ≡ offline batch, per policy, over random seeds and geometries.
    #[test]
    fn online_t0_matches_offline_batch(
        seed in any::<u64>(),
        machine_index in 0usize..6,
        policy_index in 0usize..5,
        requests in 100u64..400,
        objects in prop_oneof![Just(64u64), Just(256), Just(1024)],
        zipf_s in prop_oneof![Just(0.0), Just(0.8), Just(1.1)],
    ) {
        let config = trace_config(seed, requests, objects, zipf_s);
        let machine = machine(machine_index);
        let policy = policy(policy_index);
        let offline = run_offline(at_epoch(config), &machine, policy).unwrap();
        prop_assert_eq!(offline.len() as u64, requests);
        for lanes in [1usize, 2, 4] {
            let online = online_log(config, &machine, lanes, policy);
            prop_assert_eq!(
                &online,
                &offline,
                "policy {} lanes {} diverged",
                policy.name(),
                lanes
            );
        }
    }
}

/// A deterministic spot-check of the same property over every policy ×
/// lane cell, so a regression fails a plain `cargo test` run even if
/// proptest's seed happens to dodge it.
#[test]
fn all_policy_lane_cells_agree_on_fixed_trace() {
    let config = trace_config(0xA5A5, 600, 256, 0.99);
    // numa2 exercises the topology policy at depth 4: the t=0 contract
    // must hold on deep trees, not just the two-level machines.
    for machine in [
        MachineModel::r8000(),
        MachineModel::r10000(),
        MachineModel::numa2(),
    ] {
        for policy in ServePolicy::all() {
            let offline = run_offline(at_epoch(config), &machine, policy).unwrap();
            for lanes in [1usize, 2, 4] {
                let online = online_log(config, &machine, lanes, policy);
                assert_eq!(
                    online,
                    offline,
                    "{} × {} lanes on {}",
                    policy.name(),
                    lanes,
                    machine.name()
                );
            }
        }
    }
}

/// Lane count must not even change the aggregate report apart from the
/// lane field and latency/makespan (which overlap in time): served,
/// warm-hit, and drain counts are order-derived and the order is fixed.
#[test]
fn lane_count_preserves_order_derived_metrics() {
    let config = trace_config(77, 800, 512, 0.9);
    let machine = MachineModel::r8000();
    let unbounded = |lanes: usize| ServeConfig {
        lanes,
        queue_bound: u64::MAX,
        admission: AdmissionPolicy::Reject,
        eviction: EvictionPolicy::Off,
        log_execution: false,
    };
    let base = run_serve(
        at_epoch(config),
        &machine,
        &unbounded(1),
        ServePolicy::Hierarchical,
    )
    .unwrap();
    for lanes in [2usize, 4] {
        let other = run_serve(
            at_epoch(config),
            &machine,
            &unbounded(lanes),
            ServePolicy::Hierarchical,
        )
        .unwrap();
        assert_eq!(other.report.completed, base.report.completed);
        assert_eq!(other.report.warm_hits, base.report.warm_hits);
        assert_eq!(other.report.drains, base.report.drains);
        assert_eq!(
            other.sim, base.sim,
            "cache behaviour must not depend on lanes"
        );
    }
}

//! Admission-control edges: bounded queues under bursts, zero-length
//! requests, arrival-timestamp ties, and the shedding policies. The
//! serving loop must never panic, never lose a request
//! (`admitted + rejected == offered` and `completed + shed ==
//! admitted`), and never exceed its queue bound.

use cachesim::MachineModel;
use locality_sched::EvictionPolicy;
use proptest::prelude::*;
use serve::{run_serve, AdmissionPolicy, Request, ServeConfig, ServePolicy, TraceConfig, TraceGen};

fn bursty(seed: u64, requests: u64) -> TraceConfig {
    TraceConfig {
        seed,
        requests,
        objects: 512,
        zipf_s: 0.99,
        object_bytes: 8192,
        mean_interarrival_ns: 1_000,
        burst_factor: 64,
        burst_len: 256,
        calm_len: 256,
    }
}

fn bounded(lanes: usize, queue_bound: u64) -> ServeConfig {
    ServeConfig {
        lanes,
        queue_bound,
        admission: AdmissionPolicy::Reject,
        eviction: EvictionPolicy::Off,
        log_execution: false,
    }
}

#[test]
fn queue_full_rejections_are_accounted_exactly() {
    let machine = MachineModel::r8000();
    let out = run_serve(
        TraceGen::new(bursty(5, 5_000)),
        &machine,
        &bounded(1, 16),
        ServePolicy::Flat,
    )
    .unwrap();
    assert_eq!(out.report.offered, 5_000);
    assert_eq!(
        out.report.admitted + out.report.rejected,
        out.report.offered
    );
    assert_eq!(
        out.report.completed, out.report.admitted,
        "admitted work lost"
    );
    assert!(
        out.report.rejected > 0,
        "a 16-deep queue must spill under 64× bursts"
    );
    assert!(out.report.max_queue_depth <= 16);
}

/// A burst longer than the queue bound: the queue saturates and the
/// overflow is rejected, but everything admitted still completes.
#[test]
fn burst_longer_than_queue_bound_spills_not_crashes() {
    let machine = MachineModel::r10000();
    // burst_len 256 ≫ bound 8, arrivals 64× faster than service can
    // drain on one lane.
    let out = run_serve(
        TraceGen::new(bursty(9, 2_048)),
        &machine,
        &bounded(1, 8),
        ServePolicy::Hierarchical,
    )
    .unwrap();
    assert_eq!(out.report.admitted + out.report.rejected, 2_048);
    assert_eq!(out.report.completed, out.report.admitted);
    assert!(
        out.report.rejected >= 2_048 / 4,
        "most of each burst must spill"
    );
    assert!(out.report.max_queue_depth <= 8);
}

/// Zero-length requests (metadata probes) flow through every stage:
/// admitted, scheduled, completed — as warm hits, touching no lines.
#[test]
fn zero_length_requests_complete_as_warm_hits() {
    let machine = MachineModel::r8000();
    let probes = (0..100u64).map(|id| Request {
        id,
        arrival_ns: id * 10,
        object: id,
        addr: 0x1_0000 + id * 4096,
        bytes: 0,
    });
    let out = run_serve(
        probes,
        &machine,
        &ServeConfig {
            log_execution: true,
            ..bounded(2, u64::MAX)
        },
        ServePolicy::Flat,
    )
    .unwrap();
    assert_eq!(out.report.completed, 100);
    assert_eq!(out.report.warm_hits, 100, "zero lines touched ⇒ warm");
    assert_eq!(out.report.cold_misses, 0);
    assert!(out.log.iter().all(|r| r.lines == 0 && r.l1_misses == 0));
}

/// Simultaneous arrivals (timestamp ties) are admitted in trace order;
/// under the FIFO policy on one lane they also execute in that order.
#[test]
fn arrival_timestamp_ties_keep_trace_order() {
    let machine = MachineModel::r8000();
    let tied = (0..64u64).map(|id| Request {
        id,
        arrival_ns: 1_000,
        object: id,
        addr: 0x2_0000 + (id % 7) * 65_536,
        bytes: 256,
    });
    let out = run_serve(
        tied,
        &machine,
        &ServeConfig {
            log_execution: true,
            ..bounded(1, u64::MAX)
        },
        ServePolicy::SingleBin,
    )
    .unwrap();
    assert_eq!(out.report.completed, 64);
    let order: Vec<u64> = out.log.iter().map(|r| r.id).collect();
    assert_eq!(order, (0..64).collect::<Vec<u64>>());
}

/// Ties at the bound: with queue_bound = k, exactly the first k of a
/// simultaneous batch are admitted (no over-admission on ties).
#[test]
fn ties_at_the_bound_admit_exactly_the_bound() {
    let machine = MachineModel::r8000();
    let tied = (0..32u64).map(|id| Request {
        id,
        arrival_ns: 0,
        object: id,
        addr: 0x3_0000 + id * 65_536,
        bytes: 128,
    });
    let out = run_serve(tied, &machine, &bounded(4, 10), ServePolicy::UniqueBin).unwrap();
    assert_eq!(out.report.admitted, 10);
    assert_eq!(out.report.rejected, 22);
    assert_eq!(out.report.completed, 10);
}

/// Under ShedOldest with simultaneous arrivals, the bound still holds
/// and each arrival past the bound cancels the then-oldest waiting
/// request: the survivors are the *last* k of the batch.
#[test]
fn shed_oldest_on_ties_keeps_the_newest() {
    let machine = MachineModel::r8000();
    let tied = (0..32u64).map(|id| Request {
        id,
        arrival_ns: 0,
        object: id,
        addr: 0x3_0000 + id * 65_536,
        bytes: 128,
    });
    let config = ServeConfig {
        admission: AdmissionPolicy::ShedOldest,
        log_execution: true,
        ..bounded(1, 10)
    };
    let out = run_serve(tied, &machine, &config, ServePolicy::SingleBin).unwrap();
    assert_eq!(
        out.report.admitted, 32,
        "every arrival displaced an older one"
    );
    assert_eq!(out.report.rejected, 0);
    assert_eq!(out.report.shed, 22);
    assert_eq!(out.report.completed, 10);
    let order: Vec<u64> = out.log.iter().map(|r| r.id).collect();
    assert_eq!(order, (22..32).collect::<Vec<u64>>());
}

/// DeadlineDrop cancels exactly the expired queue prefix; requests
/// young enough to meet the SLO survive even under overload.
#[test]
fn deadline_drop_sheds_only_expired_work() {
    let machine = MachineModel::r8000();
    let config = ServeConfig {
        admission: AdmissionPolicy::DeadlineDrop { slo_ns: 50_000 },
        ..bounded(1, 8)
    };
    let out = run_serve(
        TraceGen::new(bursty(13, 4_096)),
        &machine,
        &config,
        ServePolicy::Flat,
    )
    .unwrap();
    assert_eq!(out.report.admitted + out.report.rejected, 4_096);
    assert_eq!(out.report.completed + out.report.shed, out.report.admitted);
    assert!(out.report.shed > 0, "bursts must age requests past the SLO");
    assert!(out.report.max_queue_depth <= 8);
    assert!(out.report.wasted_memory_time > 0);
}

proptest! {
    /// Fuzz the whole admission surface: random traces, bounds, lane
    /// counts, bin policies, admission policies, eviction. Invariants:
    /// accounting balances (`admitted + rejected == offered`,
    /// `completed + shed == admitted`), the bound holds, and nothing
    /// panics.
    #[test]
    fn admission_invariants_hold_under_fuzz(
        seed in any::<u64>(),
        requests in 1u64..600,
        queue_bound in prop_oneof![Just(1u64), Just(4), Just(64), Just(u64::MAX)],
        lanes in 1usize..5,
        policy_index in 0usize..4,
        admission in prop_oneof![
            Just(AdmissionPolicy::Reject),
            Just(AdmissionPolicy::ShedOldest),
            Just(AdmissionPolicy::ShedNewest),
            Just(AdmissionPolicy::DeadlineDrop { slo_ns: 10_000 }),
        ],
        eviction in prop_oneof![
            Just(EvictionPolicy::Off),
            Just(EvictionPolicy::LruCap { max_records: 8 }),
            Just(EvictionPolicy::IdleAge { max_idle_drains: 3 }),
        ],
        object_bytes in prop_oneof![Just(0u64), Just(64), Just(4096), Just(1 << 16)],
        mean_interarrival_ns in prop_oneof![Just(0u64), Just(100), Just(10_000)],
    ) {
        let config = TraceConfig {
            seed,
            requests,
            objects: 128,
            zipf_s: 0.9,
            object_bytes,
            mean_interarrival_ns,
            burst_factor: 16,
            burst_len: 32,
            calm_len: 32,
        };
        let machine = MachineModel::r8000();
        let policy = ServePolicy::all()[policy_index];
        let serve_config = ServeConfig {
            admission,
            eviction,
            ..bounded(lanes, queue_bound)
        };
        let out = run_serve(TraceGen::new(config), &machine, &serve_config, policy).unwrap();
        prop_assert_eq!(out.report.offered, requests);
        prop_assert_eq!(out.report.admitted + out.report.rejected, requests);
        prop_assert_eq!(out.report.completed + out.report.shed, out.report.admitted);
        prop_assert_eq!(
            out.report.warm_hits + out.report.cold_misses,
            out.report.completed
        );
        prop_assert!(out.report.max_queue_depth <= queue_bound);
        prop_assert!(out.report.p50_latency_ns <= out.report.p99_latency_ns);
        if eviction == EvictionPolicy::Off {
            prop_assert_eq!(out.report.evictions, 0);
        }
        if admission == AdmissionPolicy::Reject {
            prop_assert_eq!(out.report.shed, 0);
        }
    }
}

//! Determinism goldens: the synthetic trace generator must produce a
//! bit-identical stream for a given config, on every platform, forever.
//!
//! Each golden is the FNV-1a digest of the first 10 000 requests (all
//! five fields, little-endian) of an Azure-style config. If one of
//! these fails, the generator's output changed — which silently
//! invalidates every committed `BENCH_serve` baseline and the CI
//! byte-reproducibility gate. Do not update a digest without
//! regenerating `baselines/BENCH_serve_smoke.json` in the same change.

use serve::{cdf_digest, trace_digest, ServeConfig, ServePolicy, TraceConfig, TraceGen};

const GOLDEN_PREFIX: u64 = 10_000;

/// The tuple the goldens vary: (seed, zipf_s, burst_factor, requests).
fn azure_config(seed: u64, zipf_s: f64, burst_factor: u64, requests: u64) -> TraceConfig {
    TraceConfig {
        seed,
        requests,
        objects: 1 << 16,
        zipf_s,
        object_bytes: 1 << 16,
        mean_interarrival_ns: 2_000,
        burst_factor,
        burst_len: 512,
        calm_len: 1536,
    }
}

#[test]
fn trace_digests_match_committed_goldens() {
    let goldens: [(u64, f64, u64, u64, u64); 4] = [
        (0x1, 0.99, 8, 1_000_000, 0xab42_7edb_2b64_2ac2),
        (0x2a, 0.8, 4, 500_000, 0x29ed_a00f_23cd_1278),
        (0xDEAD_BEEF, 1.1, 16, 250_000, 0xde98_cdf0_ede3_a043),
        (0x7, 0.0, 1, 100_000, 0x09b1_5ba4_2954_7832),
    ];
    for (seed, zipf_s, burst_factor, requests, expected) in goldens {
        let digest = trace_digest(
            azure_config(seed, zipf_s, burst_factor, requests),
            GOLDEN_PREFIX,
        );
        assert_eq!(
            digest, expected,
            "trace golden diverged for seed {seed:#x} s={zipf_s} burst={burst_factor} n={requests}: \
             got {digest:#018x} — the generator changed; see module docs before updating"
        );
    }
}

/// The digest must cover the whole prefix: truncating or extending the
/// stream changes it (guards against an iterator that stops early).
#[test]
fn golden_prefix_is_sensitive_to_length() {
    let config = azure_config(0x1, 0.99, 8, 1_000_000);
    assert_ne!(
        trace_digest(config, GOLDEN_PREFIX),
        trace_digest(config, GOLDEN_PREFIX - 1)
    );
}

/// End-to-end determinism: two full serving runs over the same config
/// agree on every aggregate, including modeled latency percentiles.
/// (The bench-level byte-reproducibility check in CI is the JSON twin
/// of this test.)
#[test]
fn serving_run_is_deterministic_end_to_end() {
    let config = azure_config(3, 0.99, 8, 20_000);
    let machine = cachesim::MachineModel::r8000();
    let serve_config = ServeConfig::default_bench();
    for policy in [ServePolicy::Flat, ServePolicy::Hierarchical] {
        let a = serve::run_serve(TraceGen::new(config), &machine, &serve_config, policy).unwrap();
        let b = serve::run_serve(TraceGen::new(config), &machine, &serve_config, policy).unwrap();
        assert_eq!(a.report, b.report, "{} report drifted", policy.name());
        assert_eq!(a.sim, b.sim, "{} cache stats drifted", policy.name());
    }
}

/// The popularity CDF itself is pinned, not just the sampled stream:
/// the CDF is where `powf`/`ln` platform drift would first appear, and
/// a stream digest over 10k requests could miss a one-ulp wiggle deep
/// in the tail. Bit-exact CDF ⇒ bit-exact sampling forever.
#[test]
fn zipf_cdf_table_matches_committed_goldens() {
    let goldens: [(u64, f64, u64); 3] = [
        (1 << 16, 0.99, 0x6276_840e_8422_d5fa),
        (1 << 16, 0.0, 0xee15_ac01_0fa6_b4fa),
        (4_096, 1.1, 0x5ee1_1519_51d5_e917),
    ];
    for (objects, zipf_s, expected) in goldens {
        let digest = cdf_digest(objects, zipf_s);
        assert_eq!(
            digest, expected,
            "Zipf CDF diverged for {objects} objects, s={zipf_s}: got {digest:#018x} — \
             deterministic math changed; regenerate trace goldens and serve baselines together"
        );
    }
}

//! Bounded-memory serving: the eviction policy must actually bound the
//! live bin table on long streamed runs, and must never change *what*
//! gets executed — only which retired records are still resident.
//!
//! The contract under test (see DESIGN.md §10.4):
//!
//! * A t=0 batch-shaped run never evicts (reaping happens only at
//!   insert time, and every insert precedes the first drain), so the
//!   equivalence suite's guarantees survive eviction at defaults.
//! * An evicted key that re-arrives behaves exactly like a key never
//!   seen before: fresh bin record, inserted at the back of the tour.
//! * Under `LruCap`, `peak_live_bin_records ≤ cap` whenever the cap is
//!   at least the number of bins that can hold undrained threads.

use cachesim::MachineModel;
use locality_sched::EvictionPolicy;
use proptest::prelude::*;
use serve::{
    run_offline, run_serve, AdmissionPolicy, Request, ServeConfig, ServePolicy, TraceConfig,
    TraceGen,
};

fn streaming_config(seed: u64, requests: u64) -> TraceConfig {
    TraceConfig {
        seed,
        requests,
        objects: 1 << 14,
        zipf_s: 0.9,
        object_bytes: 1 << 15,
        mean_interarrival_ns: 1_000,
        burst_factor: 8,
        burst_len: 256,
        calm_len: 768,
    }
}

/// The headline long-run bound: stream 100k requests through a
/// bursty trace under an aggressive LRU cap and check the table never
/// exceeded it, while the request accounting still balances.
///
/// The cap must sit above the run's peak *backlog* bins (~3.5k here):
/// bins holding undrained work — including shed tombstones awaiting
/// their free drain — cannot be reclaimed, only drained-and-empty
/// records can. 4096 is still 4× below the 16k-object key universe
/// the no-eviction control tracks.
#[test]
fn aggressive_lru_cap_bounds_the_table_over_100k_requests() {
    let machine = MachineModel::r8000();
    let cap = 4_096u64;
    let config = ServeConfig {
        lanes: 4,
        queue_bound: 256,
        admission: AdmissionPolicy::ShedOldest,
        eviction: EvictionPolicy::LruCap { max_records: cap },
        log_execution: false,
    };
    for policy in [ServePolicy::Flat, ServePolicy::Hierarchical] {
        let out = run_serve(
            TraceGen::new(streaming_config(1996, 100_000)),
            &machine,
            &config,
            policy,
        )
        .unwrap();
        assert_eq!(out.report.offered, 100_000, "{}", policy.name());
        assert_eq!(
            out.report.admitted + out.report.rejected,
            out.report.offered,
            "{}",
            policy.name()
        );
        assert_eq!(
            out.report.completed + out.report.shed,
            out.report.admitted,
            "{}",
            policy.name()
        );
        assert!(
            out.report.peak_live_bin_records <= cap,
            "{}: peak {} > cap {cap}",
            policy.name(),
            out.report.peak_live_bin_records
        );
        assert!(
            out.report.evictions > 0,
            "{}: a 16k-object trace under a {cap}-record cap must evict",
            policy.name()
        );
    }
}

/// Without eviction the same run's table grows with the key universe —
/// the leak this PR bounds. This is the negative control proving the
/// 100k-run assertion above is non-vacuous.
#[test]
fn eviction_off_lets_the_table_track_the_key_universe() {
    let machine = MachineModel::r8000();
    let config = ServeConfig {
        lanes: 4,
        queue_bound: 256,
        admission: AdmissionPolicy::ShedOldest,
        eviction: EvictionPolicy::Off,
        log_execution: false,
    };
    let out = run_serve(
        TraceGen::new(streaming_config(1996, 100_000)),
        &machine,
        &config,
        ServePolicy::Flat,
    )
    .unwrap();
    assert_eq!(out.report.evictions, 0);
    assert!(
        out.report.peak_live_bin_records > 4_096,
        "peak {} never crossed the aggressive cap — the control is vacuous",
        out.report.peak_live_bin_records
    );
}

/// Re-arrival after eviction ≡ first arrival: serve a key, let the cap
/// evict its record, send it again — the second pass must produce the
/// same execution log as a fresh trace would (fresh fork, back of the
/// tour), not resurrect stale tour state.
#[test]
fn evicted_key_rearrival_is_indistinguishable_from_fresh() {
    let machine = MachineModel::r8000();
    let one_round = |ids: std::ops::Range<u64>, start: u64| {
        ids.clone().enumerate().map(move |(i, id)| Request {
            id: start + i as u64,
            arrival_ns: (start + i as u64) * 50_000,
            object: id,
            addr: 0x10_0000 + id * (1 << 20),
            bytes: 4_096,
        })
    };
    // Round 1 serves keys 0..8 under a cap of 2, evicting most of
    // them; round 2 re-serves the same keys.
    let trace = one_round(0..8, 0).chain(one_round(0..8, 8));
    let config = ServeConfig {
        lanes: 1,
        queue_bound: u64::MAX,
        admission: AdmissionPolicy::Reject,
        eviction: EvictionPolicy::LruCap { max_records: 2 },
        log_execution: true,
    };
    let out = run_serve(trace, &machine, &config, ServePolicy::Flat).unwrap();
    assert_eq!(out.report.completed, 16);
    assert!(out.report.evictions > 0, "cap 2 over 8 keys must evict");
    // Arrivals are spaced far enough apart that each request drains
    // before the next arrives: execution order is arrival order both
    // rounds, which is exactly the fresh-fork behaviour.
    let order: Vec<u64> = out.log.iter().map(|r| r.id).collect();
    assert_eq!(order, (0..16).collect::<Vec<u64>>());
}

proptest! {
    /// t=0 equivalence survives eviction at the bench defaults: the
    /// online log with `LruCap` (and shedding armed but idle) is the
    /// batch log, and the run reports zero evictions.
    #[test]
    fn t0_equivalence_with_default_eviction(
        seed in any::<u64>(),
        policy_index in 0usize..4,
        requests in 100u64..300,
    ) {
        let config = TraceConfig {
            seed,
            requests,
            objects: 512,
            zipf_s: 0.9,
            object_bytes: 4_096,
            mean_interarrival_ns: 0,
            burst_factor: 4,
            burst_len: 32,
            calm_len: 96,
        };
        let machine = MachineModel::r10000();
        let policy = ServePolicy::all()[policy_index];
        let at_epoch = || TraceGen::new(config).map(|r| Request { arrival_ns: 0, ..r });
        let offline = run_offline(at_epoch(), &machine, policy).unwrap();
        let serve_config = ServeConfig {
            log_execution: true,
            queue_bound: u64::MAX,
            ..ServeConfig::default_bench()
        };
        let out = run_serve(at_epoch(), &machine, &serve_config, policy).unwrap();
        prop_assert_eq!(out.report.evictions, 0, "t=0 run evicted");
        prop_assert_eq!(out.report.shed, 0);
        prop_assert_eq!(&out.log, &offline, "{} diverged under default eviction", policy.name());
    }
}

//! Aggregate serving metrics — the row `BENCH_serve.json` reports per
//! policy.
//!
//! Everything here is integral and derived from the deterministic
//! virtual clock, so a report is byte-reproducible across runs and
//! platforms (fractional metrics are scaled: `*_x1000` fields carry
//! three decimal places as integers).

/// One serving run's scoreboard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeReport {
    /// Policy identifier (`flat`, `hierarchical`, …).
    pub policy: &'static str,
    /// Serving lanes the run modeled.
    pub lanes: u64,
    /// Requests the trace offered.
    pub offered: u64,
    /// Requests admitted past the queue bound.
    pub admitted: u64,
    /// Requests turned away at admission.
    pub rejected: u64,
    /// Admitted requests cancelled while queued by a shedding
    /// admission policy (`admitted == completed + shed` once the run
    /// ends drained).
    pub shed: u64,
    /// Requests actually served.
    pub completed: u64,
    /// Served requests whose payload was mostly L2-resident (≤ half
    /// the touched lines missed).
    pub warm_hits: u64,
    /// Served requests that mostly missed (the complement).
    pub cold_misses: u64,
    /// Drain units granted to lanes.
    pub drains: u64,
    /// Deepest the pending queue ever got.
    pub max_queue_depth: u64,
    /// Time-weighted mean pending depth, ×1000.
    pub mean_queue_depth_x1000: u64,
    /// Median modeled latency (arrival → completion), nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile modeled latency, nanoseconds.
    pub p99_latency_ns: u64,
    /// Mean modeled latency, nanoseconds.
    pub mean_latency_ns: u64,
    /// Mean of per-request latency ÷ service time, ×1000.
    pub mean_slowdown_x1000: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan_ns: u64,
    /// Bin records the engine's eviction policy retired.
    pub evictions: u64,
    /// Most live bin records the engine's table ever held — the memory
    /// bound the eviction policy enforces.
    pub peak_live_bin_records: u64,
    /// Σ over shed requests of payload bytes × time queued, reported
    /// in byte-milliseconds: memory held only to be thrown away.
    pub wasted_memory_time: u64,
}

impl ServeReport {
    /// Warm hits as a percentage of completed requests.
    pub fn warm_hit_rate_pct(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            100.0 * self.warm_hits as f64 / self.completed as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; zero when
/// empty. `pct` is 0–100.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100);
    let idx = rank.saturating_sub(1).min(sorted.len() as u64 - 1);
    sorted[usize::try_from(idx).unwrap_or(usize::MAX)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&v, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn warm_rate_handles_empty() {
        let mut report = ServeReport {
            policy: "flat",
            lanes: 1,
            offered: 0,
            admitted: 0,
            rejected: 0,
            shed: 0,
            completed: 0,
            warm_hits: 0,
            cold_misses: 0,
            drains: 0,
            max_queue_depth: 0,
            mean_queue_depth_x1000: 0,
            p50_latency_ns: 0,
            p99_latency_ns: 0,
            mean_latency_ns: 0,
            mean_slowdown_x1000: 0,
            makespan_ns: 0,
            evictions: 0,
            peak_live_bin_records: 0,
            wasted_memory_time: 0,
        };
        assert_eq!(report.warm_hit_rate_pct(), 0.0);
        report.completed = 4;
        report.warm_hits = 3;
        assert!((report.warm_hit_rate_pct() - 75.0).abs() < 1e-12);
    }
}

//! The online serving simulation: a continuously-draining
//! locality-scheduled engine fed by a stream of timestamped requests.
//!
//! # Model
//!
//! Requests arrive on a virtual clock (see [`crate::trace`]) and are
//! admitted into the scheduler's bounded pending queue — a fork with
//! the object's base address as the locality hint. `lanes` serving
//! lanes drain the engine concurrently with arrivals: whenever a lane
//! is idle and work is pending, it is granted the next drain unit (one
//! parent bin group, sub-bins in sorted order) by
//! [`Scheduler::drain_next`]. Service time is the paper's timing model
//! over the unit's simulated cache behaviour; the lane is busy until
//! the unit completes.
//!
//! Cache state is shared and mutated in **grant order** — lanes model
//! time overlap, not cache interference. This keeps the simulation
//! deterministic and makes execution order independent of the lane
//! count, which the t=0 online-vs-offline equivalence suite relies on.
//!
//! # Cold vs. warm
//!
//! A request is a *warm hit* when at most half of the cache lines it
//! touches miss in L2 (zero-length probes are trivially warm); it is a
//! *cold miss* otherwise. Locality scheduling raises the warm-hit rate
//! by running requests for one hot object back-to-back.

use crate::event::{Event, EventHeap};
use crate::metrics::{percentile, ServeReport};
use crate::trace::Request;
use cachesim::{MachineModel, SimReport, SimSink};
use locality_sched::{
    BinPolicy, Hierarchical, PaperBlockHash, RunMode, Scheduler, SchedulerConfig, SingleBin,
    UniqueBin,
};
use memtrace::{Access, TraceSink};

/// Fixed per-request instruction overhead (dispatch, parse, reply).
const REQUEST_BASE_INSTRUCTIONS: u64 = 40;
/// Instructions modeled per cache line of payload scanned.
const INSTRUCTIONS_PER_LINE: u64 = 4;

/// Serving-side knobs, independent of the trace.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Concurrent serving lanes (drain units in flight).
    pub lanes: usize,
    /// Admission bound: a request arriving while this many threads are
    /// pending is rejected.
    pub queue_bound: u64,
    /// Record the per-request execution log (id, miss deltas) — the
    /// equivalence suite's witness. Costs memory; off for benches.
    pub log_execution: bool,
}

impl ServeConfig {
    /// Four lanes over a 4096-deep admission queue, no logging.
    pub fn default_bench() -> Self {
        ServeConfig {
            lanes: 4,
            queue_bound: 4096,
            log_execution: false,
        }
    }
}

/// The bin policies the serving experiment compares. Mirrors
/// `BENCH_binpolicy` naming: `flat` is the paper's block-hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePolicy {
    /// Single-level block hash at the L2 block size.
    Flat,
    /// Two-level L1-in-L2 binning.
    Hierarchical,
    /// Everything in one bin: FIFO service, no locality.
    SingleBin,
    /// Every request its own bin: fork-order service, maximal bins.
    UniqueBin,
}

impl ServePolicy {
    /// Short identifier used in JSON rows and test labels.
    pub fn name(self) -> &'static str {
        match self {
            ServePolicy::Flat => "flat",
            ServePolicy::Hierarchical => "hierarchical",
            ServePolicy::SingleBin => "single_bin",
            ServePolicy::UniqueBin => "unique_bin",
        }
    }

    /// All four policies, in the order benches report them.
    pub fn all() -> [ServePolicy; 4] {
        [
            ServePolicy::Flat,
            ServePolicy::Hierarchical,
            ServePolicy::SingleBin,
            ServePolicy::UniqueBin,
        ]
    }
}

/// One executed request in the equivalence log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// Trace id of the request.
    pub id: u64,
    /// L1 misses its payload scan added.
    pub l1_misses: u64,
    /// L2 misses its payload scan added.
    pub l2_misses: u64,
    /// L1 cache lines touched (the scan's access count).
    pub lines: u64,
    /// Distinct L2 lines the payload spans — the denominator of the
    /// warm/cold classification.
    pub l2_lines: u64,
}

/// Everything one serving run produces.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Aggregate metrics (the bench row).
    pub report: ServeReport,
    /// Final cache-simulation report.
    pub sim: SimReport,
    /// Execution log when [`ServeConfig::log_execution`] was set.
    pub log: Vec<ExecRecord>,
}

/// Compact pending-request record (the admitted queue's memory).
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: u64,
    arrival_ns: u64,
    addr: u64,
    bytes: u64,
}

/// Shared mutable state the scheduled request bodies run against.
struct ExecCtx {
    sink: SimSink,
    requests: Vec<Pending>,
    records: Vec<ExecRecord>,
    l1_line: u64,
    l2_line: u64,
}

/// The scheduled thread body: scan the request's payload one L1 line
/// at a time and account instructions, recording the miss delta.
fn serve_thread(ctx: &mut ExecCtx, slot: usize, _arg2: usize) {
    let req = ctx.requests[slot];
    let l1_before = ctx.sink.hierarchy().l1_stats().misses();
    let l2_before = ctx.sink.hierarchy().l2_stats().misses();
    let mut lines = 0u64;
    let mut addr = req.addr;
    let end = req.addr.saturating_add(req.bytes);
    while addr < end {
        ctx.sink.access(Access::read(memtrace::Addr::new(addr), 8));
        addr += ctx.l1_line;
        lines += 1;
    }
    ctx.sink
        .instructions(REQUEST_BASE_INSTRUCTIONS + INSTRUCTIONS_PER_LINE * lines);
    let l2_lines = if req.bytes == 0 {
        0
    } else {
        end.div_ceil(ctx.l2_line) - req.addr / ctx.l2_line
    };
    ctx.records.push(ExecRecord {
        id: req.id,
        l1_misses: ctx.sink.hierarchy().l1_stats().misses() - l1_before,
        l2_misses: ctx.sink.hierarchy().l2_stats().misses() - l2_before,
        lines,
        l2_lines,
    });
}

/// Serving bin geometry for `machine`: parent bins at half the L2,
/// sub-bins capped at both the L1 capacity and 1/8 of the L2 (the same
/// separation rule `BinGeometry` applies to the paper kernels).
fn serve_blocks(machine: &MachineModel) -> (u64, u64) {
    let l2_block = prev_power_of_two(machine.l2_capacity() / 2);
    let l1_budget = machine
        .l1_capacity()
        .min((machine.l2_capacity() / 8).max(1));
    let l1_block = prev_power_of_two(l1_budget).min(l2_block);
    (l1_block, l2_block)
}

fn prev_power_of_two(value: u64) -> u64 {
    match value {
        0 => 1,
        v => 1 << (63 - v.leading_zeros()),
    }
}

/// Streams `trace` through the online engine under `policy` on
/// `machine` and returns the outcome. The trace may be any request
/// iterator with non-decreasing arrival times — millions of requests
/// stream through without being materialized.
pub fn run_serve<I: Iterator<Item = Request>>(
    trace: I,
    machine: &MachineModel,
    config: &ServeConfig,
    policy: ServePolicy,
) -> ServeOutcome {
    let (l1_block, l2_block) = serve_blocks(machine);
    let sched_config = SchedulerConfig::builder()
        .block_size(l2_block)
        .build()
        .expect("power-of-two block is valid");
    match policy {
        ServePolicy::Flat => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            PaperBlockHash::from_config(&sched_config),
        ),
        ServePolicy::Hierarchical => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            Hierarchical::uniform(l1_block, l2_block, false)
                .expect("separated powers of two are valid"),
        ),
        ServePolicy::SingleBin => {
            run_serve_with(trace, machine, config, policy, sched_config, SingleBin)
        }
        ServePolicy::UniqueBin => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            UniqueBin::default(),
        ),
    }
}

/// [`run_serve`] generic over an explicit [`BinPolicy`].
fn run_serve_with<I, P>(
    mut trace: I,
    machine: &MachineModel,
    config: &ServeConfig,
    policy: ServePolicy,
    sched_config: SchedulerConfig,
    bin_policy: P,
) -> ServeOutcome
where
    I: Iterator<Item = Request>,
    P: BinPolicy,
{
    let mut sched: Scheduler<ExecCtx, P> = Scheduler::with_policy(sched_config, bin_policy);
    sched.enable_online();
    let timing = machine.timing();
    let overhead_ns = machine.thread_overhead_ns();

    let mut ctx = ExecCtx {
        sink: SimSink::new(machine.hierarchy()),
        requests: Vec::new(),
        records: Vec::new(),
        l1_line: machine.l1_line(),
        l2_line: machine.l2_line(),
    };

    let mut events = EventHeap::new();
    let mut lane_free = vec![true; config.lanes.max(1)];
    let mut now = 0u64;
    let mut offered = 0u64;
    let mut rejected = 0u64;
    let mut drains = 0u64;
    let mut max_depth = 0u64;
    let mut depth_integral = 0u128;
    let mut latencies: Vec<u64> = Vec::new();
    let mut warm_hits = 0u64;
    let mut total_latency = 0u128;
    let mut total_slowdown_x1000 = 0u128;
    let mut log = Vec::new();

    // Seed the heap with the first arrival; each pop chains the next,
    // so only one un-admitted request is ever held.
    let mut next_arrival = trace.next();
    if let Some(req) = &next_arrival {
        events.push(req.arrival_ns, Event::Arrival(0));
    }

    loop {
        // Drain every event at the current instant before dispatching:
        // simultaneous arrivals are all admitted first, which is what
        // makes a t=0 trace equivalent to the offline batch run.
        while events.peek_time() == Some(now) {
            match events.pop().expect("peeked").1 {
                Event::Arrival(_) => {
                    let req = next_arrival.take().expect("arrival event without request");
                    offered += 1;
                    if sched.pending() < config.queue_bound {
                        let slot = ctx.requests.len();
                        ctx.requests.push(Pending {
                            id: req.id,
                            arrival_ns: req.arrival_ns,
                            addr: req.addr,
                            bytes: req.bytes,
                        });
                        sched.fork(serve_thread, slot, 0, req.hints());
                        max_depth = max_depth.max(sched.pending());
                    } else {
                        rejected += 1;
                    }
                    next_arrival = trace.next();
                    if let Some(next) = &next_arrival {
                        events.push(next.arrival_ns.max(now), Event::Arrival(0));
                    }
                }
                Event::LaneFree(lane) => lane_free[lane] = true,
            }
        }

        // Grant drain units to idle lanes. Grants are sequential in
        // (tour rank, ready order); a lane is busy for the modeled
        // service time of its whole unit.
        while sched.pending() > 0 {
            let Some(lane) = lane_free.iter().position(|&idle| idle) else {
                break;
            };
            let before = ctx.records.len();
            if sched.drain_next(&mut ctx).is_none() {
                break;
            }
            drains += 1;
            let mut unit_ns = 0u64;
            for record in &ctx.records[before..] {
                let instructions = REQUEST_BASE_INSTRUCTIONS + INSTRUCTIONS_PER_LINE * record.lines;
                let service = timing.estimate_with_threads(
                    instructions,
                    record.l1_misses,
                    record.l2_misses,
                    1,
                    overhead_ns,
                );
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let service_ns = (service.total() * 1e9).round().max(1.0) as u64;
                unit_ns += service_ns;
                let arrival = arrival_of(&ctx.requests, record.id);
                let completion = now + unit_ns;
                let latency = completion.saturating_sub(arrival);
                latencies.push(latency);
                total_latency += u128::from(latency);
                total_slowdown_x1000 +=
                    u128::from(latency.saturating_mul(1000) / service_ns.max(1));
                if 2 * record.l2_misses <= record.l2_lines {
                    warm_hits += 1;
                }
                if config.log_execution {
                    log.push(*record);
                }
            }
            let lane_ready = now + unit_ns.max(1);
            lane_free[lane] = false;
            events.push(lane_ready, Event::LaneFree(lane));
        }
        if !config.log_execution {
            ctx.records.clear();
        }

        // Advance the clock to the next event; simulation ends when no
        // events remain (all arrivals admitted or rejected, all lanes
        // idle again).
        let Some(next) = events.peek_time() else {
            break;
        };
        let elapsed = next - now;
        depth_integral += u128::from(sched.pending()) * u128::from(elapsed);
        now = next;
    }

    let admitted = offered - rejected;
    let completed = latencies.len() as u64;
    latencies.sort_unstable();
    let report = ServeReport {
        policy: policy.name(),
        lanes: config.lanes.max(1) as u64,
        offered,
        admitted,
        rejected,
        completed,
        warm_hits,
        cold_misses: completed - warm_hits,
        drains,
        max_queue_depth: max_depth,
        mean_queue_depth_x1000: if now > 0 {
            u64::try_from(depth_integral * 1000 / u128::from(now)).unwrap_or(u64::MAX)
        } else {
            0
        },
        p50_latency_ns: percentile(&latencies, 50),
        p99_latency_ns: percentile(&latencies, 99),
        mean_latency_ns: if completed > 0 {
            u64::try_from(total_latency / u128::from(completed)).unwrap_or(u64::MAX)
        } else {
            0
        },
        mean_slowdown_x1000: if completed > 0 {
            u64::try_from(total_slowdown_x1000 / u128::from(completed)).unwrap_or(u64::MAX)
        } else {
            0
        },
        makespan_ns: now,
    };
    ServeOutcome {
        report,
        sim: ctx.sink.report(),
        log,
    }
}

/// Arrival time of trace id `id`. Admission appends to `requests` in
/// arrival order and ids are trace positions, so when nothing was
/// rejected the record sits at index `id`; after rejections it is
/// strictly earlier. Binary search on the sorted `id` field finds it.
fn arrival_of(requests: &[Pending], id: u64) -> u64 {
    let idx = requests
        .binary_search_by_key(&id, |p| p.id)
        .expect("executed request was admitted");
    requests[idx].arrival_ns
}

/// The offline oracle the equivalence suite compares against: fork
/// every request up front (ignoring arrival times and the admission
/// bound), then drain the whole engine with the batch scheduler. The
/// execution log uses the same thread body over the same machine, so
/// a t=0 online run must match it record for record.
pub fn run_offline<I: Iterator<Item = Request>>(
    trace: I,
    machine: &MachineModel,
    policy: ServePolicy,
) -> Vec<ExecRecord> {
    let (l1_block, l2_block) = serve_blocks(machine);
    let sched_config = SchedulerConfig::builder()
        .block_size(l2_block)
        .build()
        .expect("power-of-two block is valid");
    match policy {
        ServePolicy::Flat => run_offline_with(
            trace,
            machine,
            sched_config,
            PaperBlockHash::from_config(&sched_config),
        ),
        ServePolicy::Hierarchical => run_offline_with(
            trace,
            machine,
            sched_config,
            Hierarchical::uniform(l1_block, l2_block, false)
                .expect("separated powers of two are valid"),
        ),
        ServePolicy::SingleBin => run_offline_with(trace, machine, sched_config, SingleBin),
        ServePolicy::UniqueBin => {
            run_offline_with(trace, machine, sched_config, UniqueBin::default())
        }
    }
}

fn run_offline_with<I, P>(
    trace: I,
    machine: &MachineModel,
    sched_config: SchedulerConfig,
    bin_policy: P,
) -> Vec<ExecRecord>
where
    I: Iterator<Item = Request>,
    P: BinPolicy,
{
    let mut sched: Scheduler<ExecCtx, P> = Scheduler::with_policy(sched_config, bin_policy);
    let mut ctx = ExecCtx {
        sink: SimSink::new(machine.hierarchy()),
        requests: Vec::new(),
        records: Vec::new(),
        l1_line: machine.l1_line(),
        l2_line: machine.l2_line(),
    };
    for req in trace {
        let slot = ctx.requests.len();
        ctx.requests.push(Pending {
            id: req.id,
            arrival_ns: req.arrival_ns,
            addr: req.addr,
            bytes: req.bytes,
        });
        sched.fork(serve_thread, slot, 0, req.hints());
    }
    sched.run(&mut ctx, RunMode::Consume);
    ctx.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGen};

    fn tiny_trace(requests: u64) -> TraceGen {
        TraceGen::new(TraceConfig {
            seed: 11,
            requests,
            objects: 256,
            zipf_s: 0.99,
            object_bytes: 4096,
            mean_interarrival_ns: 500,
            burst_factor: 4,
            burst_len: 32,
            calm_len: 96,
        })
    }

    #[test]
    fn serves_every_admitted_request() {
        let machine = MachineModel::r8000();
        let config = ServeConfig {
            lanes: 2,
            queue_bound: u64::MAX,
            log_execution: true,
        };
        let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Flat);
        assert_eq!(out.report.offered, 2000);
        assert_eq!(out.report.rejected, 0);
        assert_eq!(out.report.completed, 2000);
        assert_eq!(out.log.len(), 2000);
        assert_eq!(
            out.report.warm_hits + out.report.cold_misses,
            out.report.completed
        );
        assert!(out.report.makespan_ns > 0);
        assert!(out.report.p99_latency_ns >= out.report.p50_latency_ns);
        assert!(out.sim.data_references() > 0);
    }

    #[test]
    fn locality_policy_beats_fifo_on_warm_hits() {
        let machine = MachineModel::r8000();
        let config = ServeConfig {
            lanes: 1,
            queue_bound: u64::MAX,
            log_execution: false,
        };
        let flat = run_serve(tiny_trace(4000), &machine, &config, ServePolicy::Flat);
        let fifo = run_serve(tiny_trace(4000), &machine, &config, ServePolicy::SingleBin);
        assert!(
            flat.report.warm_hits >= fifo.report.warm_hits,
            "flat {} < fifo {}",
            flat.report.warm_hits,
            fifo.report.warm_hits
        );
    }

    #[test]
    fn outcome_is_deterministic_across_runs() {
        let machine = MachineModel::r10000();
        let config = ServeConfig::default_bench();
        let a = run_serve(
            tiny_trace(3000),
            &machine,
            &config,
            ServePolicy::Hierarchical,
        );
        let b = run_serve(
            tiny_trace(3000),
            &machine,
            &config,
            ServePolicy::Hierarchical,
        );
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn bounded_queue_rejects_and_accounts() {
        let machine = MachineModel::r8000();
        let config = ServeConfig {
            lanes: 1,
            queue_bound: 8,
            log_execution: false,
        };
        let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Flat);
        assert_eq!(out.report.offered, 2000);
        assert_eq!(out.report.admitted + out.report.rejected, 2000);
        assert_eq!(out.report.completed, out.report.admitted);
        assert!(out.report.max_queue_depth <= 8);
    }

    #[test]
    fn serve_blocks_keep_levels_apart() {
        for machine in [
            MachineModel::r8000(),
            MachineModel::r10000(),
            MachineModel::modern(),
        ] {
            let (l1, l2) = serve_blocks(&machine);
            assert!(l1 < l2, "{}: {l1} !< {l2}", machine.name());
            assert!(l1.is_power_of_two() && l2.is_power_of_two());
        }
    }
}

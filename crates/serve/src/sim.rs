//! The online serving simulation: a continuously-draining
//! locality-scheduled engine fed by a stream of timestamped requests.
//!
//! # Model
//!
//! Requests arrive on a virtual clock (see [`crate::trace`]) and are
//! admitted into the scheduler's bounded pending queue — a fork with
//! the object's base address as the locality hint. `lanes` serving
//! lanes drain the engine concurrently with arrivals: whenever a lane
//! is idle and work is pending, it is granted the next drain unit (one
//! parent bin group, sub-bins in sorted order) by
//! [`Scheduler::drain_next`]. Service time is the paper's timing model
//! over the unit's simulated cache behaviour; the lane is busy until
//! the unit completes.
//!
//! Cache state is shared and mutated in **grant order** — lanes model
//! time overlap, not cache interference. This keeps the simulation
//! deterministic and makes execution order independent of the lane
//! count, which the t=0 online-vs-offline equivalence suite relies on.
//!
//! # Cold vs. warm
//!
//! A request is a *warm hit* when at most half of the cache lines it
//! touches miss in L2 (zero-length probes are trivially warm); it is a
//! *cold miss* otherwise. Locality scheduling raises the warm-hit rate
//! by running requests for one hot object back-to-back.

use crate::event::{Event, EventHeap};
use crate::metrics::{percentile, ServeReport};
use crate::trace::Request;
use cachesim::{MachineModel, SimReport, SimSink};
use locality_sched::{
    BinPolicy, EvictionPolicy, Hierarchical, PaperBlockHash, RunMode, Scheduler, SchedulerConfig,
    SingleBin, TopologyPolicy, UniqueBin,
};
use memtrace::{Access, TraceSink};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Fixed per-request instruction overhead (dispatch, parse, reply).
const REQUEST_BASE_INSTRUCTIONS: u64 = 40;
/// Instructions modeled per cache line of payload scanned.
const INSTRUCTIONS_PER_LINE: u64 = 4;

/// Error returned when a serving run cannot be configured — e.g. a
/// machine whose caches are too small to carve separated serving bins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    fn new(message: impl Into<String>) -> Self {
        ServeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid serving configuration: {}", self.message)
    }
}

impl Error for ServeError {}

/// What happens to an arrival when the admission queue is full.
///
/// Rejecting turns away the *new* request; the shedding policies
/// instead cancel an already-queued request — SLO-aware load shedding,
/// trading work already buffered (and the memory-time it wasted) for
/// the fresh arrival. A cancelled request's thread record stays in its
/// bin as a tombstone and is discarded for free when the bin drains;
/// the engine's drain order is untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Turn the arriving request away (the classic bounded queue).
    Reject,
    /// Cancel the oldest waiting request to admit the arrival — the
    /// queued request least likely to still meet any latency target.
    ShedOldest,
    /// Cancel the newest waiting request to admit the arrival,
    /// preserving the seniority of long-waiting work.
    ShedNewest,
    /// Cancel every waiting request whose age already exceeds
    /// `slo_ns` (its completion could not meet the SLO even if served
    /// immediately); reject the arrival only if nothing had expired.
    DeadlineDrop {
        /// Maximum useful age of a queued request, nanoseconds.
        slo_ns: u64,
    },
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionPolicy::Reject => write!(f, "reject"),
            AdmissionPolicy::ShedOldest => write!(f, "shed-oldest"),
            AdmissionPolicy::ShedNewest => write!(f, "shed-newest"),
            AdmissionPolicy::DeadlineDrop { slo_ns } => write!(f, "deadline-drop({slo_ns})"),
        }
    }
}

/// Serving-side knobs, independent of the trace.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Concurrent serving lanes (drain units in flight).
    pub lanes: usize,
    /// Admission bound: the maximum number of waiting (admitted,
    /// not-yet-served, not-shed) requests.
    pub queue_bound: u64,
    /// What to do with an arrival that finds the queue full.
    pub admission: AdmissionPolicy,
    /// Bin-record retirement policy for the online engine; bounds the
    /// bin table on long runs. [`EvictionPolicy::Off`] reproduces the
    /// paper's never-free behaviour.
    pub eviction: EvictionPolicy,
    /// Record the per-request execution log (id, miss deltas) — the
    /// equivalence suite's witness — and the lane-dispatch
    /// [`ScheduleLog`](memtrace::ScheduleLog) in
    /// [`ServeOutcome::schedule`], the happens-before engine's witness.
    /// Costs memory; off for benches.
    pub log_execution: bool,
}

impl ServeConfig {
    /// Four lanes over a 4096-deep admission queue, shedding the
    /// oldest waiting request under overload, with the live bin table
    /// capped at twice the queue bound; no logging.
    pub fn default_bench() -> Self {
        ServeConfig {
            lanes: 4,
            queue_bound: 4096,
            admission: AdmissionPolicy::ShedOldest,
            eviction: EvictionPolicy::LruCap { max_records: 8192 },
            log_execution: false,
        }
    }
}

/// The bin policies the serving experiment compares. Mirrors
/// `BENCH_binpolicy` naming: `flat` is the paper's block-hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePolicy {
    /// Single-level block hash at the L2 block size.
    Flat,
    /// Two-level L1-in-L2 binning.
    Hierarchical,
    /// Binning at every level of the machine's topology tree (equal to
    /// `Hierarchical` on two-level machines, deeper on NUMA models).
    Topology,
    /// Everything in one bin: FIFO service, no locality.
    SingleBin,
    /// Every request its own bin: fork-order service, maximal bins.
    UniqueBin,
}

impl ServePolicy {
    /// Short identifier used in JSON rows and test labels.
    pub fn name(self) -> &'static str {
        match self {
            ServePolicy::Flat => "flat",
            ServePolicy::Hierarchical => "hierarchical",
            ServePolicy::Topology => "topology",
            ServePolicy::SingleBin => "single_bin",
            ServePolicy::UniqueBin => "unique_bin",
        }
    }

    /// All five policies, in the order benches report them.
    pub fn all() -> [ServePolicy; 5] {
        [
            ServePolicy::Flat,
            ServePolicy::Hierarchical,
            ServePolicy::Topology,
            ServePolicy::SingleBin,
            ServePolicy::UniqueBin,
        ]
    }
}

/// One executed request in the equivalence log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecRecord {
    /// Trace id of the request.
    pub id: u64,
    /// L1 misses its payload scan added.
    pub l1_misses: u64,
    /// L2 misses its payload scan added.
    pub l2_misses: u64,
    /// L1 cache lines touched (the scan's access count).
    pub lines: u64,
    /// Distinct L2 lines the payload spans — the denominator of the
    /// warm/cold classification.
    pub l2_lines: u64,
}

/// Everything one serving run produces.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Aggregate metrics (the bench row).
    pub report: ServeReport,
    /// Final cache-simulation report.
    pub sim: SimReport,
    /// Execution log when [`ServeConfig::log_execution`] was set.
    pub log: Vec<ExecRecord>,
    /// Lane-dispatch schedule events when
    /// [`ServeConfig::log_execution`] was set (empty otherwise): actor
    /// 0 is the grant loop, actors 1..=lanes the serving lanes. Each
    /// granted drain unit appears as a
    /// [`Handoff`](memtrace::SchedEvent::Handoff) from the grant loop
    /// to its lane followed by that lane's
    /// [`DrainBegin`](memtrace::SchedEvent::DrainBegin)/[`DrainEnd`](memtrace::SchedEvent::DrainEnd)
    /// pair. Lanes model *time* overlap only — cache state still
    /// mutates in grant order on actor 0, which is why every unit's
    /// hand-off chains through actor 0 and the log is totally ordered
    /// by construction.
    pub schedule: memtrace::ScheduleLog,
}

/// Lifecycle of a pending-slab slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendingState {
    /// Admitted, waiting for its bin to drain.
    Waiting,
    /// Served; the slot is on the free list awaiting reuse.
    Done,
    /// Cancelled by a shedding admission policy while queued; its
    /// thread record is a tombstone that drains for free.
    Shed,
}

/// Compact pending-request record (one slab slot). Slots are recycled
/// as soon as the engine retires their thread, so the slab's size
/// tracks the number of requests *in flight*, not run history.
#[derive(Clone, Copy, Debug)]
struct Pending {
    id: u64,
    arrival_ns: u64,
    addr: u64,
    bytes: u64,
    state: PendingState,
}

/// Shared mutable state the scheduled request bodies run against.
struct ExecCtx {
    sink: SimSink,
    /// Pending-request slab, indexed by the slot a fork carries.
    requests: Vec<Pending>,
    /// Retired slots available for reuse.
    free_slots: Vec<usize>,
    /// Waiting (admitted − served − shed) requests — the live queue
    /// depth the admission bound applies to. The engine's `pending()`
    /// additionally counts shed tombstones.
    in_queue: u64,
    records: Vec<ExecRecord>,
    /// Arrival time of each entry in `records` (kept parallel so
    /// latency accounting needs no lookup into the recycled slab).
    arrivals: Vec<u64>,
    l1_line: u64,
    l2_line: u64,
}

impl ExecCtx {
    fn new(machine: &MachineModel) -> Self {
        ExecCtx {
            sink: SimSink::new(machine.hierarchy()),
            requests: Vec::new(),
            free_slots: Vec::new(),
            in_queue: 0,
            records: Vec::new(),
            arrivals: Vec::new(),
            l1_line: machine.l1_line(),
            l2_line: machine.l2_line(),
        }
    }

    /// Claims a slab slot for an admitted request.
    fn admit(&mut self, req: &Request) -> usize {
        let pending = Pending {
            id: req.id,
            arrival_ns: req.arrival_ns,
            addr: req.addr,
            bytes: req.bytes,
            state: PendingState::Waiting,
        };
        self.in_queue += 1;
        match self.free_slots.pop() {
            Some(slot) => {
                self.requests[slot] = pending;
                slot
            }
            None => {
                self.requests.push(pending);
                self.requests.len() - 1
            }
        }
    }
}

/// The scheduled thread body: scan the request's payload one L1 line
/// at a time and account instructions, recording the miss delta. A
/// slot shed while queued is a tombstone — no cache traffic, no
/// record; the slot is simply retired.
fn serve_thread(ctx: &mut ExecCtx, slot: usize, _arg2: usize) {
    let req = ctx.requests[slot];
    match req.state {
        PendingState::Waiting => {}
        PendingState::Shed => {
            ctx.free_slots.push(slot);
            return;
        }
        PendingState::Done => unreachable!("slot {slot} drained twice"),
    }
    let l1_before = ctx.sink.hierarchy().l1_stats().misses();
    let l2_before = ctx.sink.hierarchy().l2_stats().misses();
    let mut lines = 0u64;
    let mut addr = req.addr;
    let end = req.addr.saturating_add(req.bytes);
    while addr < end {
        ctx.sink.access(Access::read(memtrace::Addr::new(addr), 8));
        addr += ctx.l1_line;
        lines += 1;
    }
    ctx.sink
        .instructions(REQUEST_BASE_INSTRUCTIONS + INSTRUCTIONS_PER_LINE * lines);
    let l2_lines = if req.bytes == 0 {
        0
    } else {
        end.div_ceil(ctx.l2_line) - req.addr / ctx.l2_line
    };
    ctx.records.push(ExecRecord {
        id: req.id,
        l1_misses: ctx.sink.hierarchy().l1_stats().misses() - l1_before,
        l2_misses: ctx.sink.hierarchy().l2_stats().misses() - l2_before,
        lines,
        l2_lines,
    });
    ctx.arrivals.push(req.arrival_ns);
    ctx.in_queue -= 1;
    ctx.requests[slot].state = PendingState::Done;
    ctx.free_slots.push(slot);
}

/// Serving bin geometry for `machine`: one block per level of its
/// topology tree, coarsest at half that level's capacity and every
/// finer block capped at its own level's capacity, 1/8 of the next
/// coarser capacity, *and* half the next coarser block (the same
/// separation rule `BinGeometry` applies to the paper kernels — the
/// levels must stay apart or nesting silently degenerates to flat).
/// On a plain L1/L2 machine this reduces exactly to the original
/// two-level rule: parent at half the L2, sub-bins at
/// `min(L1, L2/8)`.
///
/// # Errors
///
/// A machine whose coarsest level is so small that its block collapses
/// below 2 bytes cannot keep the levels separated; that is a
/// configuration error, not a silently-flat hierarchy.
fn serve_ladder(machine: &MachineModel) -> Result<Vec<u64>, ServeError> {
    let caps = machine.topology().capacities();
    let depth = caps.len();
    let mut blocks = vec![0u64; depth];
    blocks[depth - 1] = prev_power_of_two(caps[depth - 1] / 2);
    if blocks[depth - 1] < 2 {
        return Err(ServeError::new(format!(
            "machine '{}' has coarsest capacity {} — the {}-byte serving parent block cannot \
             hold a separated sub-block",
            machine.name(),
            caps[depth - 1],
            blocks[depth - 1],
        )));
    }
    for level in (0..depth - 1).rev() {
        let budget = caps[level].min((caps[level + 1] / 8).max(1));
        blocks[level] = prev_power_of_two(budget).min(blocks[level + 1] / 2);
    }
    Ok(blocks)
}

/// The ladder's two finest rungs: the L1/L2 blocks the flat and
/// two-level policies bin at.
#[cfg(test)]
fn serve_blocks(machine: &MachineModel) -> Result<(u64, u64), ServeError> {
    let ladder = serve_ladder(machine)?;
    Ok((ladder[0], ladder[ladder.len().min(2) - 1]))
}

fn prev_power_of_two(value: u64) -> u64 {
    match value {
        0 => 1,
        v => 1 << (63 - v.leading_zeros()),
    }
}

/// Streams `trace` through the online engine under `policy` on
/// `machine` and returns the outcome. The trace may be any request
/// iterator with non-decreasing arrival times — millions of requests
/// stream through without being materialized.
///
/// # Errors
///
/// Returns [`ServeError`] when `machine`'s caches cannot carve
/// separated serving bins (see `serve_blocks`).
pub fn run_serve<I: Iterator<Item = Request>>(
    trace: I,
    machine: &MachineModel,
    config: &ServeConfig,
    policy: ServePolicy,
) -> Result<ServeOutcome, ServeError> {
    let ladder = serve_ladder(machine)?;
    let (l1_block, l2_block) = (ladder[0], ladder[ladder.len().min(2) - 1]);
    let sched_config = SchedulerConfig::builder()
        .block_size(l2_block)
        .eviction(config.eviction)
        .build()
        .map_err(|e| ServeError::new(e.to_string()))?;
    Ok(match policy {
        ServePolicy::Flat => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            PaperBlockHash::from_config(&sched_config),
        ),
        ServePolicy::Hierarchical => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            Hierarchical::uniform(l1_block, l2_block, false)
                .expect("separated powers of two are valid"),
        ),
        ServePolicy::Topology => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            TopologyPolicy::uniform(&ladder, false).expect("separated powers of two are valid"),
        ),
        ServePolicy::SingleBin => {
            run_serve_with(trace, machine, config, policy, sched_config, SingleBin)
        }
        ServePolicy::UniqueBin => run_serve_with(
            trace,
            machine,
            config,
            policy,
            sched_config,
            UniqueBin::default(),
        ),
    })
}

/// [`run_serve`] generic over an explicit [`BinPolicy`].
fn run_serve_with<I, P>(
    mut trace: I,
    machine: &MachineModel,
    config: &ServeConfig,
    policy: ServePolicy,
    sched_config: SchedulerConfig,
    bin_policy: P,
) -> ServeOutcome
where
    I: Iterator<Item = Request>,
    P: BinPolicy,
{
    let mut sched: Scheduler<ExecCtx, P> = Scheduler::with_policy(sched_config, bin_policy);
    sched.enable_online();
    let timing = machine.timing();
    let overhead_ns = machine.thread_overhead_ns();

    let mut ctx = ExecCtx::new(machine);

    let mut events = EventHeap::new();
    let mut lane_free = vec![true; config.lanes.max(1)];
    let mut schedule = memtrace::ScheduleLog::new(lane_free.len() as u32 + 1);
    let mut now = 0u64;
    let mut offered = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    // Σ bytes × queued-nanoseconds over shed requests: memory a
    // request held while waiting, only to be thrown away.
    let mut wasted_byte_ns = 0u128;
    let mut drains = 0u64;
    let mut max_depth = 0u64;
    let mut depth_integral = 0u128;
    let mut latencies: Vec<u64> = Vec::new();
    let mut warm_hits = 0u64;
    let mut total_latency = 0u128;
    let mut total_slowdown_x1000 = 0u128;
    let mut log = Vec::new();
    // Admission order of waiting slots, for the shedding policies.
    // Entries are lazily invalidated (a served slot is recycled with a
    // new id) and compacted once stale entries dominate.
    let mut admission_order: VecDeque<(usize, u64)> = VecDeque::new();
    let track_order = config.admission != AdmissionPolicy::Reject;

    // Seed the heap with the first arrival; each pop chains the next,
    // so only one un-admitted request is ever held.
    let mut next_arrival = trace.next();
    if let Some(req) = &next_arrival {
        events.push(req.arrival_ns, Event::Arrival(0));
    }

    loop {
        // Drain every event at the current instant before dispatching:
        // simultaneous arrivals are all admitted first, which is what
        // makes a t=0 trace equivalent to the offline batch run.
        while events.peek_time() == Some(now) {
            match events.pop().expect("peeked").1 {
                Event::Arrival(_) => {
                    let req = next_arrival.take().expect("arrival event without request");
                    offered += 1;
                    let mut admit = ctx.in_queue < config.queue_bound;
                    if !admit {
                        let freed = shed_for(
                            config.admission,
                            &mut admission_order,
                            &mut ctx,
                            now,
                            &mut wasted_byte_ns,
                        );
                        shed += freed;
                        admit = freed > 0;
                    }
                    if admit {
                        let slot = ctx.admit(&req);
                        if track_order {
                            admission_order.push_back((slot, req.id));
                            // Compact once stale (served/shed) entries
                            // dominate; valid entries number ≤ in_queue.
                            let compact_at =
                                config.queue_bound.saturating_mul(2).saturating_add(16);
                            if admission_order.len() as u64 > compact_at {
                                let requests = &ctx.requests;
                                admission_order.retain(|&(slot, id)| {
                                    requests[slot].id == id
                                        && requests[slot].state == PendingState::Waiting
                                });
                            }
                        }
                        sched.fork(serve_thread, slot, 0, req.hints());
                        max_depth = max_depth.max(ctx.in_queue);
                    } else {
                        rejected += 1;
                    }
                    next_arrival = trace.next();
                    if let Some(next) = &next_arrival {
                        events.push(next.arrival_ns.max(now), Event::Arrival(0));
                    }
                }
                Event::LaneFree(lane) => lane_free[lane] = true,
            }
        }

        // Grant drain units to idle lanes. Grants are sequential in
        // (tour rank, ready order); a lane is busy for the modeled
        // service time of its whole unit.
        while sched.pending() > 0 {
            let Some(lane) = lane_free.iter().position(|&idle| idle) else {
                break;
            };
            let before = ctx.records.len();
            if sched.drain_next(&mut ctx).is_none() {
                break;
            }
            drains += 1;
            if config.log_execution {
                let actor = lane as u32 + 1;
                let unit = u32::try_from(drains - 1).expect("drain ordinal fits u32");
                schedule.push(memtrace::SchedEvent::Handoff { from: 0, to: actor });
                schedule.push(memtrace::SchedEvent::DrainBegin { actor, unit });
                schedule.push(memtrace::SchedEvent::DrainEnd { actor, unit });
            }
            let mut unit_ns = 0u64;
            for (record, &arrival) in ctx.records[before..].iter().zip(&ctx.arrivals[before..]) {
                let instructions = REQUEST_BASE_INSTRUCTIONS + INSTRUCTIONS_PER_LINE * record.lines;
                let service = timing.estimate_with_threads(
                    instructions,
                    record.l1_misses,
                    record.l2_misses,
                    1,
                    overhead_ns,
                );
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let service_ns = (service.total() * 1e9).round().max(1.0) as u64;
                unit_ns += service_ns;
                let completion = now + unit_ns;
                let latency = completion.saturating_sub(arrival);
                latencies.push(latency);
                total_latency += u128::from(latency);
                total_slowdown_x1000 +=
                    u128::from(latency.saturating_mul(1000) / service_ns.max(1));
                if 2 * record.l2_misses <= record.l2_lines {
                    warm_hits += 1;
                }
                if config.log_execution {
                    log.push(*record);
                }
            }
            let lane_ready = now + unit_ns.max(1);
            lane_free[lane] = false;
            events.push(lane_ready, Event::LaneFree(lane));
        }
        if !config.log_execution {
            ctx.records.clear();
            ctx.arrivals.clear();
        }

        // Advance the clock to the next event; simulation ends when no
        // events remain (all arrivals admitted or rejected, all lanes
        // idle again).
        let Some(next) = events.peek_time() else {
            break;
        };
        let elapsed = next - now;
        depth_integral += u128::from(ctx.in_queue) * u128::from(elapsed);
        now = next;
    }

    let admitted = offered - rejected;
    let completed = latencies.len() as u64;
    latencies.sort_unstable();
    let report = ServeReport {
        policy: policy.name(),
        lanes: config.lanes.max(1) as u64,
        offered,
        admitted,
        rejected,
        shed,
        completed,
        warm_hits,
        cold_misses: completed - warm_hits,
        drains,
        max_queue_depth: max_depth,
        mean_queue_depth_x1000: if now > 0 {
            u64::try_from(depth_integral * 1000 / u128::from(now)).unwrap_or(u64::MAX)
        } else {
            0
        },
        p50_latency_ns: percentile(&latencies, 50),
        p99_latency_ns: percentile(&latencies, 99),
        mean_latency_ns: if completed > 0 {
            u64::try_from(total_latency / u128::from(completed)).unwrap_or(u64::MAX)
        } else {
            0
        },
        mean_slowdown_x1000: if completed > 0 {
            u64::try_from(total_slowdown_x1000 / u128::from(completed)).unwrap_or(u64::MAX)
        } else {
            0
        },
        makespan_ns: now,
        evictions: sched.evictions(),
        peak_live_bin_records: sched.peak_bins() as u64,
        wasted_memory_time: u64::try_from(wasted_byte_ns / 1_000_000).unwrap_or(u64::MAX),
    };
    if config.log_execution {
        schedule.push(memtrace::SchedEvent::Barrier);
    }
    ServeOutcome {
        report,
        sim: ctx.sink.report(),
        log,
        schedule,
    }
}

/// Cancels waiting requests per `policy` to make room for an arrival
/// at `now`; returns how many were cancelled (0 ⇒ reject the
/// arrival). Stale `order` entries — slots recycled since admission
/// (id mismatch) or no longer waiting — are discarded as encountered.
fn shed_for(
    policy: AdmissionPolicy,
    order: &mut VecDeque<(usize, u64)>,
    ctx: &mut ExecCtx,
    now: u64,
    wasted_byte_ns: &mut u128,
) -> u64 {
    fn is_waiting(ctx: &ExecCtx, slot: usize, id: u64) -> bool {
        ctx.requests[slot].id == id && ctx.requests[slot].state == PendingState::Waiting
    }
    fn cancel(ctx: &mut ExecCtx, slot: usize, now: u64, wasted_byte_ns: &mut u128) {
        let req = &mut ctx.requests[slot];
        *wasted_byte_ns += u128::from(req.bytes) * u128::from(now.saturating_sub(req.arrival_ns));
        req.state = PendingState::Shed;
        ctx.in_queue -= 1;
    }
    match policy {
        AdmissionPolicy::Reject => 0,
        AdmissionPolicy::ShedOldest => {
            while let Some((slot, id)) = order.pop_front() {
                if is_waiting(ctx, slot, id) {
                    cancel(ctx, slot, now, wasted_byte_ns);
                    return 1;
                }
            }
            0
        }
        AdmissionPolicy::ShedNewest => {
            while let Some((slot, id)) = order.pop_back() {
                if is_waiting(ctx, slot, id) {
                    cancel(ctx, slot, now, wasted_byte_ns);
                    return 1;
                }
            }
            0
        }
        AdmissionPolicy::DeadlineDrop { slo_ns } => {
            // Valid entries sit in arrival order, so the scan can stop
            // at the first one still within its deadline.
            let mut freed = 0u64;
            while let Some(&(slot, id)) = order.front() {
                if !is_waiting(ctx, slot, id) {
                    order.pop_front();
                    continue;
                }
                if ctx.requests[slot].arrival_ns.saturating_add(slo_ns) > now {
                    break;
                }
                order.pop_front();
                cancel(ctx, slot, now, wasted_byte_ns);
                freed += 1;
            }
            freed
        }
    }
}

/// The offline oracle the equivalence suite compares against: fork
/// every request up front (ignoring arrival times and the admission
/// bound), then drain the whole engine with the batch scheduler. The
/// execution log uses the same thread body over the same machine, so
/// a t=0 online run must match it record for record.
///
/// # Errors
///
/// Returns [`ServeError`] when `machine`'s caches cannot carve
/// separated serving bins (see `serve_blocks`).
pub fn run_offline<I: Iterator<Item = Request>>(
    trace: I,
    machine: &MachineModel,
    policy: ServePolicy,
) -> Result<Vec<ExecRecord>, ServeError> {
    let ladder = serve_ladder(machine)?;
    let (l1_block, l2_block) = (ladder[0], ladder[ladder.len().min(2) - 1]);
    let sched_config = SchedulerConfig::builder()
        .block_size(l2_block)
        .build()
        .expect("power-of-two block is valid");
    Ok(match policy {
        ServePolicy::Flat => run_offline_with(
            trace,
            machine,
            sched_config,
            PaperBlockHash::from_config(&sched_config),
        ),
        ServePolicy::Hierarchical => run_offline_with(
            trace,
            machine,
            sched_config,
            Hierarchical::uniform(l1_block, l2_block, false)
                .expect("separated powers of two are valid"),
        ),
        ServePolicy::Topology => run_offline_with(
            trace,
            machine,
            sched_config,
            TopologyPolicy::uniform(&ladder, false).expect("separated powers of two are valid"),
        ),
        ServePolicy::SingleBin => run_offline_with(trace, machine, sched_config, SingleBin),
        ServePolicy::UniqueBin => {
            run_offline_with(trace, machine, sched_config, UniqueBin::default())
        }
    })
}

fn run_offline_with<I, P>(
    trace: I,
    machine: &MachineModel,
    sched_config: SchedulerConfig,
    bin_policy: P,
) -> Vec<ExecRecord>
where
    I: Iterator<Item = Request>,
    P: BinPolicy,
{
    let mut sched: Scheduler<ExecCtx, P> = Scheduler::with_policy(sched_config, bin_policy);
    let mut ctx = ExecCtx::new(machine);
    for req in trace {
        let slot = ctx.admit(&req);
        sched.fork(serve_thread, slot, 0, req.hints());
    }
    sched.run(&mut ctx, RunMode::Consume);
    ctx.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, TraceGen};

    fn tiny_trace(requests: u64) -> TraceGen {
        TraceGen::new(TraceConfig {
            seed: 11,
            requests,
            objects: 256,
            zipf_s: 0.99,
            object_bytes: 4096,
            mean_interarrival_ns: 500,
            burst_factor: 4,
            burst_len: 32,
            calm_len: 96,
        })
    }

    fn legacy_config(lanes: usize, queue_bound: u64, log_execution: bool) -> ServeConfig {
        ServeConfig {
            lanes,
            queue_bound,
            admission: AdmissionPolicy::Reject,
            eviction: EvictionPolicy::Off,
            log_execution,
        }
    }

    #[test]
    fn serves_every_admitted_request() {
        let machine = MachineModel::r8000();
        let config = legacy_config(2, u64::MAX, true);
        let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Flat).unwrap();
        assert_eq!(out.report.offered, 2000);
        assert_eq!(out.report.rejected, 0);
        assert_eq!(out.report.shed, 0);
        assert_eq!(out.report.completed, 2000);
        assert_eq!(out.log.len(), 2000);
        assert_eq!(
            out.report.warm_hits + out.report.cold_misses,
            out.report.completed
        );
        assert!(out.report.makespan_ns > 0);
        assert!(out.report.p99_latency_ns >= out.report.p50_latency_ns);
        assert!(out.sim.data_references() > 0);
        assert_eq!(out.report.evictions, 0);
        assert!(out.report.peak_live_bin_records > 0);
        assert_eq!(out.report.wasted_memory_time, 0);
    }

    #[test]
    fn lane_schedule_log_chains_every_unit_through_the_grant_loop() {
        use memtrace::SchedEvent;
        let machine = MachineModel::r8000();
        let config = legacy_config(3, u64::MAX, true);
        let out = run_serve(tiny_trace(1500), &machine, &config, ServePolicy::Flat).unwrap();
        let log = &out.schedule;
        assert_eq!(log.actors, 4, "grant loop + 3 lanes");
        assert_eq!(log.events.last(), Some(&SchedEvent::Barrier));
        // One Handoff + DrainBegin + DrainEnd triple per drain, units
        // numbered densely in grant order, every hand-off from actor 0.
        let mut next_unit = 0u32;
        let mut granted_to = None;
        for &event in &log.events {
            match event {
                SchedEvent::Handoff { from, to } => {
                    assert_eq!(from, 0);
                    assert!((1..=3).contains(&to));
                    granted_to = Some(to);
                }
                SchedEvent::DrainBegin { actor, unit } => {
                    assert_eq!(Some(actor), granted_to, "begin follows its grant");
                    assert_eq!(unit, next_unit, "units dense in grant order");
                }
                SchedEvent::DrainEnd { actor, unit } => {
                    assert_eq!(Some(actor), granted_to);
                    assert_eq!(unit, next_unit);
                    next_unit += 1;
                }
                SchedEvent::Barrier => {}
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(u64::from(next_unit), out.report.drains);
        // The log is a deterministic artifact of the run.
        let again = run_serve(tiny_trace(1500), &machine, &config, ServePolicy::Flat).unwrap();
        assert_eq!(log.digest(), again.schedule.digest());
        // Logging off ⇒ no schedule recorded.
        let quiet = legacy_config(3, u64::MAX, false);
        let silent = run_serve(tiny_trace(200), &machine, &quiet, ServePolicy::Flat).unwrap();
        assert!(silent.schedule.is_empty());
    }

    #[test]
    fn locality_policy_beats_fifo_on_warm_hits() {
        let machine = MachineModel::r8000();
        let config = legacy_config(1, u64::MAX, false);
        let flat = run_serve(tiny_trace(4000), &machine, &config, ServePolicy::Flat).unwrap();
        let fifo = run_serve(tiny_trace(4000), &machine, &config, ServePolicy::SingleBin).unwrap();
        assert!(
            flat.report.warm_hits >= fifo.report.warm_hits,
            "flat {} < fifo {}",
            flat.report.warm_hits,
            fifo.report.warm_hits
        );
    }

    #[test]
    fn outcome_is_deterministic_across_runs() {
        let machine = MachineModel::r10000();
        let config = ServeConfig::default_bench();
        let a = run_serve(
            tiny_trace(3000),
            &machine,
            &config,
            ServePolicy::Hierarchical,
        )
        .unwrap();
        let b = run_serve(
            tiny_trace(3000),
            &machine,
            &config,
            ServePolicy::Hierarchical,
        )
        .unwrap();
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn bounded_queue_rejects_and_accounts() {
        let machine = MachineModel::r8000();
        let config = legacy_config(1, 8, false);
        let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Flat).unwrap();
        assert_eq!(out.report.offered, 2000);
        assert_eq!(out.report.admitted + out.report.rejected, 2000);
        assert_eq!(out.report.completed, out.report.admitted);
        assert_eq!(out.report.shed, 0);
        assert!(out.report.max_queue_depth <= 8);
    }

    #[test]
    fn shedding_admits_at_the_expense_of_queued_work() {
        let machine = MachineModel::r8000();
        for admission in [
            AdmissionPolicy::ShedOldest,
            AdmissionPolicy::ShedNewest,
            AdmissionPolicy::DeadlineDrop { slo_ns: 20_000 },
        ] {
            let config = ServeConfig {
                lanes: 1,
                queue_bound: 8,
                admission,
                eviction: EvictionPolicy::Off,
                log_execution: false,
            };
            let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Flat).unwrap();
            assert_eq!(out.report.offered, 2000, "{admission:?}");
            assert_eq!(
                out.report.admitted + out.report.rejected,
                2000,
                "{admission:?}"
            );
            assert_eq!(
                out.report.completed + out.report.shed,
                out.report.admitted,
                "{admission:?}"
            );
            assert!(out.report.shed > 0, "{admission:?} never shed");
            assert!(
                out.report.wasted_memory_time > 0,
                "{admission:?} shed {} requests with no wasted memory-time",
                out.report.shed
            );
            assert!(out.report.max_queue_depth <= 8, "{admission:?}");
        }
    }

    #[test]
    fn shed_oldest_admits_more_than_reject_turns_away() {
        // Shedding trades queued work for arrivals: every shed frees a
        // seat, so `rejected` can only shrink relative to Reject.
        let machine = MachineModel::r8000();
        let reject = run_serve(
            tiny_trace(2000),
            &machine,
            &legacy_config(1, 8, false),
            ServePolicy::Flat,
        )
        .unwrap();
        let shed_config = ServeConfig {
            admission: AdmissionPolicy::ShedOldest,
            ..legacy_config(1, 8, false)
        };
        let shed = run_serve(tiny_trace(2000), &machine, &shed_config, ServePolicy::Flat).unwrap();
        assert!(
            shed.report.admitted > reject.report.admitted,
            "shedding admitted {} <= reject's {}",
            shed.report.admitted,
            reject.report.admitted
        );
    }

    #[test]
    fn serve_blocks_keep_levels_apart() {
        for machine in [
            MachineModel::r8000(),
            MachineModel::r10000(),
            MachineModel::modern(),
            MachineModel::numa2(),
        ] {
            let (l1, l2) = serve_blocks(&machine).unwrap();
            assert!(l1 < l2, "{}: {l1} !< {l2}", machine.name());
            assert!(l1.is_power_of_two() && l2.is_power_of_two());
        }
    }

    #[test]
    fn serve_ladder_follows_the_topology_tree() {
        let ladder = serve_ladder(&MachineModel::numa2()).unwrap();
        assert_eq!(ladder.len(), 4, "{ladder:?}");
        for pair in ladder.windows(2) {
            assert!(pair[0].is_power_of_two(), "{ladder:?}");
            assert!(pair[0] <= pair[1] / 2, "levels not separated: {ladder:?}");
        }
        // Two-level machines reduce to the original L1/L2 rule.
        let machine = MachineModel::r8000();
        let (l1, l2) = serve_blocks(&machine).unwrap();
        assert_eq!(l2, prev_power_of_two(machine.l2_capacity() / 2));
        let l1_budget = machine.l1_capacity().min(machine.l2_capacity() / 8);
        assert_eq!(l1, prev_power_of_two(l1_budget).min(l2 / 2));
    }

    #[test]
    fn topology_policy_matches_hierarchical_on_two_level_machines() {
        let machine = MachineModel::r8000();
        let config = ServeConfig::default_bench();
        let h = run_serve(
            tiny_trace(2000),
            &machine,
            &config,
            ServePolicy::Hierarchical,
        )
        .unwrap();
        let t = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Topology).unwrap();
        assert_eq!(h.report.warm_hits, t.report.warm_hits);
        assert_eq!(h.report.completed, t.report.completed);
        assert_eq!(h.report.drains, t.report.drains);
        assert_eq!(h.report.p99_latency_ns, t.report.p99_latency_ns);
        assert_eq!(h.sim.l2.misses(), t.sim.l2.misses());
    }

    #[test]
    fn topology_policy_serves_a_numa_machine() {
        let machine = MachineModel::numa2();
        let config = ServeConfig::default_bench();
        let out = run_serve(tiny_trace(2000), &machine, &config, ServePolicy::Topology).unwrap();
        assert_eq!(out.report.offered, 2000);
        assert_eq!(out.report.completed + out.report.shed, out.report.admitted);
    }

    #[test]
    fn degenerate_l2_is_a_config_error_not_a_flat_hierarchy() {
        use cachesim::{CacheConfig, HierarchyConfig};
        let tiny = CacheConfig::new(2, 1, 1).unwrap();
        let machine = MachineModel::custom(
            "tiny",
            1e9,
            1.0,
            10.0,
            100.0,
            HierarchyConfig::new(tiny, tiny),
            100.0,
        );
        let err = run_serve(
            tiny_trace(10),
            &machine,
            &ServeConfig::default_bench(),
            ServePolicy::Hierarchical,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("invalid serving configuration"),
            "{err}"
        );
        assert!(run_offline(tiny_trace(10), &machine, ServePolicy::Flat).is_err());
    }
}

//! Deterministic elementary math — bit-identical on every platform.
//!
//! `f64::powf` and `f64::ln` delegate to the platform libm, which is
//! *not* correctly rounded: different libm versions (glibc releases,
//! musl, macOS) legally disagree in the last ulp. The trace generator
//! fed those results into committed FNV-1a goldens and byte-compared
//! bench baselines, so a toolchain or libc upgrade could silently
//! break every golden without any code change. The replacements here
//! use only IEEE-754 `+ − × ÷` (correctly rounded on every conforming
//! platform per the standard) with *fixed* iteration counts and no
//! data-dependent branching on intermediate rounding, so each function
//! is a pure bit-for-bit-reproducible map from input bits to output
//! bits.
//!
//! These are not correctly-rounded transcendentals — they agree with a
//! correctly-rounded result to ~1 ulp of double precision, which the
//! accuracy tests pin against libm at 1e-12 relative tolerance. For
//! the simulator that's irrelevant: any fixed deterministic value
//! within a few ulps is an equally valid sample; what matters is that
//! it never moves.

/// High/low split of ln 2 (the classic fdlibm constants): `k * LN2_HI`
/// is exact for |k| < 2^20, pushing the representation error of ln 2
/// into the tiny `LN2_LO` correction.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Natural log of `x` for finite `x > 0`.
///
/// Decomposes `x = m · 2^e` with `m ∈ [1/√2, √2)` by bit surgery, then
/// evaluates `ln m = 2·atanh(t)` for `t = (m−1)/(m+1)` with a fixed
/// 12-term odd series (`|t| < 0.1716`, so term 12 is below 2^-60).
///
/// Outside the domain: returns NaN for negative or NaN input,
/// `-inf` for `+0`, `+inf` for `+inf` — matching `f64::ln`.
pub fn det_ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    let bits = x.to_bits();
    let raw_exp = ((bits >> 52) & 0x7ff) as i64;
    let (mut e, mut m) = if raw_exp == 0 {
        // Subnormal: renormalize through an exact scale by 2^54.
        let scaled = (x * 18_014_398_509_481_984.0).to_bits();
        (
            ((scaled >> 52) & 0x7ff) as i64 - 1023 - 54,
            f64::from_bits((scaled & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000),
        )
    } else {
        (
            raw_exp - 1023,
            f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000),
        )
    };
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5; // exact
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    for k in 0..12u32 {
        sum += term / f64::from(2 * k + 1);
        term *= t2;
    }
    let k = e as f64;
    (k * LN2_HI + 2.0 * sum) + k * LN2_LO
}

/// `e^x` for finite `x`, flushed to `0`/`+inf` outside
/// `[-708, 709]` (past the underflow/overflow thresholds anyway).
///
/// Argument reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, a fixed
/// 17-term Taylor sum for `e^r`, and an exact power-of-two rescale.
pub fn det_exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.0 {
        return f64::INFINITY;
    }
    if x < -708.0 {
        return 0.0;
    }
    let k = (x * std::f64::consts::LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..=17u32 {
        term *= r / f64::from(n);
        sum += term;
    }
    // |k| ≤ 1024 here, so the biased exponent stays in range (the sum
    // absorbs any final rounding into the significand).
    #[allow(clippy::cast_possible_truncation)]
    let ki = k as i64;
    sum * f64::from_bits(((1023 + ki) as u64) << 52)
}

/// `base^exp` for `base > 0` (plus the universal `exp == 0 → 1` and
/// `base == 1 → 1` identities), via `e^(exp · ln base)`.
pub fn det_powf(base: f64, exp: f64) -> f64 {
    if exp == 0.0 || base == 1.0 {
        return 1.0;
    }
    det_exp(exp * det_ln(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(ours: f64, libm: f64, what: &str) {
        let scale = libm.abs().max(f64::MIN_POSITIVE);
        let rel = (ours - libm).abs() / scale;
        assert!(rel < 1e-12, "{what}: {ours} vs libm {libm} (rel {rel:e})");
    }

    #[test]
    fn ln_tracks_libm_across_the_domain() {
        let samples = [
            f64::MIN_POSITIVE,
            1e-300,
            4.9e-324, // smallest subnormal
            1e-9,
            0.1,
            0.5,
            0.999_999,
            1.0,
            1.000_001,
            std::f64::consts::E,
            2.0,
            10.0,
            12_345.678_9,
            1e18,
            1e300,
        ];
        for x in samples {
            assert_close(det_ln(x), x.ln(), &format!("ln({x})"));
        }
        assert_eq!(det_ln(1.0), 0.0);
        assert_eq!(det_ln(0.0), f64::NEG_INFINITY);
        assert!(det_ln(-1.0).is_nan());
        assert_eq!(det_ln(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn exp_tracks_libm_across_the_domain() {
        let samples = [
            -700.0, -30.5, -22.0, -1.0, -1e-12, 0.0, 1e-12, 0.5, 1.0, 2.0, 20.25, 700.0,
        ];
        for x in samples {
            assert_close(det_exp(x), x.exp(), &format!("exp({x})"));
        }
        assert_eq!(det_exp(0.0), 1.0);
        assert_eq!(det_exp(-1000.0), 0.0);
        assert_eq!(det_exp(1000.0), f64::INFINITY);
    }

    #[test]
    fn powf_tracks_libm_on_zipf_shapes() {
        // The Zipf CDF evaluates rank^-s for rank ∈ [1, objects].
        for s in [0.0, 0.5, 0.8, 0.9, 0.99, 1.0, 1.1, 1.2] {
            for rank in [1u64, 2, 3, 10, 100, 65_536, 1 << 26] {
                #[allow(clippy::cast_precision_loss)]
                let base = rank as f64;
                assert_close(det_powf(base, -s), base.powf(-s), &format!("{rank}^-{s}"));
            }
        }
        assert_eq!(det_powf(123.456, 0.0), 1.0);
        assert_eq!(det_powf(1.0, -0.99), 1.0);
    }

    /// The exponential inter-arrival draw feeds `ln` values from
    /// (0, 1]; its whole pipeline must stay finite and nonpositive.
    #[test]
    fn ln_of_unit_open_is_finite_and_nonpositive() {
        let mut u = 1.0 / 9_007_199_254_740_992.0; // 2^-53, the smallest draw
        while u <= 1.0 {
            let l = det_ln(u);
            assert!(l.is_finite() && l <= 0.0, "ln({u}) = {l}");
            u *= 1_000.0;
        }
        assert_eq!(det_ln(1.0), 0.0);
    }
}

//! Seeded synthetic serving trace in the style of public cloud traces
//! (Zipf-skewed object popularity, bursty Poisson-modulated arrivals).
//!
//! [`TraceGen`] is an iterator: millions of requests stream through the
//! simulation without ever materializing the trace. All randomness is
//! SplitMix64 derived from [`TraceConfig::seed`], with no dependence on
//! platform, thread timing, or `HashMap` iteration order — the
//! determinism golden tests commit FNV-1a digests of generated
//! prefixes and those must reproduce everywhere. That is also why the
//! Zipf CDF and the exponential inter-arrival draw use
//! [`crate::detmath`] instead of `f64::powf`/`f64::ln`: libm is not
//! correctly rounded, so its results may differ between libc versions,
//! which would silently shift every committed golden.

use crate::detmath::{det_ln, det_powf};
use locality_sched::Hints;

/// Upper bound on the materialized CDF table (one `f64` per object).
/// A config asking for more objects than this is clamped rather than
/// aborting inside `Vec::with_capacity` on a huge or `usize`-overflow
/// request.
const MAX_CDF_OBJECTS: u64 = 1 << 26;

/// Parameters of one synthetic trace. Every field participates in the
/// generator's PRNG stream, so two configs differing in any field
/// produce different (but individually reproducible) traces.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// PRNG seed; the sole source of randomness.
    pub seed: u64,
    /// Number of requests the iterator yields.
    pub requests: u64,
    /// Size of the object universe requests draw from.
    pub objects: u64,
    /// Zipf skew exponent `s` (popularity of rank-k object ∝ k^-s).
    /// `0.0` is uniform; public serving traces cluster around 0.9–1.1.
    pub zipf_s: f64,
    /// Nominal bytes per object; actual request lengths vary by object
    /// (some objects are hot-but-small, see [`TraceGen::next`]).
    pub object_bytes: u64,
    /// Mean inter-arrival gap in calm periods, nanoseconds.
    pub mean_interarrival_ns: u64,
    /// Arrival-rate multiplier during bursts (inter-arrival gaps are
    /// divided by this). `1` disables burstiness.
    pub burst_factor: u64,
    /// Requests per burst period.
    pub burst_len: u64,
    /// Requests per calm period between bursts.
    pub calm_len: u64,
}

impl TraceConfig {
    /// An Azure-functions-flavoured default: skewed popularity, 8:1
    /// burst modulation, 64 KiB nominal objects.
    pub fn azure_style(seed: u64, requests: u64) -> Self {
        TraceConfig {
            seed,
            requests,
            objects: 1 << 16,
            zipf_s: 0.99,
            object_bytes: 1 << 16,
            mean_interarrival_ns: 2_000,
            burst_factor: 8,
            burst_len: 512,
            calm_len: 1536,
        }
    }
}

/// One timestamped serving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Position in the trace (0-based).
    pub id: u64,
    /// Absolute arrival time in virtual nanoseconds.
    pub arrival_ns: u64,
    /// Object the request reads (Zipf-ranked: 0 is hottest).
    pub object: u64,
    /// First byte of the object's placement in the simulated address
    /// space; doubles as the locality hint.
    pub addr: u64,
    /// Bytes the request touches (may be zero).
    pub bytes: u64,
}

impl Request {
    /// The locality hint handed to the scheduler: the object's base
    /// address, so requests for one object land in one bin.
    pub fn hints(&self) -> Hints {
        Hints::one(memtrace::Addr::new(self.addr))
    }
}

/// SplitMix64 step: the standard finalizer over a Weyl sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in (0, 1]: 53 mantissa bits, never exactly zero so
/// `ln(u)` below is always finite.
fn unit_open(state: &mut u64) -> f64 {
    (((splitmix64(state) >> 11) + 1) as f64) * (1.0 / 9_007_199_254_740_992.0)
}

/// Streaming generator over a [`TraceConfig`].
///
/// Zipf sampling uses inverse-CDF over a precomputed cumulative table
/// (one `f64` per object, binary-searched per request) — exact, not an
/// approximation, and O(log objects) per draw.
pub struct TraceGen {
    config: TraceConfig,
    state: u64,
    emitted: u64,
    clock_ns: u64,
    /// Cumulative Zipf weights, normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl TraceGen {
    /// Builds the generator, precomputing the popularity CDF. The
    /// object universe is clamped to `MAX_CDF_OBJECTS` (2^26) — the CDF is
    /// materialized one `f64` per object, and an absurd `objects` value
    /// must not become an allocator abort.
    pub fn new(config: TraceConfig) -> Self {
        let objects = config.objects.clamp(1, MAX_CDF_OBJECTS);
        let mut cdf =
            Vec::with_capacity(usize::try_from(objects).expect("objects clamped to 2^26"));
        let mut total = 0.0f64;
        for rank in 1..=objects {
            #[allow(clippy::cast_precision_loss)]
            let w = det_powf(rank as f64, -config.zipf_s);
            total += w;
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        TraceGen {
            config,
            state: config.seed ^ 0xA076_1D64_78BD_642F,
            emitted: 0,
            clock_ns: 0,
            cdf,
        }
    }

    /// The config this generator streams.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Draws an object id by inverse-CDF.
    fn draw_object(&mut self) -> u64 {
        let u = unit_open(&mut self.state);
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }

    /// Whether request number `n` falls in a burst period.
    fn in_burst(&self, n: u64) -> bool {
        let period = self.config.burst_len + self.config.calm_len;
        period > 0 && n % period < self.config.burst_len
    }
}

/// Deterministic placement of `object` in the simulated address space:
/// a SplitMix64 hash of `(seed, object)` scattered over `2^22` slots of
/// power-of-two stride, so hot objects don't sit in consecutive cache
/// sets.
pub fn object_addr(seed: u64, object: u64, object_bytes: u64) -> u64 {
    let stride = object_bytes.max(64).next_power_of_two();
    let mut state = seed ^ object.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let slot = splitmix64(&mut state) & ((1 << 22) - 1);
    slot * stride
}

impl Iterator for TraceGen {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.config.requests {
            return None;
        }
        let id = self.emitted;
        self.emitted += 1;

        // Exponential inter-arrival, compressed during bursts. The
        // first request arrives at t=0 so every trace starts at the
        // epoch.
        if id > 0 {
            let mean = self.config.mean_interarrival_ns.max(1) as f64;
            let factor = if self.in_burst(id) {
                self.config.burst_factor.max(1) as f64
            } else {
                1.0
            };
            let u = unit_open(&mut self.state);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let dt = (-det_ln(u) * mean / factor).round() as u64;
            self.clock_ns = self.clock_ns.saturating_add(dt);
        } else {
            // Burn one draw so request 0's object draw stays aligned
            // with every other request's stream position.
            let _ = unit_open(&mut self.state);
        }

        let object = self.draw_object();
        let addr = object_addr(self.config.seed, object, self.config.object_bytes);
        // Request lengths vary by object: three quarters of objects are
        // served whole-to-eighth size, one in 64 is a zero-length
        // metadata probe (exercises the zero-byte admission edge).
        let bytes = if object % 64 == 63 {
            0
        } else {
            self.config.object_bytes >> (object & 3)
        };
        Some(Request {
            id,
            arrival_ns: self.clock_ns,
            object,
            addr,
            bytes,
        })
    }
}

/// FNV-1a over the little-endian field encoding of the first
/// `prefix` requests — the digest the determinism goldens commit.
pub fn trace_digest(config: TraceConfig, prefix: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |value: u64| {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for request in TraceGen::new(config).take(usize::try_from(prefix).unwrap_or(usize::MAX)) {
        fold(request.id);
        fold(request.arrival_ns);
        fold(request.object);
        fold(request.addr);
        fold(request.bytes);
    }
    hash
}

/// FNV-1a over the raw bit patterns of the precomputed Zipf CDF table
/// for `(objects, zipf_s)` — the golden that pins the popularity
/// distribution itself, one level below the request stream. If
/// `trace_digest` moves but this doesn't, the arrival process changed;
/// if this moves, the deterministic `powf` replacement changed.
pub fn cdf_digest(objects: u64, zipf_s: f64) -> u64 {
    let config = TraceConfig {
        seed: 0,
        requests: 0,
        objects,
        zipf_s,
        object_bytes: 1,
        mean_interarrival_ns: 1,
        burst_factor: 1,
        burst_len: 1,
        calm_len: 1,
    };
    let generator = TraceGen::new(config);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &c in &generator.cdf {
        for byte in c.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceConfig {
        TraceConfig {
            seed: 7,
            requests: 10_000,
            objects: 1024,
            zipf_s: 0.99,
            object_bytes: 4096,
            mean_interarrival_ns: 100,
            burst_factor: 8,
            burst_len: 64,
            calm_len: 192,
        }
    }

    #[test]
    fn yields_exactly_requests_in_nondecreasing_time() {
        let mut last = 0;
        let mut count = 0u64;
        for r in TraceGen::new(small()) {
            assert!(r.arrival_ns >= last, "time went backwards at {}", r.id);
            assert_eq!(r.id, count);
            last = r.arrival_ns;
            count += 1;
        }
        assert_eq!(count, small().requests);
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let a: Vec<Request> = TraceGen::new(small()).collect();
        let b: Vec<Request> = TraceGen::new(small()).collect();
        assert_eq!(a, b);
        let c: Vec<Request> = TraceGen::new(TraceConfig { seed: 8, ..small() }).collect();
        assert_ne!(a, c);
        assert_ne!(
            trace_digest(small(), 10_000),
            trace_digest(TraceConfig { seed: 8, ..small() }, 10_000)
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let hits_rank0 = TraceGen::new(small()).filter(|r| r.object == 0).count();
        let hits_rank500 = TraceGen::new(small()).filter(|r| r.object == 500).count();
        assert!(
            hits_rank0 > 10 * hits_rank500.max(1),
            "rank 0 {hits_rank0} vs rank 500 {hits_rank500}"
        );
    }

    #[test]
    fn uniform_skew_spreads_out() {
        let cfg = TraceConfig {
            zipf_s: 0.0,
            ..small()
        };
        let hits_rank0 = TraceGen::new(cfg).filter(|r| r.object == 0).count();
        // 10k draws over 1024 objects ≈ 10 each; rank 0 shouldn't
        // dominate without skew.
        assert!(hits_rank0 < 40, "uniform draw gave rank 0 {hits_rank0}");
    }

    #[test]
    fn bursts_compress_interarrival_gaps() {
        let reqs: Vec<Request> = TraceGen::new(small()).collect();
        let gap = |range: std::ops::Range<usize>| -> f64 {
            let mut total = 0u64;
            let mut n = 0u64;
            for w in reqs[range].windows(2) {
                total += w[1].arrival_ns - w[0].arrival_ns;
                n += 1;
            }
            total as f64 / n as f64
        };
        // Period is 256: requests 0..64 burst, 64..256 calm.
        let burst = gap(1..64);
        let calm = gap(64..256);
        assert!(
            burst * 3.0 < calm,
            "burst mean gap {burst:.1} not ≪ calm {calm:.1}"
        );
    }

    #[test]
    fn object_addresses_are_stable_aligned_and_scattered() {
        let a = object_addr(7, 42, 4096);
        assert_eq!(a, object_addr(7, 42, 4096));
        assert_eq!(a % 4096, 0);
        assert_ne!(a, object_addr(7, 43, 4096));
        assert_ne!(a, object_addr(8, 42, 4096));
    }

    #[test]
    fn zero_length_probes_exist() {
        assert!(TraceGen::new(small()).any(|r| r.bytes == 0));
    }

    #[test]
    fn digest_prefix_is_a_prefix_property() {
        // Digest over 100 must differ from digest over 200 (it folds
        // fewer records), but both must be stable across calls.
        let d100 = trace_digest(small(), 100);
        assert_eq!(d100, trace_digest(small(), 100));
        assert_ne!(d100, trace_digest(small(), 200));
    }
}

//! Deterministic discrete-event core.
//!
//! The serving simulation advances a virtual clock from event to event:
//! request arrivals and lane completions are both [`Event`]s on one
//! [`EventHeap`]. Determinism is non-negotiable here — the equivalence
//! and golden tests in this crate hash the full execution order — so
//! the heap breaks timestamp ties by insertion sequence. Two events at
//! the same nanosecond pop in the order they were pushed, on every
//! platform, every run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled occurrence in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A request enters the admission queue. The payload is the index
    /// into the trace's request buffer.
    Arrival(usize),
    /// A serving lane finishes its current drain unit and becomes
    /// idle. The payload is the lane index.
    LaneFree(usize),
}

/// Min-heap of `(time_ns, push_seq, event)` — earliest time first,
/// FIFO within a timestamp.
#[derive(Debug, Default)]
pub struct EventHeap {
    heap: BinaryHeap<Reverse<(u64, u64, EventKey)>>,
    next_seq: u64,
}

/// [`Event`] flattened into an orderable key. `BinaryHeap` needs `Ord`
/// and deriving it on the enum directly would make the *variant* part
/// of the tie-break; encoding both variants through the same
/// `(tag, payload)` shape keeps the push sequence as the only
/// discriminator at equal timestamps.
type EventKey = (u8, usize);

const TAG_ARRIVAL: u8 = 0;
const TAG_LANE_FREE: u8 = 1;

fn encode(event: Event) -> EventKey {
    match event {
        Event::Arrival(slot) => (TAG_ARRIVAL, slot),
        Event::LaneFree(lane) => (TAG_LANE_FREE, lane),
    }
}

fn decode((tag, payload): EventKey) -> Event {
    match tag {
        TAG_ARRIVAL => Event::Arrival(payload),
        _ => Event::LaneFree(payload),
    }
}

impl EventHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute virtual time `time_ns`.
    pub fn push(&mut self, time_ns: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time_ns, seq, encode(event))));
    }

    /// Removes and returns the earliest event, FIFO within ties.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap
            .pop()
            .map(|Reverse((time, _, key))| (time, decode(key)))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((time, _, _))| *time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut heap = EventHeap::new();
        heap.push(30, Event::Arrival(0));
        heap.push(10, Event::Arrival(1));
        heap.push(20, Event::LaneFree(0));
        assert_eq!(heap.pop(), Some((10, Event::Arrival(1))));
        assert_eq!(heap.pop(), Some((20, Event::LaneFree(0))));
        assert_eq!(heap.pop(), Some((30, Event::Arrival(0))));
        assert_eq!(heap.pop(), None);
    }

    #[test]
    fn ties_break_by_push_order_not_payload() {
        let mut heap = EventHeap::new();
        // Push payloads in descending order at one timestamp: a heap
        // keyed on payload would invert them.
        heap.push(5, Event::LaneFree(2));
        heap.push(5, Event::Arrival(9));
        heap.push(5, Event::Arrival(1));
        assert_eq!(heap.pop(), Some((5, Event::LaneFree(2))));
        assert_eq!(heap.pop(), Some((5, Event::Arrival(9))));
        assert_eq!(heap.pop(), Some((5, Event::Arrival(1))));
    }

    #[test]
    fn peek_matches_pop_and_len_tracks() {
        let mut heap = EventHeap::new();
        assert!(heap.is_empty());
        assert_eq!(heap.peek_time(), None);
        heap.push(7, Event::Arrival(0));
        heap.push(3, Event::Arrival(1));
        assert_eq!(heap.len(), 2);
        assert_eq!(heap.peek_time(), Some(3));
        heap.pop();
        assert_eq!(heap.peek_time(), Some(7));
        assert_eq!(heap.len(), 1);
    }
}

//! Online serving simulation over the locality-scheduled bin engine.
//!
//! The paper schedules a *batch* of fine-grained threads for cache
//! locality. This crate asks the serving-system question: does the
//! same bin machinery help when work arrives *continuously* — a stream
//! of timestamped requests, each tagged with the data it touches,
//! admitted into a bounded queue and drained concurrently with
//! arrivals?
//!
//! Three pieces:
//!
//! * [`event`] — a deterministic discrete-event core (virtual clock,
//!   FIFO tie-breaking at equal timestamps).
//! * [`trace`] — a seeded synthetic trace generator in the style of
//!   public cloud serving traces: Zipf-skewed object popularity,
//!   bursty Poisson-modulated arrivals, streamed without
//!   materialization.
//! * [`sim`] — the serving loop itself: admission, online drain via
//!   [`Scheduler::drain_next`](locality_sched::Scheduler::drain_next),
//!   modeled service times from the paper's timing model, and
//!   cold/warm-hit accounting ([`metrics`]).
//!
//! Everything is deterministic by construction: same trace config +
//! serve config + policy ⇒ byte-identical [`ServeReport`]s, a property
//! the golden and CI reproducibility tests pin down. With all arrivals
//! at t=0 and an unbounded queue, the online run executes requests in
//! exactly the offline batch scheduler's order — the equivalence suite
//! in `tests/` proves it for every policy and lane count.

pub mod detmath;
pub mod event;
pub mod metrics;
pub mod sim;
pub mod trace;

pub use detmath::{det_exp, det_ln, det_powf};
pub use event::{Event, EventHeap};
pub use metrics::{percentile, ServeReport};
pub use sim::{
    run_offline, run_serve, AdmissionPolicy, ExecRecord, ServeConfig, ServeError, ServeOutcome,
    ServePolicy,
};
pub use trace::{cdf_digest, trace_digest, Request, TraceConfig, TraceGen};

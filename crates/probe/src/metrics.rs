//! Collection primitives: counters, histograms, span timers.
//!
//! Two parallel implementations live here, selected by the `enabled`
//! cargo feature. The enabled one uses relaxed atomics (counters,
//! histogram buckets) so probes can be shared across worker threads
//! without locks; the disabled one is all zero-sized types with empty
//! inline methods, so instrumentation sites cost nothing.

/// Number of log₂ buckets: values up to 2⁶³ land in a bucket.
const BUCKETS: usize = 64;

/// Bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`,
/// clamped to the last bucket. Bucket `i > 0` covers
/// `[2^(i-1), 2^i - 1]`.
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i).wrapping_sub(1)
    }
}

/// Point-in-time copy of a [`Histogram`], safe to serialize and
/// compare after collection has moved on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty log₂ buckets as `(inclusive upper bound, count)`,
    /// in increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in [0, 1]: the upper bound of the
    /// bucket where the cumulative count crosses `q · count`. Within a
    /// factor of 2 of the true quantile by construction of the log₂
    /// buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for &(upper, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{bucket_of, bucket_upper, HistogramSnapshot, BUCKETS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// A thread-safe monotonic event counter (relaxed atomics).
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        /// Creates a zeroed counter.
        pub const fn new() -> Self {
            Counter(AtomicU64::new(0))
        }

        /// Adds `n` to the counter.
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        /// Adds one to the counter.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    impl Clone for Counter {
        fn clone(&self) -> Self {
            Counter(AtomicU64::new(self.get()))
        }
    }

    /// A single-threaded counter for `&mut`-held hot paths: a plain
    /// `Cell`, so bumping it is one register-width store, not an
    /// atomic RMW.
    #[derive(Clone, Debug, Default)]
    pub struct LocalCounter(Cell<u64>);

    impl LocalCounter {
        /// Creates a zeroed counter.
        pub const fn new() -> Self {
            LocalCounter(Cell::new(0))
        }

        /// Adds `n` to the counter.
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.set(self.0.get().wrapping_add(n));
        }

        /// Adds one to the counter.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.get()
        }
    }

    /// A log₂-bucketed histogram of `u64` values, shareable across
    /// threads (every field is a relaxed atomic; `merge_from` and
    /// concurrent `record` calls never lose counts, though `snapshot`
    /// taken mid-record may be momentarily torn between fields).
    #[derive(Debug)]
    pub struct Histogram {
        buckets: [AtomicU64; BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        /// Min encoded as `u64::MAX` when empty.
        min: AtomicU64,
        max: AtomicU64,
    }

    impl Histogram {
        /// Creates an empty histogram.
        pub const fn new() -> Self {
            Histogram {
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }
        }

        /// Records one value.
        #[inline]
        pub fn record(&self, value: u64) {
            self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.min.fetch_min(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }

        /// Values recorded so far.
        #[inline]
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        /// Sum of values recorded so far.
        #[inline]
        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }

        /// Folds another histogram's contents into this one.
        pub fn merge_from(&self, other: &Histogram) {
            for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
                let n = theirs.load(Ordering::Relaxed);
                if n > 0 {
                    mine.fetch_add(n, Ordering::Relaxed);
                }
            }
            self.count
                .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }

        /// Point-in-time copy of the distribution.
        pub fn snapshot(&self) -> HistogramSnapshot {
            let count = self.count.load(Ordering::Relaxed);
            let min = self.min.load(Ordering::Relaxed);
            HistogramSnapshot {
                count,
                sum: self.sum.load(Ordering::Relaxed),
                min: if min == u64::MAX { 0 } else { min },
                max: self.max.load(Ordering::Relaxed),
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((bucket_upper(i), n))
                    })
                    .collect(),
            }
        }

        /// Starts a scoped timer that records elapsed nanoseconds into
        /// this histogram when dropped.
        #[inline]
        pub fn span(&self) -> Span<'_> {
            Span {
                histogram: self,
                start: Instant::now(),
            }
        }
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram::new()
        }
    }

    impl Clone for Histogram {
        fn clone(&self) -> Self {
            let fresh = Histogram::new();
            fresh.merge_from(self);
            fresh
        }
    }

    /// Guard returned by [`Histogram::span`]: records the elapsed
    /// nanoseconds between creation and drop.
    #[derive(Debug)]
    pub struct Span<'a> {
        histogram: &'a Histogram,
        start: Instant,
    }

    impl Drop for Span<'_> {
        #[inline]
        fn drop(&mut self) {
            self.histogram
                .record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::HistogramSnapshot;

    /// Disabled probe counter: zero-sized, all methods are no-ops.
    #[derive(Clone, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// Creates a no-op counter.
        pub const fn new() -> Self {
            Counter
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Disabled single-threaded counter: zero-sized no-op.
    #[derive(Clone, Debug, Default)]
    pub struct LocalCounter;

    impl LocalCounter {
        /// Creates a no-op counter.
        pub const fn new() -> Self {
            LocalCounter
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// Disabled histogram: zero-sized, records nothing.
    #[derive(Clone, Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// Creates a no-op histogram.
        pub const fn new() -> Self {
            Histogram
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }

        /// Always 0.
        #[inline(always)]
        pub fn sum(&self) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn merge_from(&self, _other: &Histogram) {}

        /// Always the empty snapshot.
        #[inline(always)]
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot::default()
        }

        /// Returns a guard whose drop does nothing — no clock is read.
        #[inline(always)]
        pub fn span(&self) -> Span<'_> {
            Span(std::marker::PhantomData)
        }
    }

    /// Disabled span guard: zero-sized, drop is a no-op.
    #[derive(Debug)]
    pub struct Span<'a>(pub(super) std::marker::PhantomData<&'a ()>);
}

pub use imp::{Counter, Histogram, LocalCounter, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        // Every value is ≤ its bucket's upper bound (last bucket saturates).
        for v in [0u64, 1, 2, 5, 100, 1 << 40] {
            assert!(v <= bucket_upper(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn counter_accumulates_or_noops() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        if crate::enabled() {
            assert_eq!(c.get(), 10);
            assert_eq!(c.clone().get(), 10, "clone snapshots the value");
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn local_counter_accumulates_or_noops() {
        let c = LocalCounter::new();
        c.add(4);
        c.incr();
        assert_eq!(c.get(), if crate::enabled() { 5 } else { 0 });
    }

    #[test]
    fn histogram_records_distribution() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        if crate::enabled() {
            assert_eq!(snap.count, 5);
            assert_eq!(snap.sum, 1106);
            assert_eq!(snap.min, 1);
            assert_eq!(snap.max, 1000);
            assert!((snap.mean() - 221.2).abs() < 1e-9);
            let total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
            assert_eq!(total, 5, "buckets partition the count");
            assert_eq!(snap.quantile(0.0), 1);
            assert!(snap.quantile(0.5) >= 3);
            assert_eq!(snap.quantile(1.0), 1000);
        } else {
            assert_eq!(snap, HistogramSnapshot::default());
        }
    }

    #[test]
    fn histogram_merges_across_threads() {
        // Eight threads record into private histograms and one shared
        // one; the merged private histograms must equal the shared one.
        let shared = Histogram::new();
        let merged = Histogram::new();
        let locals: Vec<Histogram> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let shared = &shared;
                    scope.spawn(move || {
                        let local = Histogram::new();
                        for i in 0..1000u64 {
                            let v = t * 1000 + i;
                            local.record(v);
                            shared.record(v);
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for local in &locals {
            merged.merge_from(local);
        }
        assert_eq!(merged.snapshot(), shared.snapshot());
        if crate::enabled() {
            assert_eq!(merged.count(), 8000);
            assert_eq!(merged.snapshot().min, 0);
            assert_eq!(merged.snapshot().max, 7999);
        }
    }

    #[test]
    fn concurrent_counter_adds_never_lose_updates() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), if crate::enabled() { 40_000 } else { 0 });
    }

    #[test]
    fn span_records_elapsed_nanoseconds() {
        let h = Histogram::new();
        {
            let _span = h.span();
            std::hint::black_box(());
        }
        if crate::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.quantile(0.5), 0);
        assert!(snap.buckets.is_empty());
    }
}

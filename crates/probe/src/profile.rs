//! Report containers: named metric sections and the `RunProfile` JSON
//! object reports embed.
//!
//! Unlike the collection primitives in [`metrics`](crate::metrics),
//! these are *not* feature gated: building a profile happens once per
//! run on the cold path, and keeping the containers functional in both
//! modes lets report code assemble profiles unconditionally and gate
//! only the embedding on [`enabled`](crate::enabled).

use crate::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;

/// One named metric inside a [`Section`].
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonic count.
    Counter(u64),
    /// A point-in-time float (rates, ratios).
    Gauge(f64),
    /// A value distribution.
    Histogram(HistogramSnapshot),
}

/// An ordered collection of named metrics for one layer of the system
/// (`"sched"`, `"l2"`, `"driver"`, …).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Section {
    name: String,
    metrics: Vec<(String, Metric)>,
}

impl Section {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>) -> Self {
        Section {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// The section's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The metrics in insertion order.
    pub fn metrics(&self) -> &[(String, Metric)] {
        &self.metrics
    }

    /// Adds a counter metric.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.metrics.push((name.into(), Metric::Counter(value)));
        self
    }

    /// Adds a gauge metric.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((name.into(), Metric::Gauge(value)));
        self
    }

    /// Adds a histogram metric (snapshotting `histogram` now). Empty
    /// histograms are skipped — a disabled probe layer contributes no
    /// all-zero noise to reports.
    pub fn histogram(&mut self, name: impl Into<String>, histogram: &Histogram) -> &mut Self {
        let snapshot = histogram.snapshot();
        if snapshot.count > 0 {
            self.metrics
                .push((name.into(), Metric::Histogram(snapshot)));
        }
        self
    }

    /// Returns the section under a new name — used to namespace
    /// per-workload copies of the same layer's section (`"l1"` →
    /// `"matmul.l1"`) before merging profiles.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Serializes the section body as one JSON object (without the
    /// surrounding `"name":` key).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(json, "\"{name}\":").expect("writing to String cannot fail");
            match metric {
                Metric::Counter(v) => {
                    write!(json, "{v}").expect("writing to String cannot fail");
                }
                Metric::Gauge(v) => {
                    // JSON has no NaN/Inf; clamp to null.
                    if v.is_finite() {
                        write!(json, "{v:.3}").expect("writing to String cannot fail");
                    } else {
                        json.push_str("null");
                    }
                }
                Metric::Histogram(h) => {
                    write!(
                        json,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                    )
                    .expect("writing to String cannot fail");
                    for (j, (upper, count)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            json.push(',');
                        }
                        write!(json, "[{upper},{count}]").expect("writing to String cannot fail");
                    }
                    json.push_str("]}");
                }
            }
        }
        json.push('}');
        json
    }
}

/// Everything one run's probes measured: an ordered list of
/// [`Section`]s, serialized as one JSON object keyed by section name.
///
/// Reports embed this under a `"run_profile"` key when the probe layer
/// is compiled in (see [`enabled`](crate::enabled)).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RunProfile {
    sections: Vec<Section>,
}

impl RunProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        RunProfile::default()
    }

    /// Appends a section (skipping empty ones).
    pub fn push(&mut self, section: Section) -> &mut Self {
        if !section.metrics.is_empty() {
            self.sections.push(section);
        }
        self
    }

    /// The sections in insertion order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Consumes the profile, yielding its sections — for re-namespacing
    /// one run's sections into a larger merged profile.
    pub fn into_sections(self) -> Vec<Section> {
        self.sections
    }

    /// Whether no section carries any metric.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serializes the profile as one JSON object keyed by section name.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{");
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(json, "\"{}\":{}", section.name, section.to_json())
                .expect("writing to String cannot fail");
        }
        json.push('}');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_json_shape() {
        let mut section = Section::new("sched");
        section.counter("forks", 42).gauge("rate", 1.5);
        let json = section.to_json();
        assert_eq!(json, "{\"forks\":42,\"rate\":1.500}");
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let mut section = Section::new("x");
        section.gauge("bad", f64::NAN).gauge("inf", f64::INFINITY);
        assert_eq!(section.to_json(), "{\"bad\":null,\"inf\":null}");
    }

    #[test]
    fn histogram_metric_embeds_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(100);
        let mut section = Section::new("lat");
        section.histogram("ns", &h);
        let json = section.to_json();
        if crate::enabled() {
            assert!(json.contains("\"count\":2"), "{json}");
            assert!(json.contains("\"max\":100"), "{json}");
            assert!(json.contains("\"buckets\":[[1,1],[127,1]]"), "{json}");
            assert!(json.contains("\"p50\":"), "{json}");
        } else {
            assert_eq!(json, "{}", "empty histograms are skipped");
        }
    }

    #[test]
    fn profile_keys_sections_by_name() {
        let mut profile = RunProfile::new();
        let mut a = Section::new("a");
        a.counter("x", 1);
        let mut b = Section::new("b");
        b.counter("y", 2);
        profile.push(a).push(Section::new("empty")).push(b);
        assert_eq!(profile.to_json(), "{\"a\":{\"x\":1},\"b\":{\"y\":2}}");
        assert_eq!(profile.sections().len(), 2, "empty section dropped");
    }

    #[test]
    fn renamed_sections_merge_into_namespaced_profile() {
        let mut inner = RunProfile::new();
        let mut l1 = Section::new("l1");
        l1.counter("hits", 9);
        inner.push(l1);
        let mut merged = RunProfile::new();
        for section in inner.into_sections() {
            let name = format!("matmul.{}", section.name());
            merged.push(section.renamed(name));
        }
        assert_eq!(merged.to_json(), "{\"matmul.l1\":{\"hits\":9}}");
    }

    #[test]
    fn empty_profile_is_empty_object() {
        assert!(RunProfile::new().is_empty());
        assert_eq!(RunProfile::new().to_json(), "{}");
    }
}

//! Lightweight observability primitives for the thread-locality
//! workspace.
//!
//! Every hot layer of the system — the sequential and parallel
//! schedulers, the cache simulator, the experiment driver — is
//! instrumented with the primitives in this crate:
//!
//! * [`Counter`] — a thread-safe monotonic counter (relaxed atomics).
//! * [`LocalCounter`] — a single-threaded counter (`Cell`) for hot
//!   paths that hold `&mut self` anyway.
//! * [`Histogram`] — a log₂-bucketed value distribution with count /
//!   sum / min / max and approximate percentiles, mergeable across
//!   threads.
//! * [`Histogram::span`] — a scoped timer guard that records elapsed
//!   nanoseconds into a histogram on drop.
//!
//! All of the above are **compile-time gated** by the `enabled` cargo
//! feature (on by default). With the feature off every primitive is a
//! zero-sized type whose methods are empty `#[inline]` bodies, so the
//! instrumented code compiles to exactly the uninstrumented machine
//! code — the overhead budget of a disabled probe is *zero*, which is
//! why the gate is a feature and not a runtime flag (see DESIGN.md §8).
//!
//! Collected metrics flush into a [`RunProfile`] — an ordered list of
//! named [`Section`]s, serialized as one JSON object — which the
//! workspace's report types embed under a `"run_profile"` key when
//! [`enabled()`] is true. `RunProfile` and `Section` are *not* feature
//! gated: they are cold-path containers, and keeping them functional in
//! both modes lets report code build profiles unconditionally and gate
//! only the embedding.
//!
//! # Examples
//!
//! ```
//! let forks = probe::Counter::new();
//! let latency = probe::Histogram::new();
//! forks.add(3);
//! {
//!     let _span = latency.span(); // records elapsed ns on drop
//! }
//! latency.record(1500);
//!
//! let mut section = probe::Section::new("sched");
//! section.counter("forks", forks.get());
//! section.histogram("latency_ns", &latency);
//! let mut profile = probe::RunProfile::new();
//! profile.push(section);
//! if probe::enabled() {
//!     assert!(profile.to_json().contains("\"forks\":3"));
//! }
//! ```

mod metrics;
mod profile;

pub use metrics::{Counter, Histogram, HistogramSnapshot, LocalCounter, Span};
pub use profile::{Metric, RunProfile, Section};

/// Whether the probe layer is compiled in.
///
/// Report types consult this to decide whether to embed a
/// `"run_profile"` section; instrumented hot paths branch on it so the
/// disabled branch folds away at compile time.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_matches_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "enabled"));
    }
}

//! Online simulation as a trace sink.

use crate::{Hierarchy, SimReport};
use memtrace::{Access, AccessKind, TraceSink};

/// A [`TraceSink`] that drives a cache [`Hierarchy`] online.
///
/// This replaces the paper's Pixie-trace-file → DineroIII pipeline with
/// direct streaming: the workload's traced containers emit accesses
/// straight into the simulator, so paper-scale reference streams never
/// need to be materialized.
///
/// # Examples
///
/// ```
/// use cachesim::{MachineModel, SimSink};
/// use memtrace::{Addr, TraceSink};
///
/// let mut sim = SimSink::new(MachineModel::r10000().hierarchy());
/// sim.read(Addr::new(0x1000_0000), 8);
/// sim.instructions(4);
/// let report = sim.finish();
/// assert_eq!(report.reads, 1);
/// assert_eq!(report.instructions, 4);
/// ```
#[derive(Clone, Debug)]
pub struct SimSink {
    hierarchy: Hierarchy,
    instructions: u64,
    reads: u64,
    writes: u64,
    threads: u64,
}

impl SimSink {
    /// Creates a sink over an empty hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        SimSink {
            hierarchy,
            instructions: 0,
            reads: 0,
            writes: 0,
            threads: 0,
        }
    }

    /// Records that `count` threads were forked and run during the
    /// measured region (drives the timing model's overhead term).
    pub fn add_threads(&mut self, count: u64) {
        self.threads += count;
    }

    /// Enables or disables the hierarchy's fast lookup paths; reports
    /// are bit-identical either way (see [`Hierarchy::set_fast_path`]).
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.hierarchy.set_fast_path(enabled);
    }

    /// Whether the fast lookup paths are enabled.
    pub fn fast_path(&self) -> bool {
        self.hierarchy.fast_path()
    }

    /// The underlying hierarchy (e.g. for mid-run inspection).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Zeroes all counters and cache statistics while keeping cache
    /// contents warm — call after initialization, before the measured
    /// region, to mirror the paper's "results exclude program
    /// initialization costs".
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        self.instructions = 0;
        self.reads = 0;
        self.writes = 0;
        self.threads = 0;
    }

    /// Snapshots the current statistics.
    pub fn report(&self) -> SimReport {
        SimReport {
            instructions: self.instructions,
            reads: self.reads,
            writes: self.writes,
            l1: *self.hierarchy.l1_stats(),
            l2: *self.hierarchy.l2_stats(),
            l3: self.hierarchy.l3_stats().copied(),
            classes: self.hierarchy.classes(),
            tlb: self.hierarchy.tlb_stats(),
            memory_reads: self.hierarchy.memory_reads(),
            memory_writebacks: self.hierarchy.memory_writebacks(),
            threads: self.threads,
        }
    }

    /// Consumes the sink and returns the final statistics.
    pub fn finish(self) -> SimReport {
        self.report()
    }

    /// Flushes the hierarchy's probe observations (per-level
    /// hit/rehit/miss counts, modelled miss-latency histogram,
    /// classifier verdicts) into a profile for report embedding. Kept
    /// separate from [`report`](Self::report) on purpose: `SimReport`
    /// is `PartialEq`-compared by the fast≡slow differential suite,
    /// and probe counts legitimately differ between those paths.
    pub fn run_profile(&self) -> probe::RunProfile {
        self.hierarchy.run_profile()
    }
}

impl TraceSink for SimSink {
    #[inline]
    fn access(&mut self, access: Access) {
        match access.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.hierarchy.access(access);
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        // Count reads/writes in one pass, then drive the hierarchy
        // without re-dispatching through the trait per element. Exactly
        // equivalent to element-wise delivery.
        let mut writes = 0u64;
        for access in accesses {
            writes += u64::from(access.kind == AccessKind::Write);
        }
        self.writes += writes;
        self.reads += accesses.len() as u64 - writes;
        for &access in accesses {
            self.hierarchy.access(access);
        }
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineModel;
    use memtrace::Addr;

    #[test]
    fn counts_match_hierarchy() {
        let mut sim = SimSink::new(MachineModel::r8000().hierarchy());
        for off in (0..4096).step_by(8) {
            sim.read(Addr::new(0x1000_0000 + off), 8);
        }
        sim.write(Addr::new(0x1000_0000), 8);
        sim.instructions(100);
        let r = sim.finish();
        assert_eq!(r.reads, 512);
        assert_eq!(r.writes, 1);
        assert_eq!(r.instructions, 100);
        assert_eq!(r.l1.references(), 513);
        assert_eq!(r.classes.total(), r.l2.misses());
    }

    #[test]
    fn reset_stats_starts_measured_region() {
        let mut sim = SimSink::new(MachineModel::r8000().hierarchy());
        // "Initialization": touch everything once (cold misses).
        for off in (0..4096).step_by(8) {
            sim.write(Addr::new(off), 8);
        }
        sim.reset_stats();
        // Measured region: everything is L2-warm.
        for off in (0..4096).step_by(8) {
            sim.read(Addr::new(off), 8);
        }
        let r = sim.finish();
        assert_eq!(r.l2.misses(), 0, "no compulsory misses in measured region");
        assert_eq!(r.classes.compulsory, 0);
        assert_eq!(r.writes, 0, "init writes excluded");
    }

    #[test]
    fn batch_delivery_equals_element_wise() {
        let mut one = SimSink::new(MachineModel::r8000().hierarchy());
        let mut many = SimSink::new(MachineModel::r8000().hierarchy());
        let accesses: Vec<Access> = (0..1000u64)
            .map(|i| {
                if i % 3 == 0 {
                    Access::write(Addr::new(i * 16), 8)
                } else {
                    Access::read(Addr::new((i * 56) % 4096), 8)
                }
            })
            .collect();
        for &access in &accesses {
            one.access(access);
        }
        // Ragged chunks so batch boundaries land everywhere.
        for chunk in accesses.chunks(13) {
            many.access_batch(chunk);
        }
        assert_eq!(one.finish(), many.finish());
    }

    #[test]
    fn fast_path_knob_reaches_the_hierarchy() {
        let mut sim = SimSink::new(MachineModel::r8000().hierarchy());
        assert!(sim.fast_path());
        sim.set_fast_path(false);
        assert!(!sim.fast_path());
        assert!(!sim.hierarchy().fast_path());
    }

    #[test]
    fn add_threads_accumulates() {
        let mut sim = SimSink::new(MachineModel::r8000().hierarchy());
        sim.add_threads(100);
        sim.add_threads(23);
        assert_eq!(sim.report().threads, 123);
    }
}

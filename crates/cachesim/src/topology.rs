//! Machine locality topology: the hierarchy tree scheduling policies
//! bin against.
//!
//! A [`MachineTopology`] lists the locality *levels* of a machine from
//! finest to coarsest — L1 ⊂ L2 (⊂ L3 ⊂ NUMA node ⊂ package) — each
//! with a working-set capacity, a transfer-line granularity, and a
//! fanout (sibling count under the next-coarser level). It is the
//! single source of hierarchy truth: schedulers derive per-level bin
//! block sizes from the capacities, work stealing ranks victims by
//! lowest-common-ancestor depth in this tree, and the schedule linter
//! warns when conflicting threads land under different top-level
//! subtrees.
//!
//! Every [`MachineModel`](crate::MachineModel) has a topology: the two
//! paper machines derive a two-level tree from their cache hierarchy,
//! `modern()` a three-level one, and synthetic NUMA machines attach an
//! explicit deeper tree via
//! [`with_topology`](crate::MachineModel::with_topology).

use crate::config::{round_to_power_of_two, CacheConfigError};
use std::fmt;

/// Maximum number of levels a [`MachineTopology`] may hold, matching
/// the scheduler's ancestor-ladder capacity.
pub const MAX_TOPOLOGY_LEVELS: usize = 8;

/// One level of a machine's locality hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TopologyLevel {
    capacity: u64,
    line: u64,
    fanout: u32,
}

impl TopologyLevel {
    /// A level holding `capacity` bytes, transferring `line`-byte
    /// lines, with `fanout` sibling instances under one instance of the
    /// next-coarser level (the coarsest level's fanout counts instances
    /// in the whole machine, e.g. sockets).
    pub fn new(capacity: u64, line: u64, fanout: u32) -> Self {
        TopologyLevel {
            capacity,
            line,
            fanout,
        }
    }

    /// Working-set capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Transfer-line granularity in bytes.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Sibling instances of this level under the next-coarser level.
    pub fn fanout(&self) -> u32 {
        self.fanout
    }
}

impl fmt::Display for TopologyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (size, unit) = if self.capacity >= 1 << 20 {
            (self.capacity >> 20, "MB")
        } else {
            (self.capacity >> 10, "KB")
        };
        write!(f, "{size}{unit}/{}B-line x{}", self.line, self.fanout)
    }
}

/// A machine's locality hierarchy, finest level first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineTopology {
    levels: Vec<TopologyLevel>,
}

impl MachineTopology {
    /// Builds a topology from levels listed finest → coarsest.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no levels or more than
    /// [`MAX_TOPOLOGY_LEVELS`], if any capacity or line is zero or not
    /// a power of two, if a capacity is smaller than its line, if any
    /// fanout is zero, if capacities are not strictly increasing
    /// finest → coarsest, or if line sizes decrease up the tree.
    pub fn new(levels: Vec<TopologyLevel>) -> Result<Self, CacheConfigError> {
        if levels.is_empty() {
            return Err(CacheConfigError::new("topology needs at least one level"));
        }
        if levels.len() > MAX_TOPOLOGY_LEVELS {
            return Err(CacheConfigError::new(format!(
                "topology has {} levels, more than the supported {MAX_TOPOLOGY_LEVELS}",
                levels.len()
            )));
        }
        for (i, level) in levels.iter().enumerate() {
            if level.capacity == 0 || !level.capacity.is_power_of_two() {
                return Err(CacheConfigError::new(format!(
                    "topology level {i} capacity {} is not a nonzero power of two",
                    level.capacity
                )));
            }
            if level.line == 0 || !level.line.is_power_of_two() {
                return Err(CacheConfigError::new(format!(
                    "topology level {i} line {} is not a nonzero power of two",
                    level.line
                )));
            }
            if level.capacity < level.line {
                return Err(CacheConfigError::new(format!(
                    "topology level {i} capacity {} is smaller than its line {}",
                    level.capacity, level.line
                )));
            }
            if level.fanout == 0 {
                return Err(CacheConfigError::new(format!(
                    "topology level {i} fanout must be at least 1"
                )));
            }
        }
        for (i, pair) in levels.windows(2).enumerate() {
            if pair[0].capacity >= pair[1].capacity {
                return Err(CacheConfigError::new(format!(
                    "topology capacities must strictly increase: level {i} holds {}, level {} \
                     holds {}",
                    pair[0].capacity,
                    i + 1,
                    pair[1].capacity
                )));
            }
            if pair[0].line > pair[1].line {
                return Err(CacheConfigError::new(format!(
                    "topology lines must not shrink up the tree: level {i} uses {}, level {} \
                     uses {}",
                    pair[0].line,
                    i + 1,
                    pair[1].line
                )));
            }
        }
        Ok(MachineTopology { levels })
    }

    /// Builds a topology from possibly-overlapping levels by clamping:
    /// walking coarsest → finest, each capacity is capped at half the
    /// next-coarser level's, so the capacities come out strictly
    /// ordered.
    ///
    /// # Errors
    ///
    /// Returns an error if clamping pushes a level's capacity below its
    /// line size — the tree has degenerated and should be rejected, not
    /// silently flattened — or if the levels fail the
    /// [`new`](Self::new) validation for another reason.
    pub fn clamped(mut levels: Vec<TopologyLevel>) -> Result<Self, CacheConfigError> {
        for i in (0..levels.len().saturating_sub(1)).rev() {
            let cap = levels[i].capacity.min(levels[i + 1].capacity / 2);
            if cap < levels[i].line {
                return Err(CacheConfigError::new(format!(
                    "topology level {i} degenerates under clamping: capacity {} below line {}",
                    cap, levels[i].line
                )));
            }
            levels[i].capacity = cap;
        }
        MachineTopology::new(levels)
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest first.
    pub fn levels(&self) -> &[TopologyLevel] {
        &self.levels
    }

    /// The level at `index` (0 = finest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= depth()`.
    pub fn level(&self, index: usize) -> TopologyLevel {
        self.levels[index]
    }

    /// Per-level capacities, finest first.
    pub fn capacities(&self) -> Vec<u64> {
        self.levels.iter().map(|l| l.capacity).collect()
    }

    /// Returns this topology with the finest level's capacity scaled by
    /// `l1_factor` and every other level's by `l2_factor` (each rounded
    /// to the nearest power of two), then clamped so capacities stay
    /// strictly ordered.
    ///
    /// # Errors
    ///
    /// Returns an error if scaling or clamping degenerates a level
    /// below its line size.
    ///
    /// # Panics
    ///
    /// Panics if a factor is not finite and positive.
    pub fn scaled_split(
        &self,
        l1_factor: f64,
        l2_factor: f64,
    ) -> Result<MachineTopology, CacheConfigError> {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(i, level)| {
                let factor = if i == 0 { l1_factor } else { l2_factor };
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "scale factor must be positive"
                );
                TopologyLevel {
                    capacity: round_to_power_of_two(level.capacity as f64 * factor),
                    ..*level
                }
            })
            .collect();
        MachineTopology::clamped(levels)
    }
}

impl fmt::Display for MachineTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                f.write_str(" < ")?;
            }
            write!(f, "{level}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_level() -> Vec<TopologyLevel> {
        vec![
            TopologyLevel::new(32 << 10, 64, 1),
            TopologyLevel::new(256 << 10, 64, 1),
            TopologyLevel::new(8 << 20, 64, 4),
            TopologyLevel::new(64 << 20, 64, 2),
        ]
    }

    #[test]
    fn valid_tree_round_trips() {
        let t = MachineTopology::new(four_level()).unwrap();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.capacities(), vec![32 << 10, 256 << 10, 8 << 20, 64 << 20]);
        assert_eq!(t.level(2).fanout(), 4);
        assert_eq!(t.level(0).line(), 64);
    }

    #[test]
    fn rejects_bad_trees() {
        assert!(MachineTopology::new(vec![]).is_err(), "empty");
        let mut shrinking = four_level();
        shrinking[3].capacity = 1 << 20;
        assert!(
            MachineTopology::new(shrinking).is_err(),
            "non-increasing capacities"
        );
        let mut bad_line = four_level();
        bad_line[1].line = 48;
        assert!(MachineTopology::new(bad_line).is_err(), "non-pow2 line");
        let mut zero_fanout = four_level();
        zero_fanout[0].fanout = 0;
        assert!(MachineTopology::new(zero_fanout).is_err(), "zero fanout");
        let mut line_shrinks = four_level();
        line_shrinks[0].line = 128;
        assert!(
            MachineTopology::new(line_shrinks).is_err(),
            "line shrinks up the tree"
        );
        let too_deep = (0..9)
            .map(|i| TopologyLevel::new(1 << (10 + i), 64, 1))
            .collect();
        assert!(MachineTopology::new(too_deep).is_err(), "too deep");
    }

    #[test]
    fn clamping_restores_strict_order() {
        // L1 as large as L2: the clamp halves it under L2.
        let t = MachineTopology::clamped(vec![
            TopologyLevel::new(1 << 20, 64, 1),
            TopologyLevel::new(1 << 20, 64, 1),
        ])
        .unwrap();
        assert_eq!(t.capacities(), vec![1 << 19, 1 << 20]);
    }

    #[test]
    fn clamping_rejects_degenerate_trees() {
        // Clamping would push the fine level below its line size.
        let err = MachineTopology::clamped(vec![
            TopologyLevel::new(64, 64, 1),
            TopologyLevel::new(64, 64, 1),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("degenerates"), "{err}");
    }

    #[test]
    fn scaling_scales_and_clamps() {
        let t = MachineTopology::new(four_level()).unwrap();
        let s = t.scaled_split(1.0, 1.0 / 8.0).unwrap();
        // Coarser levels shrink 8x; the unscaled L1 is clamped under
        // the shrunken L2.
        assert_eq!(s.capacities(), vec![16 << 10, 32 << 10, 1 << 20, 8 << 20]);
        assert!(t.scaled_split(1e-6, 1e-6).is_err(), "degenerate scale");
    }

    #[test]
    fn display_lists_levels() {
        let t = MachineTopology::new(four_level()).unwrap();
        let s = t.to_string();
        assert!(s.contains("32KB/64B-line x1"), "{s}");
        assert!(s.contains("64MB/64B-line x2"), "{s}");
    }
}

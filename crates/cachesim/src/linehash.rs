//! Runtime-selectable hashing for line-index keys.
//!
//! The classifier's `seen` set and the LRU capacity model's index are
//! the hottest hash structures in the simulator: they are consulted on
//! every reference that reaches the classified level. The fast path
//! hashes the (already well-mixed-by-multiplication) 64-bit line index
//! with one multiply and a shift-xor; the slow path keeps the standard
//! library's SipHash so it remains byte-for-byte the exhaustive
//! reference implementation. The hash function never affects *what* a
//! map or set contains, only where it stores it, so statistics are
//! bit-identical across modes.

use std::collections::hash_map::DefaultHasher;
use std::hash::{BuildHasher, Hasher};

/// Which hash function a [`LineHashState`] builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum HashMode {
    /// The standard library's SipHash (the exhaustive reference path).
    Sip,
    /// One-multiply mixing of the 64-bit key (the fast path).
    Mult,
}

/// A `BuildHasher` whose mode is chosen at construction time, so a map
/// can switch algorithms when the fast path is toggled (rebuilding the
/// map, since bucket positions change).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct LineHashState(pub(crate) HashMode);

impl LineHashState {
    pub(crate) fn for_fast(fast: bool) -> Self {
        LineHashState(if fast { HashMode::Mult } else { HashMode::Sip })
    }
}

impl BuildHasher for LineHashState {
    type Hasher = LineHasher;

    #[inline]
    fn build_hasher(&self) -> LineHasher {
        match self.0 {
            HashMode::Sip => LineHasher::Sip(DefaultHasher::new()),
            HashMode::Mult => LineHasher::Mult(0),
        }
    }
}

/// See [`LineHashState`].
pub(crate) enum LineHasher {
    Sip(DefaultHasher),
    Mult(u64),
}

impl Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        match self {
            LineHasher::Sip(h) => h.finish(),
            LineHasher::Mult(x) => *x,
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        match self {
            LineHasher::Sip(h) => h.write(bytes),
            // FNV-style fallback for non-u64 keys (unused by the line
            // maps, but required for a complete Hasher).
            LineHasher::Mult(x) => {
                for &b in bytes {
                    *x = (*x ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        match self {
            LineHasher::Sip(h) => h.write_u64(n),
            LineHasher::Mult(x) => {
                // Fibonacci multiply then fold the high bits down so the
                // low bits (hashbrown's bucket index) see the whole key.
                let v = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                *x = v ^ (v >> 32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn both_modes_agree_on_set_contents() {
        let mut sip: HashSet<u64, LineHashState> =
            HashSet::with_hasher(LineHashState::for_fast(false));
        let mut mult: HashSet<u64, LineHashState> =
            HashSet::with_hasher(LineHashState::for_fast(true));
        let mut state = 0xDEAD_BEEFu64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 512;
            assert_eq!(sip.insert(key), mult.insert(key));
        }
        assert_eq!(sip.len(), mult.len());
    }

    #[test]
    fn mult_mode_spreads_sequential_keys() {
        // Sequential line indexes are the common case; the low bits of
        // their hashes (the bucket index) must not collide en masse.
        let build = LineHashState::for_fast(true);
        let mut low_bits = HashSet::new();
        for key in 0..256u64 {
            low_bits.insert(build.hash_one(key) & 0xFF);
        }
        assert!(
            low_bits.len() > 128,
            "got {} distinct buckets",
            low_bits.len()
        );
    }
}

//! Cache geometry configuration.

use std::error::Error;
use std::fmt;

/// What a cache does with writes (DineroIII's `-W` flag space).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Copy-back with write-allocate: the Dinero default, what both
    /// paper machines implement, and this crate's default.
    #[default]
    WriteBackAllocate,
    /// Write-through without write-allocate: writes update the line on
    /// a hit but never allocate, and every write propagates to the
    /// next level.
    WriteThroughNoAllocate,
}

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use cachesim::CacheConfig;
///
/// // The R8000's unified 2 MB 4-way L2 with 128-byte lines.
/// let l2 = CacheConfig::new(2 << 20, 128, 4)?;
/// assert_eq!(l2.sets(), 4096);
/// assert_eq!(l2.lines(), 16384);
/// # Ok::<(), cachesim::CacheConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size: u64,
    line: u64,
    assoc: u32,
    write_policy: WritePolicy,
}

/// Error returned when a [`CacheConfig`] is geometrically impossible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfigError {
    message: String,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.message)
    }
}

impl Error for CacheConfigError {}

impl CacheConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CacheConfigError {
            message: message.into(),
        }
    }
}

impl CacheConfig {
    /// Creates a cache geometry of `size` bytes total, `line`-byte lines,
    /// and `assoc`-way set associativity.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero, `size` or `line` is not
    /// a power of two, `size` is not divisible by `line * assoc`, or the
    /// resulting set count is not a power of two.
    pub fn new(size: u64, line: u64, assoc: u32) -> Result<Self, CacheConfigError> {
        if size == 0 || line == 0 || assoc == 0 {
            return Err(CacheConfigError::new(
                "size, line, and assoc must be nonzero",
            ));
        }
        if !size.is_power_of_two() {
            return Err(CacheConfigError::new(format!(
                "size {size} is not a power of two"
            )));
        }
        if !line.is_power_of_two() {
            return Err(CacheConfigError::new(format!(
                "line {line} is not a power of two"
            )));
        }
        let way_bytes = line
            .checked_mul(u64::from(assoc))
            .ok_or_else(|| CacheConfigError::new("line * assoc overflows"))?;
        if !size.is_multiple_of(way_bytes) {
            return Err(CacheConfigError::new(format!(
                "size {size} is not divisible by line {line} * assoc {assoc}"
            )));
        }
        let sets = size / way_bytes;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::new(format!(
                "set count {sets} is not a power of two"
            )));
        }
        Ok(CacheConfig {
            size,
            line,
            assoc,
            write_policy: WritePolicy::default(),
        })
    }

    /// A fully-associative geometry of the same capacity and line size.
    ///
    /// Used by the 3C classifier's capacity model.
    pub fn fully_associative(self) -> CacheConfig {
        CacheConfig {
            assoc: (self.size / self.line) as u32,
            ..self
        }
    }

    /// Returns this geometry with a different write policy.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> CacheConfig {
        self.write_policy = policy;
        self
    }

    /// The write policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Line size in bytes.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.line * u64::from(self.assoc))
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size / self.line
    }

    /// Returns this geometry with capacity multiplied by `factor`
    /// (rounded to the nearest power of two, minimum one set), keeping
    /// line size and associativity.
    ///
    /// Used to scale machine models down together with problem sizes so
    /// the data-set : cache ratio of the paper is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> CacheConfig {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let way_bytes = self.line * u64::from(self.assoc);
        let target_sets = (self.sets() as f64 * factor).max(1.0);
        let sets = round_to_power_of_two(target_sets);
        CacheConfig {
            size: sets * way_bytes,
            ..*self
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (size, unit) = if self.size >= 1 << 20 {
            (self.size >> 20, "MB")
        } else {
            (self.size >> 10, "KB")
        };
        write!(f, "{size}{unit}/{}-way/{}B-line", self.assoc, self.line)
    }
}

pub(crate) fn round_to_power_of_two(x: f64) -> u64 {
    let lower = (x.log2().floor()).exp2();
    let upper = lower * 2.0;
    let rounded = if x - lower <= upper - x { lower } else { upper };
    rounded.max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r8000_l2_geometry() {
        let c = CacheConfig::new(2 << 20, 128, 4).unwrap();
        assert_eq!(c.sets(), 4096);
        assert_eq!(c.lines(), 16384);
        assert_eq!(c.to_string(), "2MB/4-way/128B-line");
    }

    #[test]
    fn direct_mapped_geometry() {
        let c = CacheConfig::new(16 << 10, 32, 1).unwrap();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.to_string(), "16KB/1-way/32B-line");
    }

    #[test]
    fn rejects_zero_params() {
        assert!(CacheConfig::new(0, 32, 1).is_err());
        assert!(CacheConfig::new(1024, 0, 1).is_err());
        assert!(CacheConfig::new(1024, 32, 0).is_err());
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(CacheConfig::new(3000, 32, 1).is_err());
        assert!(CacheConfig::new(4096, 48, 1).is_err());
    }

    #[test]
    fn rejects_indivisible_geometry() {
        // 1024 bytes, 128-byte lines, 16 ways => 0.5 sets.
        assert!(CacheConfig::new(1024, 128, 16).is_err());
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheConfig::new(1 << 20, 128, 2)
            .unwrap()
            .fully_associative();
        assert_eq!(c.sets(), 1);
        assert_eq!(c.assoc(), 8192);
        assert_eq!(c.size(), 1 << 20);
    }

    #[test]
    fn scaling_preserves_line_and_assoc() {
        let c = CacheConfig::new(2 << 20, 128, 4).unwrap();
        let s = c.scaled(1.0 / 16.0);
        assert_eq!(s.size(), 128 << 10);
        assert_eq!(s.line(), 128);
        assert_eq!(s.assoc(), 4);
        // Scaling never drops below one set.
        let tiny = c.scaled(1e-9);
        assert_eq!(tiny.sets(), 1);
    }

    #[test]
    fn scaling_rounds_to_power_of_two() {
        let c = CacheConfig::new(1 << 20, 128, 2).unwrap();
        let s = c.scaled(0.3); // 4096 sets * 0.3 = 1228.8 -> 1024
        assert_eq!(s.sets(), 1024);
    }

    #[test]
    fn error_display_mentions_cause() {
        let err = CacheConfig::new(3000, 32, 1).unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }
}

//! The paper's crude execution-time model.

use std::fmt;

/// The crude timing model the paper uses throughout §4 to connect cache
/// misses to seconds saved:
///
/// > "If we crudely assume that each instruction takes a single cycle
/// > and that the L1 and L2 cache miss overheads are 7 cycles and 1.06
/// > microseconds respectively …"
///
/// `seconds = instructions / (clock · ipc)
///          + l1_misses · l1_penalty_cycles / clock
///          + l2_misses · l2_penalty_ns · 1e-9
///          + threads · thread_overhead`
///
/// The paper validates this model against measured times for each
/// benchmark (coming within ~5–25 % except for the most memory-bound
/// code); we use it to produce the modeled "seconds" columns of
/// Tables 2/4/6/8.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingModel {
    clock_hz: f64,
    instructions_per_cycle: f64,
    l1_miss_penalty_cycles: f64,
    l2_miss_penalty_ns: f64,
}

/// Estimated execution time, broken down by component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Time executing instructions.
    pub instruction_seconds: f64,
    /// Time stalled on L1 misses.
    pub l1_seconds: f64,
    /// Time stalled on L2 misses.
    pub l2_seconds: f64,
    /// Thread fork/run overhead.
    pub thread_seconds: f64,
    /// Time stalled on TLB misses (zero unless an MMU was simulated).
    pub tlb_seconds: f64,
}

impl TimeBreakdown {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.instruction_seconds
            + self.l1_seconds
            + self.l2_seconds
            + self.thread_seconds
            + self.tlb_seconds
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}s (instr {:.2}s + L1 {:.2}s + L2 {:.2}s + threads {:.2}s + TLB {:.2}s)",
            self.total(),
            self.instruction_seconds,
            self.l1_seconds,
            self.l2_seconds,
            self.thread_seconds,
            self.tlb_seconds
        )
    }
}

impl TimingModel {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` or `instructions_per_cycle` is not positive.
    pub fn new(
        clock_hz: f64,
        instructions_per_cycle: f64,
        l1_miss_penalty_cycles: f64,
        l2_miss_penalty_ns: f64,
    ) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        assert!(instructions_per_cycle > 0.0, "IPC must be positive");
        TimingModel {
            clock_hz,
            instructions_per_cycle,
            l1_miss_penalty_cycles,
            l2_miss_penalty_ns,
        }
    }

    /// Estimates execution time for the given event counts.
    pub fn estimate(&self, instructions: u64, l1_misses: u64, l2_misses: u64) -> TimeBreakdown {
        self.estimate_with_threads(instructions, l1_misses, l2_misses, 0, 0.0)
    }

    /// Estimates execution time including per-thread scheduling overhead
    /// (`threads` threads at `thread_overhead_ns` each — paper Table 1).
    pub fn estimate_with_threads(
        &self,
        instructions: u64,
        l1_misses: u64,
        l2_misses: u64,
        threads: u64,
        thread_overhead_ns: f64,
    ) -> TimeBreakdown {
        TimeBreakdown {
            instruction_seconds: instructions as f64
                / (self.clock_hz * self.instructions_per_cycle),
            l1_seconds: l1_misses as f64 * self.l1_miss_penalty_cycles / self.clock_hz,
            l2_seconds: l2_misses as f64 * self.l2_miss_penalty_ns * 1e-9,
            thread_seconds: threads as f64 * thread_overhead_ns * 1e-9,
            tlb_seconds: 0.0,
        }
    }

    /// Seconds stalled walking the page table for `tlb_misses` misses
    /// at `penalty_cycles` each.
    pub fn tlb_seconds(&self, tlb_misses: u64, penalty_cycles: f64) -> f64 {
        tlb_misses as f64 * penalty_cycles / self.clock_hz
    }

    /// Seconds saved by eliminating the given miss counts — the paper's
    /// "estimated time saved" analysis (§4.2–4.4).
    pub fn seconds_saved(&self, l1_misses_saved: i64, l2_misses_saved: i64) -> f64 {
        l1_misses_saved as f64 * self.l1_miss_penalty_cycles / self.clock_hz
            + l2_misses_saved as f64 * self.l2_miss_penalty_ns * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r8000_timing() -> TimingModel {
        TimingModel::new(75e6, 1.0, 7.0, 1060.0)
    }

    #[test]
    fn paper_sor_crude_analysis_reproduces() {
        // Paper §4.3 (SOR, hand-tiled vs untiled): "the estimated
        // overhead of 933M instructions would be about 12.4 seconds".
        let t = r8000_timing();
        let instr_s = t.estimate(933_000_000, 0, 0).instruction_seconds;
        assert!((instr_s - 12.44).abs() < 0.1, "{instr_s}");
        // "the estimated time saved by reducing L1 and L2 cache misses
        // is 7.3 and 8.0 seconds respectively" — 85M L1, 7.3M+ L2.
        let l1_s = t.estimate(0, 85_000_000, 0).l1_seconds;
        assert!((l1_s - 7.93).abs() < 0.7, "{l1_s}");
        let l2_s = t.estimate(0, 0, 7_300_000).l2_seconds;
        assert!((l2_s - 7.74).abs() < 0.5, "{l2_s}");
    }

    #[test]
    fn paper_threaded_matmul_saving_reproduces() {
        // §4.2: threaded matmul "would save about 69 seconds in L1 and
        // L2 cache misses" — it reduces L2 misses by 66.4M while adding
        // ~6M L1 misses.
        let t = r8000_timing();
        let saved = t.seconds_saved(-6_000_000, 66_400_000);
        assert!((saved - 69.0).abs() < 2.0, "{saved}");
    }

    #[test]
    fn breakdown_totals() {
        let t = TimingModel::new(100e6, 1.0, 10.0, 1000.0);
        let b = t.estimate_with_threads(100_000_000, 1_000_000, 100_000, 1000, 1000.0);
        assert!((b.instruction_seconds - 1.0).abs() < 1e-12);
        assert!((b.l1_seconds - 0.1).abs() < 1e-12);
        assert!((b.l2_seconds - 0.1).abs() < 1e-12);
        assert!((b.thread_seconds - 1e-3).abs() < 1e-12);
        assert!((b.total() - 1.201).abs() < 1e-9);
    }

    #[test]
    fn ipc_scales_instruction_time() {
        let t1 = TimingModel::new(100e6, 1.0, 0.0, 0.0);
        let t4 = TimingModel::new(100e6, 4.0, 0.0, 0.0);
        let b1 = t1.estimate(1_000_000, 0, 0);
        let b4 = t4.estimate(1_000_000, 0, 0);
        assert!((b1.instruction_seconds / b4.instruction_seconds - 4.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let b = r8000_timing().estimate(75_000_000, 0, 0);
        let s = b.to_string();
        assert!(s.contains("1.00s"), "{s}");
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn rejects_nonpositive_clock() {
        let _ = TimingModel::new(0.0, 1.0, 7.0, 1060.0);
    }
}

//! Sharded trace-driven simulation over independent address regions.
//!
//! The hierarchy's set-index bit fields make sharding exact rather than
//! approximate: pick `k` *selector bits* that lie inside the set-index
//! field of **every** level, and two addresses with different selector
//! values can never meet in a set at any level — they are, in BUNDLEP's
//! terms, conflict-free regions. Each of the `2^k` shards therefore
//! runs the ordinary fast path over a private [`Hierarchy`] clone (its
//! own structure-of-arrays tag/stamp state), and the per-shard
//! [`CacheStats`] sum to the unsharded totals *exactly* — per-set LRU
//! order is preserved because LRU stamps are only ever compared within
//! a set, and a set belongs to exactly one shard.
//!
//! Two things do not decompose by address and are handled specially:
//!
//! * **3C classification** models one global fully-associative cache,
//!   so shard workers log their DRAM-facing-level references instead of
//!   classifying ([`Hierarchy::set_deferred_classification`]), and a
//!   deterministic spawn-order merge replays the logs into one shared
//!   [`MissClassifier`] in exact program order after every drain.
//! * **The MMU** (fully-associative TLB, physically-indexed L2) breaks
//!   the selector-bit invariant, so a hierarchy with an MMU degrades to
//!   a single inline shard — still bit-identical, just not partitioned.
//!
//! Trace records wait in per-shard *compact queues* — the delta
//! encoding of [`memtrace::compact`] extended with run-length collapsed
//! same-line records and sub-span markers — so a drain's working set
//! stays cache-resident. Workers drain under `std::thread::scope` with
//! spawn-order joins (the `run_cells` reduce pattern), or inline when
//! the host has a single core; results are identical either way.

use crate::hierarchy::LlcEvent;
use crate::{CacheStats, Hierarchy, MissClassifier, SimReport, WritePolicy};
use memtrace::compact::{push_varint, take_varint, unzigzag, zigzag, FLAG_SAME_SIZE, FLAG_WRITE};
use memtrace::{Access, AccessKind, Addr, TraceSink};

/// Flag bit 2: escape — the record is not an access. Bit 3 then picks
/// the type: clear = run-length record, set = sub-span marker.
const FLAG_ESCAPE: u8 = 1 << 2;
const FLAG_MARK: u8 = 1 << 3;

/// Sentinel "no line" value for run tracking.
const NO_LINE: u64 = u64::MAX;

/// Writes `v` as LEB128 into `buf` at `at`, returning one past the last
/// byte written. `buf` must have ≥ 10 bytes of room past `at` (a u64
/// varint is at most 10 bytes).
#[inline]
fn put_varint(buf: &mut [u8; 21], mut at: usize, mut v: u64) -> usize {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[at] = b;
            return at + 1;
        }
        buf[at] = b | 0x80;
        at += 1;
    }
}

/// Drain the shard queues once this many records are pending. Sized so
/// the encoded queues (2–4 bytes/record) plus the decode working set
/// stay within a few hundred KiB — resident in any L2 worth simulating.
const FLUSH_RECORDS: usize = 1 << 18;

/// The address-region partition for a hierarchy: which selector bits
/// split the trace across shards.
///
/// Validity: the selector bits `[shift, shift + log2(shards))` must lie
/// inside every level's set-index field, i.e. at or above every line
/// offset (`shift >= log2(line)`) and strictly below every level's way
/// size (`shift + k <= log2(line * sets)`). [`ShardPlan::for_hierarchy`]
/// picks the highest valid shift that still yields the requested shard
/// count and clamps that count to what the geometry supports;
/// [`ShardPlan::with_shift`] lets tests explore the whole valid space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shift: u32,
    mask: u64,
    shards: u32,
}

impl ShardPlan {
    /// The lowest valid selector shift for `hierarchy`: every level's
    /// line offset is below it.
    fn min_shift(hierarchy: &Hierarchy) -> u32 {
        let config = hierarchy.config();
        let mut shift = config.l1d.line().trailing_zeros();
        shift = shift.max(config.l2.line().trailing_zeros());
        if let Some(l3) = config.l3 {
            shift = shift.max(l3.line().trailing_zeros());
        }
        shift
    }

    /// One past the highest valid selector bit: the log2 of the
    /// smallest way size (line × sets) over all levels.
    fn max_shift(hierarchy: &Hierarchy) -> u32 {
        let config = hierarchy.config();
        let way_bits = |c: &crate::CacheConfig| (c.line() * c.sets()).trailing_zeros();
        let mut hi = way_bits(&config.l1d).min(way_bits(&config.l2));
        if let Some(l3) = config.l3 {
            hi = hi.min(way_bits(&l3));
        }
        hi
    }

    /// Plans a partition of `hierarchy` into at most `requested` shards.
    /// The effective shard count is the largest power of two ≤
    /// `requested` that the geometry (and the absence of an MMU)
    /// supports; it can be 1.
    ///
    /// Among the valid selector shifts the planner takes the *highest*
    /// one that still yields that shard count — the coarsest granules.
    /// Interleaved streams (multiple arrays walked in lockstep) then
    /// switch shards once per granule instead of once per line, which
    /// both shrinks the sub-span merge schedule and keeps each stream
    /// inside one queue long enough for run-length collapsing to bite.
    #[must_use]
    pub fn for_hierarchy(hierarchy: &Hierarchy, requested: u32) -> ShardPlan {
        let lo = Self::min_shift(hierarchy);
        let hi = Self::max_shift(hierarchy);
        let fallback = ShardPlan {
            shift: lo,
            mask: 0,
            shards: 1,
        };
        if lo >= hi {
            return fallback;
        }
        // Bits needed for the requested count, clamped to the field.
        let k = 32 - requested.max(1).leading_zeros() - 1;
        let shift = hi - k.clamp(1, hi - lo);
        Self::with_shift(hierarchy, requested, shift).unwrap_or(fallback)
    }

    /// Plans a partition with an explicit selector shift, or `None` if
    /// `shift` is outside the valid selector field. The shard count is
    /// still clamped to the bits available above `shift`.
    #[must_use]
    pub fn with_shift(hierarchy: &Hierarchy, requested: u32, shift: u32) -> Option<ShardPlan> {
        let lo = Self::min_shift(hierarchy);
        let hi = Self::max_shift(hierarchy);
        if shift < lo || shift >= hi {
            return None;
        }
        let mut k = hi - shift;
        if hierarchy.has_mmu() {
            // Physically-indexed levels and the fully-associative TLB
            // do not partition by virtual address.
            k = 0;
        }
        let requested = requested.max(1);
        let mut shards = 1u32 << k.min(31);
        while shards > requested {
            shards >>= 1;
        }
        Some(ShardPlan {
            shift,
            mask: u64::from(shards) - 1,
            shards,
        })
    }

    /// Effective number of shards (a power of two, ≥ 1).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The selector shift: shard identity is `(addr >> shift) % shards`.
    #[must_use]
    pub fn selector_shift(&self) -> u32 {
        self.shift
    }

    /// Which shard owns `addr`.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, addr: u64) -> u32 {
        ((addr >> self.shift) & self.mask) as u32
    }
}

/// Per-shard compact record queue: the [`memtrace::compact`] delta
/// encoding plus run-length records and sub-span markers.
#[derive(Clone, Debug)]
struct ShardQueue {
    bytes: Vec<u8>,
    prev_addr: u64,
    prev_size: u32,
    /// L1 line of the last encoded access when it was single-line (run
    /// head candidate); [`NO_LINE`] otherwise.
    run_line: u64,
    run_reads: u64,
    run_writes: u64,
}

impl Default for ShardQueue {
    fn default() -> Self {
        ShardQueue {
            bytes: Vec::new(),
            prev_addr: 0,
            prev_size: 0,
            // NO_LINE, not 0: line 0 is a real line, and a run must
            // never start without an encoded head access.
            run_line: NO_LINE,
            run_reads: 0,
            run_writes: 0,
        }
    }
}

impl ShardQueue {
    /// Emits the pending run-length record, if any.
    fn flush_run(&mut self) {
        if self.run_reads | self.run_writes != 0 {
            self.bytes.push(FLAG_ESCAPE);
            push_varint(&mut self.bytes, self.run_reads);
            push_varint(&mut self.bytes, self.run_writes);
            self.run_reads = 0;
            self.run_writes = 0;
        }
    }

    /// Encodes one access, returning `true` if it collapsed into a
    /// pending run. `line` is its L1 line when the access lies within a
    /// single line (making it a run candidate), else [`NO_LINE`].
    /// `collapse` enables run-length collapsing (write-back L1 only:
    /// order within a same-line run is then immaterial).
    #[inline]
    fn push(&mut self, access: Access, line: u64, collapse: bool) -> bool {
        if collapse && line != NO_LINE && line == self.run_line {
            if access.kind == AccessKind::Write {
                self.run_writes += 1;
            } else {
                self.run_reads += 1;
            }
            return true;
        }
        self.flush_run();
        self.run_line = line;
        let addr = access.addr.raw();
        let delta = addr.wrapping_sub(self.prev_addr) as i64;
        let mut flags = 0u8;
        if access.kind == AccessKind::Write {
            flags |= FLAG_WRITE;
        }
        if access.size == self.prev_size {
            flags |= FLAG_SAME_SIZE;
        }
        // Assemble the record on the stack and append it in one go: one
        // capacity check per record instead of one per byte.
        let mut rec = [0u8; 21];
        rec[0] = flags;
        let mut len = put_varint(&mut rec, 1, zigzag(delta));
        if flags & FLAG_SAME_SIZE == 0 {
            len = put_varint(&mut rec, len, u64::from(access.size));
            self.prev_size = access.size;
        }
        self.bytes.extend_from_slice(&rec[..len]);
        self.prev_addr = addr;
        false
    }

    /// Starts a new sub-span in this queue.
    fn mark(&mut self) {
        self.bytes.push(FLAG_ESCAPE | FLAG_MARK);
    }

    fn clear(&mut self) {
        self.bytes.clear();
        self.prev_addr = 0;
        self.prev_size = 0;
        self.run_line = NO_LINE;
        debug_assert_eq!(self.run_reads | self.run_writes, 0, "run not flushed");
    }
}

/// One shard's replay state: a private hierarchy plus the deferred
/// classification bookkeeping produced by each drain.
#[derive(Clone, Debug)]
struct ShardWorker {
    hierarchy: Hierarchy,
    /// LLC events drained from the hierarchy after replaying the queue.
    events: Vec<LlcEvent>,
    /// Events per sub-span, in this shard's sub-span order.
    span_events: Vec<u32>,
    l1_shift: u32,
}

impl ShardWorker {
    /// Replays one drained queue. Decoding mirrors [`ShardQueue::push`];
    /// the queue is self-produced, so a malformed tail (impossible by
    /// construction) just ends the replay.
    fn run(&mut self, bytes: &[u8]) {
        let mut pos = 0usize;
        let mut prev_addr = 0u64;
        let mut prev_size = 0u32;
        let mut cur_line = NO_LINE;
        let mut span_open = false;
        let mut span_start = 0usize;
        while let Some(&flags) = bytes.get(pos) {
            pos += 1;
            if flags & FLAG_ESCAPE != 0 {
                if flags & FLAG_MARK != 0 {
                    let n = self.hierarchy.llc_event_count();
                    if span_open {
                        self.span_events.push((n - span_start) as u32);
                    }
                    span_open = true;
                    span_start = n;
                } else {
                    let Some(reads) = take_varint(bytes, &mut pos) else {
                        break;
                    };
                    let Some(writes) = take_varint(bytes, &mut pos) else {
                        break;
                    };
                    self.replay_run(cur_line, reads, writes);
                }
                continue;
            }
            let Some(delta) = take_varint(bytes, &mut pos) else {
                break;
            };
            let size = if flags & FLAG_SAME_SIZE == 0 {
                let Some(size) = take_varint(bytes, &mut pos) else {
                    break;
                };
                size as u32
            } else {
                prev_size
            };
            prev_addr = prev_addr.wrapping_add(unzigzag(delta) as u64);
            prev_size = size;
            let is_write = flags & FLAG_WRITE != 0;
            let last_byte = prev_addr.saturating_add(u64::from(size.max(1)) - 1);
            let first_line = prev_addr >> self.l1_shift;
            if last_byte >> self.l1_shift == first_line {
                // Single-line (the overwhelmingly common case): skip the
                // full access path's address re-derivation — workers
                // never carry an MMU (an MMU degrades the plan to one
                // inline shard with no queues at all).
                cur_line = first_line;
                self.hierarchy.access_l1_line(first_line, is_write);
            } else {
                cur_line = NO_LINE;
                let addr = Addr::new(prev_addr);
                let access = if is_write {
                    Access::write(addr, size)
                } else {
                    Access::read(addr, size)
                };
                self.hierarchy.access(access);
            }
        }
        if span_open {
            let n = self.hierarchy.llc_event_count();
            self.span_events.push((n - span_start) as u32);
        }
        self.hierarchy.drain_llc_events(&mut self.events);
    }

    /// Applies a run-length record: `reads` + `writes` more references
    /// to `line`, which the encoder guaranteed are each contained in
    /// that line and queue-adjacent to the previous reference to it.
    fn replay_run(&mut self, line: u64, reads: u64, writes: u64) {
        if line == NO_LINE {
            debug_assert!(false, "run record without a single-line head");
            return;
        }
        if self.hierarchy.rehit_run(line, reads, writes) {
            return;
        }
        // Slow mode (fast paths disabled): replay per-reference. The
        // encoder only collapses runs for write-back L1s, where the
        // line is resident after its head access and order within the
        // run cannot affect any counter, so read-then-write replay is
        // exact.
        let base = Addr::new(line << self.l1_shift);
        for _ in 0..reads {
            self.hierarchy.access(Access::read(base, 1));
        }
        for _ in 0..writes {
            self.hierarchy.access(Access::write(base, 1));
        }
    }
}

/// A [`TraceSink`] that simulates across address-region shards and
/// reduces to totals bit-identical with [`SimSink`](crate::SimSink).
///
/// Records are partitioned by [`ShardPlan`] selector bits into compact
/// per-shard queues as they arrive; queues drain through private
/// per-shard hierarchies (in parallel where the host allows) and the
/// deferred classifier logs merge in program order. With one effective
/// shard — requested, geometry-limited, or forced by an MMU — the sink
/// degrades to inline simulation with no queueing at all.
///
/// # Examples
///
/// ```
/// use cachesim::{MachineModel, ShardedSimSink, SimSink};
/// use memtrace::{Addr, TraceSink};
///
/// let machine = MachineModel::r8000();
/// let mut sharded = ShardedSimSink::new(machine.hierarchy(), 4);
/// let mut plain = SimSink::new(machine.hierarchy());
/// for off in (0..65536u64).step_by(8) {
///     sharded.read(Addr::new(off), 8);
///     plain.read(Addr::new(off), 8);
/// }
/// assert_eq!(sharded.finish(), plain.finish());
/// ```
#[derive(Clone, Debug)]
pub struct ShardedSimSink {
    plan: ShardPlan,
    queues: Vec<ShardQueue>,
    workers: Vec<ShardWorker>,
    /// Owner shard of each sub-span, in program order — the merge
    /// schedule for the deferred classifier logs.
    span_owners: Vec<u8>,
    cur_shard: u32,
    /// The shared classifier every drained LLC log replays into.
    classifier: MissClassifier,
    l1_shift: u32,
    /// Run-length collapsing is only exact for write-back L1s.
    collapse: bool,
    pending: usize,
    instructions: u64,
    reads: u64,
    writes: u64,
    threads: u64,
    /// Completed drain rounds (flush → shard replay → merge cycles).
    rounds: u64,
    obs: ShardObs,
}

/// Probe counters for the sharded pipeline itself.
#[derive(Clone, Debug, Default)]
struct ShardObs {
    records: probe::LocalCounter,
    run_collapsed: probe::LocalCounter,
    split_accesses: probe::LocalCounter,
    flushes: probe::LocalCounter,
    queue_bytes: probe::LocalCounter,
}

impl ShardedSimSink {
    /// Creates a sharded sink over clones of `hierarchy`, one per
    /// effective shard of the auto-planned partition (see
    /// [`ShardPlan::for_hierarchy`]).
    #[must_use]
    pub fn new(hierarchy: Hierarchy, shards: u32) -> Self {
        let plan = ShardPlan::for_hierarchy(&hierarchy, shards);
        Self::with_plan(hierarchy, plan)
    }

    /// Creates a sharded sink with an explicit (valid) plan.
    #[must_use]
    pub fn with_plan(mut hierarchy: Hierarchy, plan: ShardPlan) -> Self {
        let config = hierarchy.config();
        let l1_shift = config.l1d.line().trailing_zeros();
        let collapse = config.l1d.write_policy() == WritePolicy::WriteBackAllocate;
        let classifier = MissClassifier::new(&config.l3.unwrap_or(config.l2));
        let n = plan.shards() as usize;
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let mut h = if i + 1 == n {
                // The last worker takes ownership; earlier ones clone.
                std::mem::replace(&mut hierarchy, Hierarchy::new(config))
            } else {
                hierarchy.clone()
            };
            if n > 1 {
                h.set_deferred_classification(true);
            }
            workers.push(ShardWorker {
                hierarchy: h,
                events: Vec::new(),
                span_events: Vec::new(),
                l1_shift,
            });
        }
        ShardedSimSink {
            plan,
            queues: vec![ShardQueue::default(); if n > 1 { n } else { 0 }],
            workers,
            span_owners: Vec::new(),
            cur_shard: u32::MAX,
            classifier,
            l1_shift,
            collapse,
            pending: 0,
            instructions: 0,
            reads: 0,
            writes: 0,
            threads: 0,
            rounds: 0,
            obs: ShardObs::default(),
        }
    }

    /// The partition in effect.
    #[must_use]
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// The schedule-event stream of the sharded pipeline's hand-off
    /// structure, for happens-before analysis: one round of
    /// producer → shard hand-offs (actor 0 flushing each queue), one
    /// drain unit per shard (the sequential replay of that shard's
    /// records, actors 1..=shards), the shard → merge hand-offs back to
    /// actor 0 (the program-order classifier merge), and a final
    /// barrier, repeated once per completed drain round (at least one,
    /// so the model is meaningful before the first flush). Every
    /// cross-shard edge goes *through* actor 0 — two shards never
    /// synchronize directly, which is exactly why per-shard replay must
    /// be conflict-free at selector granularity to be sound.
    #[must_use]
    pub fn schedule_log(&self) -> memtrace::ScheduleLog {
        use memtrace::SchedEvent;
        let shards = self.plan.shards();
        let rounds = self.rounds.max(1);
        let mut log = memtrace::ScheduleLog::new(shards + 1);
        for round in 0..rounds {
            for s in 0..shards {
                log.push(SchedEvent::Handoff { from: 0, to: s + 1 });
            }
            for s in 0..shards {
                let unit = u32::try_from(round).expect("round fits u32") * shards + s;
                log.push(SchedEvent::DrainBegin { actor: s + 1, unit });
                log.push(SchedEvent::DrainEnd { actor: s + 1, unit });
            }
            for s in 0..shards {
                log.push(SchedEvent::Handoff { from: s + 1, to: 0 });
            }
            log.push(SchedEvent::Barrier);
        }
        log
    }

    /// Records forked threads, as [`SimSink::add_threads`](crate::SimSink::add_threads).
    pub fn add_threads(&mut self, count: u64) {
        self.threads += count;
    }

    /// Enables or disables the fast lookup paths in every shard (and
    /// the merged classifier). Reports are bit-identical either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        for worker in &mut self.workers {
            worker.hierarchy.set_fast_path(enabled);
        }
        self.classifier.set_fast_path(enabled);
    }

    /// Routes one access to `shard`, opening a sub-span on switch.
    /// `line` is the single L1 line the access lies in, or [`NO_LINE`].
    #[inline]
    fn route(&mut self, shard: u32, access: Access, line: u64) {
        let switched = shard != self.cur_shard;
        if switched {
            self.cur_shard = shard;
            self.span_owners.push(shard as u8);
        }
        let queue = &mut self.queues[shard as usize];
        if switched {
            queue.mark();
        }
        if queue.push(access, line, self.collapse) {
            self.obs.run_collapsed.incr();
        }
        self.pending += 1;
    }

    /// Partitions one access, splitting it at selector-granule
    /// boundaries when it straddles shards.
    #[inline]
    fn partition(&mut self, access: Access) {
        let addr = access.addr.raw();
        let last_byte = addr.saturating_add(u64::from(access.size.max(1)) - 1);
        if addr >> self.plan.shift == last_byte >> self.plan.shift {
            // Entirely within one selector granule (the common case):
            // one shard, and single-line iff it stays in one L1 line.
            let first_line = addr >> self.l1_shift;
            let line = if last_byte >> self.l1_shift == first_line {
                first_line
            } else {
                NO_LINE
            };
            self.route(self.plan.shard_of(addr), access, line);
            return;
        }
        // Straddles a granule boundary: split into per-granule pieces,
        // in address order (= the order the unsharded hierarchy walks
        // its lines). The granule is a multiple of every line size, so
        // the pieces' line touches concatenate to the original's.
        self.obs.split_accesses.incr();
        let granule = 1u64 << self.plan.shift;
        let mut start = addr;
        loop {
            // Last byte of this piece: end of the granule or of the
            // access, whichever comes first (inclusive arithmetic so an
            // access ending at u64::MAX cannot overflow).
            let piece_last = (start | (granule - 1)).min(last_byte);
            let size = (piece_last - start + 1).min(u64::from(u32::MAX)) as u32;
            let piece = Access {
                addr: Addr::new(start),
                size,
                kind: access.kind,
            };
            let piece_line = if start >> self.l1_shift == piece_last >> self.l1_shift {
                start >> self.l1_shift
            } else {
                NO_LINE
            };
            self.route(self.plan.shard_of(start), piece, piece_line);
            if piece_last == last_byte {
                break;
            }
            start = piece_last + 1;
        }
    }

    /// Drains every queue through its shard and merges the deferred
    /// classifier logs in program order. Deterministic regardless of
    /// whether workers ran in parallel: each queue's replay is
    /// sequential within its worker, and the merge follows the recorded
    /// sub-span order, not completion order.
    fn drain(&mut self) {
        if self.pending == 0 {
            return;
        }
        for queue in &mut self.queues {
            queue.flush_run();
            self.obs.queue_bytes.add(queue.bytes.len() as u64);
        }
        self.obs.records.add(self.pending as u64);
        self.obs.flushes.incr();
        let parallel = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1;
        if parallel {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(self.workers.len());
                for (worker, queue) in self.workers.iter_mut().zip(&self.queues) {
                    handles.push(scope.spawn(move || worker.run(&queue.bytes)));
                }
                // Join in spawn order (the run_cells pattern): panics
                // surface deterministically and nothing depends on
                // completion order.
                for handle in handles {
                    if let Err(panic) = handle.join() {
                        std::panic::resume_unwind(panic);
                    }
                }
            });
        } else {
            for (worker, queue) in self.workers.iter_mut().zip(&self.queues) {
                worker.run(&queue.bytes);
            }
        }
        // Merge: replay each sub-span's LLC events into the shared
        // classifier in program order.
        let mut event_pos = vec![0usize; self.workers.len()];
        let mut span_pos = vec![0usize; self.workers.len()];
        for &owner in &self.span_owners {
            let owner = owner as usize;
            let worker = &self.workers[owner];
            let n = worker.span_events[span_pos[owner]] as usize;
            span_pos[owner] += 1;
            for event in &worker.events[event_pos[owner]..event_pos[owner] + n] {
                if event.hit {
                    self.classifier.note_hit(event.line);
                } else {
                    self.classifier.classify_miss(event.line);
                }
            }
            event_pos[owner] += n;
        }
        for (i, worker) in self.workers.iter_mut().enumerate() {
            debug_assert_eq!(event_pos[i], worker.events.len(), "unmerged LLC events");
            debug_assert_eq!(span_pos[i], worker.span_events.len(), "unmerged sub-spans");
            worker.events.clear();
            worker.span_events.clear();
        }
        for queue in &mut self.queues {
            queue.clear();
        }
        self.span_owners.clear();
        self.cur_shard = u32::MAX;
        self.pending = 0;
        self.rounds += 1;
    }

    /// Whether the sink is running the partitioned pipeline (vs inline
    /// single-shard simulation).
    fn is_partitioned(&self) -> bool {
        self.workers.len() > 1
    }

    /// Snapshots the current statistics, draining any queued records
    /// first. Bit-identical to the report an unsharded
    /// [`SimSink`](crate::SimSink) produces for the same trace.
    pub fn report(&mut self) -> SimReport {
        self.drain();
        let mut l1 = CacheStats::default();
        let mut l2 = CacheStats::default();
        let mut l3 = CacheStats::default();
        let has_l3 = self.workers[0].hierarchy.l3_stats().is_some();
        let mut memory_reads = 0;
        let mut memory_writebacks = 0;
        for worker in &self.workers {
            let h = &worker.hierarchy;
            l1.merge(h.l1_stats());
            l2.merge(h.l2_stats());
            if let Some(stats) = h.l3_stats() {
                l3.merge(stats);
            }
            memory_reads += h.memory_reads();
            memory_writebacks += h.memory_writebacks();
        }
        let classes = if self.is_partitioned() {
            self.classifier.counts()
        } else {
            self.workers[0].hierarchy.classes()
        };
        SimReport {
            instructions: self.instructions,
            reads: self.reads,
            writes: self.writes,
            l1,
            l2,
            l3: has_l3.then_some(l3),
            classes,
            tlb: self.workers[0].hierarchy.tlb_stats(),
            memory_reads,
            memory_writebacks,
            threads: self.threads,
        }
    }

    /// Drains, then consumes the sink and returns the final statistics.
    pub fn finish(mut self) -> SimReport {
        self.report()
    }

    /// Flushes probe observations: a `sharding` section (partition
    /// shape and queue traffic), each shard's hierarchy sections
    /// namespaced `shard<i>.*`, and the merged classifier verdicts.
    /// Call after [`report`](Self::report) so queued records are
    /// included. Empty-ish when probes are compiled out.
    pub fn run_profile(&self) -> probe::RunProfile {
        let mut profile = probe::RunProfile::new();
        if !self.is_partitioned() {
            // Inline mode: the single hierarchy's profile, plus the
            // partition shape for visibility.
            let mut section = probe::Section::new("sharding");
            section
                .counter("shards", 1)
                .counter("selector_shift", u64::from(self.plan.selector_shift()));
            profile.push(section);
            for section in self.workers[0].hierarchy.run_profile().into_sections() {
                profile.push(section);
            }
            return profile;
        }
        let mut section = probe::Section::new("sharding");
        section
            .counter("shards", u64::from(self.plan.shards()))
            .counter("selector_shift", u64::from(self.plan.selector_shift()))
            .counter("records", self.obs.records.get())
            .counter("run_collapsed", self.obs.run_collapsed.get())
            .counter("split_accesses", self.obs.split_accesses.get())
            .counter("flushes", self.obs.flushes.get())
            .counter("queue_bytes", self.obs.queue_bytes.get());
        profile.push(section);
        for (i, worker) in self.workers.iter().enumerate() {
            for section in worker.hierarchy.run_profile().into_sections() {
                // Per-shard classifier sections are all-zero under
                // deferred classification; the merged verdicts below
                // are the meaningful ones.
                if section.name() == "classifier" {
                    continue;
                }
                let name = format!("shard{i}.{}", section.name());
                profile.push(section.renamed(name));
            }
        }
        let classes = self.classifier.counts();
        let mut verdicts = probe::Section::new("classifier");
        verdicts
            .counter("compulsory", classes.compulsory)
            .counter("capacity", classes.capacity)
            .counter("conflict", classes.conflict);
        profile.push(verdicts);
        profile
    }
}

impl TraceSink for ShardedSimSink {
    #[inline]
    fn access(&mut self, access: Access) {
        self.access_batch(std::slice::from_ref(&access));
    }

    #[inline]
    fn access_batch(&mut self, accesses: &[Access]) {
        let mut writes = 0u64;
        for access in accesses {
            writes += u64::from(access.kind == AccessKind::Write);
        }
        self.writes += writes;
        self.reads += accesses.len() as u64 - writes;
        if !self.is_partitioned() {
            // Inline mode: no queues, identical to SimSink.
            for &access in accesses {
                self.workers[0].hierarchy.access(access);
            }
            return;
        }
        for &access in accesses {
            self.partition(access);
        }
        if self.pending >= FLUSH_RECORDS {
            self.drain();
        }
    }

    #[inline]
    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, HierarchyConfig, MachineModel, SimSink};

    fn stream(n: u64, seed: u64) -> Vec<Access> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = if i % 2 == 0 {
                    (i * 8) % (1 << 20)
                } else {
                    (state >> 24) % (1 << 21)
                };
                let size = [1u32, 4, 8, 8, 8, 256][(state % 6) as usize];
                if state.is_multiple_of(3) {
                    Access::write(Addr::new(addr), size)
                } else {
                    Access::read(Addr::new(addr), size)
                }
            })
            .collect()
    }

    fn reports_match(hierarchy: impl Fn() -> Hierarchy, shards: u32, accesses: &[Access]) {
        let mut plain = SimSink::new(hierarchy());
        let mut sharded = ShardedSimSink::new(hierarchy(), shards);
        for chunk in accesses.chunks(97) {
            plain.access_batch(chunk);
            sharded.access_batch(chunk);
        }
        plain.instructions(123);
        sharded.instructions(123);
        assert_eq!(plain.finish(), sharded.finish());
    }

    #[test]
    fn schedule_log_models_per_round_handoffs_through_the_merge() {
        use memtrace::{SchedEvent, TraceSink};
        let machine = MachineModel::r8000();
        let mut sink = ShardedSimSink::new(machine.hierarchy(), 4);
        let shards = sink.plan().shards();
        assert!(shards > 1, "r8000 geometry admits multiple shards");
        for access in stream(2000, 7) {
            sink.access(access);
        }
        let _ = sink.report(); // forces one drain round
        let log = sink.schedule_log();
        assert_eq!(log.actors, shards + 1);
        // Per round: shards hand-offs in, one begin/end pair per shard,
        // shards hand-offs out, one barrier.
        assert_eq!(log.len() as u32 % (4 * shards + 1), 0);
        let mut open = Vec::new();
        for &event in &log.events {
            match event {
                SchedEvent::Handoff { from, to } => {
                    assert!(from == 0 || to == 0, "every edge passes the coordinator");
                }
                SchedEvent::DrainBegin { actor, unit } => {
                    assert!(actor >= 1 && actor <= shards);
                    open.push(unit);
                }
                SchedEvent::DrainEnd { unit, .. } => {
                    assert_eq!(open.pop(), Some(unit));
                }
                _ => {}
            }
        }
        assert!(open.is_empty());
        assert_eq!(log.digest(), sink.schedule_log().digest(), "deterministic");
    }

    #[test]
    fn plan_respects_geometry_bounds() {
        let machine = MachineModel::r8000();
        let h = machine.hierarchy();
        // r8000: L1 way size 16 KiB (2^14), L2 line 128 B → selector
        // field [7, 14): up to 128 shards.
        let plan = ShardPlan::for_hierarchy(&h, 1024);
        assert_eq!(plan.selector_shift(), 7);
        assert_eq!(plan.shards(), 128);
        assert_eq!(ShardPlan::for_hierarchy(&h, 4).shards(), 4);
        // When the field has spare bits, the planner sits the selector
        // at the top of it: 4 shards need 2 bits → shift 12, not 7.
        assert_eq!(ShardPlan::for_hierarchy(&h, 4).selector_shift(), 12);
        assert_eq!(ShardPlan::for_hierarchy(&h, 5).shards(), 4, "round down");
        assert_eq!(ShardPlan::for_hierarchy(&h, 0).shards(), 1);
        assert!(ShardPlan::with_shift(&h, 4, 6).is_none(), "inside L2 line");
        assert!(ShardPlan::with_shift(&h, 4, 14).is_none(), "above L1 way");
        assert_eq!(ShardPlan::with_shift(&h, 4, 11).unwrap().shards(), 4);
    }

    #[test]
    fn degenerate_geometry_falls_back_to_one_shard() {
        // L1 way size equals the L2 line size: no valid selector bits.
        let h = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(64, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        ));
        let plan = ShardPlan::for_hierarchy(&h, 8);
        assert_eq!(plan.shards(), 1);
        let mut sink = ShardedSimSink::new(h, 8);
        sink.read(Addr::new(0), 8);
        assert_eq!(sink.report().reads, 1);
    }

    #[test]
    fn mmu_forces_inline_mode_and_stays_identical() {
        use crate::{Mmu, PageMapper, PagePolicy};
        let config = HierarchyConfig::new(
            CacheConfig::new(1 << 12, 32, 1).unwrap(),
            CacheConfig::new(1 << 16, 128, 4).unwrap(),
        );
        let make = || {
            Hierarchy::with_mmu(
                config,
                Mmu::new(PageMapper::new(PagePolicy::RandomSeeded(5), 4096), 8),
            )
        };
        assert_eq!(ShardPlan::for_hierarchy(&make(), 8).shards(), 1);
        reports_match(make, 8, &stream(40_000, 11));
    }

    #[test]
    fn sharded_equals_unsharded_across_shard_counts() {
        let machine = MachineModel::r8000()
            .scaled(1.0 / 16.0)
            .expect("valid scaled machine");
        let accesses = stream(120_000, 7);
        for shards in [1, 2, 4, 8] {
            reports_match(|| machine.hierarchy(), shards, &accesses);
        }
    }

    #[test]
    fn sharded_equals_unsharded_on_three_level_hierarchy() {
        let machine = MachineModel::modern()
            .scaled(1.0 / 64.0)
            .expect("valid scaled machine");
        reports_match(|| machine.hierarchy(), 4, &stream(120_000, 3));
    }

    #[test]
    fn sharded_slow_mode_is_identical_too() {
        let machine = MachineModel::r8000()
            .scaled(1.0 / 16.0)
            .expect("valid scaled machine");
        let accesses = stream(60_000, 5);
        let mut fast = ShardedSimSink::new(machine.hierarchy(), 4);
        let mut slow = ShardedSimSink::new(machine.hierarchy(), 4);
        slow.set_fast_path(false);
        for &access in &accesses {
            fast.access(access);
            slow.access(access);
        }
        assert_eq!(fast.finish(), slow.finish());
    }

    #[test]
    fn write_through_l1_disables_run_collapsing_but_matches() {
        let config = HierarchyConfig::new(
            CacheConfig::new(1 << 12, 32, 1)
                .unwrap()
                .with_write_policy(WritePolicy::WriteThroughNoAllocate),
            CacheConfig::new(1 << 16, 128, 4).unwrap(),
        );
        reports_match(|| Hierarchy::new(config), 4, &stream(60_000, 13));
    }

    #[test]
    fn mid_stream_reports_drain_and_stay_identical() {
        let machine = MachineModel::r8000()
            .scaled(1.0 / 16.0)
            .expect("valid scaled machine");
        let accesses = stream(50_000, 29);
        let mut plain = SimSink::new(machine.hierarchy());
        let mut sharded = ShardedSimSink::new(machine.hierarchy(), 4);
        for (i, chunk) in accesses.chunks(1000).enumerate() {
            plain.access_batch(chunk);
            sharded.access_batch(chunk);
            if i % 7 == 0 {
                assert_eq!(plain.report(), sharded.report(), "chunk {i}");
            }
        }
        assert_eq!(plain.finish(), sharded.finish());
    }

    #[test]
    fn threads_and_instructions_are_counted() {
        let mut sink = ShardedSimSink::new(MachineModel::r8000().hierarchy(), 4);
        sink.add_threads(7);
        sink.instructions(1000);
        sink.read(Addr::new(64), 8);
        let report = sink.report();
        assert_eq!(report.threads, 7);
        assert_eq!(report.instructions, 1000);
        assert_eq!(report.reads, 1);
    }

    #[test]
    fn run_profile_has_shard_sections_and_merged_classifier() {
        if !probe::enabled() {
            return;
        }
        let mut sink = ShardedSimSink::new(MachineModel::r8000().hierarchy(), 4);
        for access in stream(50_000, 17) {
            sink.access(access);
        }
        let report = sink.report();
        let json = sink.run_profile().to_json();
        assert!(json.contains("\"sharding\""), "{json}");
        assert!(json.contains("\"shard0.l1\""), "{json}");
        assert!(json.contains("\"shard3.l2\""), "{json}");
        assert!(json.contains("\"classifier\""), "{json}");
        // The merged verdicts must equal the reported ones.
        assert!(
            json.contains(&format!("\"compulsory\":{}", report.classes.compulsory)),
            "{json}"
        );
    }
}

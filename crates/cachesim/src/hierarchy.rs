//! The two-level cache hierarchy of the paper's machines.

use crate::paging::{PageMapper, Tlb, TlbStats};
use crate::{Cache, CacheConfig, CacheStats, MissClassCounts, MissClassifier};
use memtrace::{Access, AccessKind, Addr};

/// Virtual-memory simulation attached to a hierarchy: a page mapper
/// (virtual→physical) and a TLB.
///
/// When present, the L1 stays virtually indexed (as on the paper's
/// machines, where the small L1s are indexed below the page boundary)
/// while every L2 reference is made with the *physical* line address —
/// the effect the paper flags as a limitation of its own simulations:
/// "it works with virtual addresses whereas the L2 cache uses physical
/// addresses".
#[derive(Clone, Debug)]
pub struct Mmu {
    mapper: PageMapper,
    tlb: Tlb,
}

impl Mmu {
    /// Creates an MMU with the given mapping policy and TLB shape.
    pub fn new(mapper: PageMapper, tlb_entries: usize) -> Self {
        let page = mapper.page_size();
        Mmu {
            mapper,
            tlb: Tlb::new(tlb_entries, page),
        }
    }
}

/// One reference of the DRAM-facing level's stream, recorded instead of
/// classified when deferred classification is on (see
/// [`Hierarchy::set_deferred_classification`]). The sharded simulator
/// replays these into a single shared [`MissClassifier`] in program
/// order after its workers drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct LlcEvent {
    /// Line index at the DRAM-facing level.
    pub line: u64,
    /// Whether the reference hit.
    pub hit: bool,
}

/// Geometry of a two-level hierarchy: a (split) L1 data cache backed by
/// a unified L2.
///
/// Both paper machines have split first-level caches and a unified
/// second-level cache. Only the *data* side of L1 is simulated; the
/// instruction stream is accounted analytically (see the `memtrace`
/// crate docs and DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Optional third-level cache (absent on the paper's machines;
    /// present on any modern part).
    pub l3: Option<CacheConfig>,
}

impl HierarchyConfig {
    /// Creates a two-level hierarchy config (the paper's machines).
    ///
    /// # Panics
    ///
    /// Panics if the L2 line size is smaller than the L1 line size
    /// (fills could not be satisfied line-at-a-time).
    pub fn new(l1d: CacheConfig, l2: CacheConfig) -> Self {
        assert!(
            l2.line() >= l1d.line(),
            "L2 line ({}) must be >= L1 line ({})",
            l2.line(),
            l1d.line()
        );
        HierarchyConfig { l1d, l2, l3: None }
    }

    /// Creates a three-level hierarchy config (a modern machine).
    ///
    /// # Panics
    ///
    /// Panics if any level's line size is smaller than the level
    /// above it.
    pub fn new3(l1d: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        let mut config = HierarchyConfig::new(l1d, l2);
        assert!(
            l3.line() >= l2.line(),
            "L3 line ({}) must be >= L2 line ({})",
            l3.line(),
            l2.line()
        );
        config.l3 = Some(l3);
        config
    }
}

/// A simulated L1-data + unified-L2 hierarchy with 3C classification of
/// the L2 reference stream.
///
/// Semantics (matching DineroIII's copy-back / write-allocate default,
/// which the paper used):
///
/// * every byte access is split into L1-line touches;
/// * an L1 miss sends a demand fetch to the L2;
/// * a dirty L1 victim sends a write-back to the L2;
/// * every L2 reference — fetch or write-back — updates the classifier,
///   so `classes().total() == l2_stats().misses()` always holds;
/// * dirty L2 victims count as memory write-backs.
///
/// # Examples
///
/// ```
/// use cachesim::{CacheConfig, Hierarchy, HierarchyConfig};
/// use memtrace::{Access, Addr};
///
/// let mut h = Hierarchy::new(HierarchyConfig::new(
///     CacheConfig::new(1 << 14, 32, 1)?,
///     CacheConfig::new(1 << 21, 128, 4)?,
/// ));
/// h.access(Access::read(Addr::new(0x1000_0000), 8));
/// assert_eq!(h.l1_stats().misses(), 1);
/// assert_eq!(h.l2_stats().misses(), 1);
/// assert_eq!(h.classes().compulsory, 1);
/// # Ok::<(), cachesim::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    /// 3C classifier over the DRAM-facing (last) level's stream.
    classifier: MissClassifier,
    l1_line: u64,
    l1_shift: u32,
    l1_write_through: bool,
    l2_line_shift: u32,
    l3_line_shift: u32,
    mmu: Option<Mmu>,
    /// When `Some`, the DRAM-facing level's references are appended
    /// here instead of being fed to `classifier` (deferred
    /// classification). The LLC same-line short-circuit is disabled in
    /// this mode: its "`note_hit` would be a structural no-op" argument
    /// holds only against the *local* previous reference, and the
    /// sharded replay interleaves several hierarchies' streams.
    llc_log: Option<Vec<LlcEvent>>,
    memory_reads: u64,
    memory_writebacks: u64,
    /// Modelled service latency (ns) of each reference that left the
    /// L1 — a probe histogram, recorded only when penalties are set
    /// (see [`set_probe_penalties`](Hierarchy::set_probe_penalties)).
    miss_latency_ns: probe::Histogram,
    /// Modelled ns to service an L1 miss that hits below (0 = unset).
    probe_l1_miss_ns: u64,
    /// Additional modelled ns when the DRAM-facing level also misses.
    probe_llc_miss_ns: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy with virtual-address indexing at both
    /// levels (the paper's own simulation methodology).
    pub fn new(config: HierarchyConfig) -> Self {
        let last_level = config.l3.unwrap_or(config.l2);
        Hierarchy {
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            classifier: MissClassifier::new(&last_level),
            l1_line: config.l1d.line(),
            l1_shift: config.l1d.line().trailing_zeros(),
            l1_write_through: config.l1d.write_policy()
                == crate::WritePolicy::WriteThroughNoAllocate,
            l2_line_shift: config.l2.line().trailing_zeros(),
            l3_line_shift: last_level.line().trailing_zeros(),
            mmu: None,
            llc_log: None,
            memory_reads: 0,
            memory_writebacks: 0,
            miss_latency_ns: probe::Histogram::new(),
            probe_l1_miss_ns: 0,
            probe_llc_miss_ns: 0,
        }
    }

    /// Sets the modelled per-reference penalties the probe layer uses
    /// to build its miss-latency histogram: `l1_miss_ns` for a
    /// reference serviced below the L1, plus `llc_miss_ns` more when
    /// the DRAM-facing level misses too. [`MachineModel::hierarchy`]
    /// (see `machine.rs`) derives both from the paper's Table 1
    /// penalties. With both zero (the default) nothing is recorded.
    ///
    /// [`MachineModel::hierarchy`]: crate::MachineModel::hierarchy
    pub fn set_probe_penalties(&mut self, l1_miss_ns: u64, llc_miss_ns: u64) {
        self.probe_l1_miss_ns = l1_miss_ns;
        self.probe_llc_miss_ns = llc_miss_ns;
    }

    /// Records the modelled latency of one reference that left the L1.
    #[inline]
    fn record_latency(&self, llc_hit: bool) {
        if probe::enabled() && (self.probe_l1_miss_ns | self.probe_llc_miss_ns) != 0 {
            let ns = if llc_hit {
                self.probe_l1_miss_ns
            } else {
                self.probe_l1_miss_ns + self.probe_llc_miss_ns
            };
            self.miss_latency_ns.record(ns);
        }
    }

    /// Creates a hierarchy with virtual memory simulated: the TLB is
    /// consulted per access and the L2 is physically indexed through
    /// the MMU's page mapping.
    pub fn with_mmu(config: HierarchyConfig, mmu: Mmu) -> Self {
        let mut h = Hierarchy::new(config);
        h.mmu = Some(mmu);
        h
    }

    /// The configured geometry.
    pub fn config(&self) -> HierarchyConfig {
        HierarchyConfig {
            l1d: *self.l1d.config(),
            l2: *self.l2.config(),
            l3: self.l3.as_ref().map(|c| *c.config()),
        }
    }

    /// Enables or disables the fast lookup paths (same-line
    /// short-circuit here, MRU-first probing inside each level).
    /// Statistics are bit-identical either way; the slow path is kept
    /// as the exhaustive reference for differential tests and the
    /// `simbench` before/after comparison.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.l1d.set_fast_path(enabled);
        self.l2.set_fast_path(enabled);
        if let Some(l3) = &mut self.l3 {
            l3.set_fast_path(enabled);
        }
        self.classifier.set_fast_path(enabled);
        if let Some(mmu) = &mut self.mmu {
            mmu.tlb.set_fast_path(enabled);
        }
    }

    /// Whether the fast lookup paths are enabled.
    pub fn fast_path(&self) -> bool {
        self.l1d.fast_path()
    }

    /// Feeds one byte-granular access, splitting it across L1 lines.
    #[inline]
    pub fn access(&mut self, access: Access) {
        let is_write = access.kind == AccessKind::Write;
        let addr = access.addr.raw();
        // Trace-file replay feeds untrusted (addr, size) pairs: saturate
        // instead of wrapping so an access ending at the top of the
        // address space clamps its line span rather than spanning from
        // line 0.
        let last_byte = addr.saturating_add(u64::from(access.size.max(1)) - 1);
        if let Some(mmu) = &mut self.mmu {
            // One translation per page touched, not one per byte-access:
            // an access straddling a page boundary walks every page it
            // covers, and one contained in a single page walks just that
            // page.
            let shift = mmu.tlb.page_shift();
            let mut page = addr >> shift;
            let last_page = last_byte >> shift;
            loop {
                mmu.tlb.access(Addr::new(page << shift));
                if page == last_page {
                    break;
                }
                page += 1;
            }
        }
        let first_line = addr >> self.l1_shift;
        let last_line = last_byte >> self.l1_shift;
        // Same-line short-circuit: consecutive references to one L1
        // line (the overwhelmingly common case in loop traces) need no
        // set lookup, no L2 traffic and no write-back bookkeeping.
        if first_line == last_line && self.l1d.try_rehit(first_line, is_write) {
            return;
        }
        let mut line = first_line;
        loop {
            self.touch_l1_line(line, is_write);
            if line == last_line {
                break;
            }
            line += 1;
        }
    }

    /// Switches deferred classification on or off. While on, the
    /// DRAM-facing level's reference stream is recorded as
    /// [`LlcEvent`]s (see [`take_llc_events`](Self::take_llc_events))
    /// instead of being classified locally, and the LLC same-line
    /// short-circuit is disabled so the log is complete.
    pub(crate) fn set_deferred_classification(&mut self, on: bool) {
        if on {
            self.llc_log.get_or_insert_with(Vec::new);
        } else {
            self.llc_log = None;
        }
    }

    /// Number of deferred LLC events currently buffered.
    pub(crate) fn llc_event_count(&self) -> usize {
        self.llc_log.as_ref().map_or(0, Vec::len)
    }

    /// Drains the deferred LLC event log, in the order the references
    /// entered the DRAM-facing level.
    ///
    /// # Panics
    ///
    /// Panics if deferred classification is not enabled.
    pub(crate) fn drain_llc_events(&mut self, into: &mut Vec<LlcEvent>) {
        let log = self
            .llc_log
            .as_mut()
            .expect("deferred classification not enabled");
        into.append(log);
    }

    /// Replays one reference contained in a single L1 line. Statistics
    /// are identical to [`access`](Self::access) with any access whose
    /// bytes all fall in `l1_line`, minus the address arithmetic the
    /// sharded decoder has already done to know the line. Only valid
    /// without an MMU (no TLB traffic is recorded).
    #[inline]
    pub(crate) fn access_l1_line(&mut self, l1_line: u64, is_write: bool) {
        debug_assert!(self.mmu.is_none(), "single-line entry skips the TLB");
        if self.l1d.try_rehit(l1_line, is_write) {
            return;
        }
        self.touch_l1_line(l1_line, is_write);
    }

    /// Bulk same-line L1 rehit for run-length collapsed replay records:
    /// `reads` + `writes` references to `l1_line`, all guaranteed by
    /// the encoder to lie within that line. `false` means nothing was
    /// recorded and the caller must replay per-reference. Only
    /// meaningful without an MMU (no TLB traffic is recorded).
    #[inline]
    pub(crate) fn rehit_run(&mut self, l1_line: u64, reads: u64, writes: u64) -> bool {
        debug_assert!(self.mmu.is_none(), "rehit_run skips TLB accounting");
        self.l1d.rehit_many(l1_line, reads, writes)
    }

    /// Whether an MMU (TLB + physically-indexed L2) is attached.
    pub(crate) fn has_mmu(&self) -> bool {
        self.mmu.is_some()
    }

    /// Maps a virtual L1 line index to the L2 line index that backs it
    /// — through the page mapping when an MMU is attached.
    #[inline]
    fn l2_line_of(&self, l1_line: u64) -> u64 {
        let vaddr = l1_line * self.l1_line;
        match &self.mmu {
            Some(mmu) => mmu.mapper.translate(Addr::new(vaddr)).raw() >> self.l2_line_shift,
            None => vaddr >> self.l2_line_shift,
        }
    }

    #[inline]
    fn touch_l1_line(&mut self, l1_line: u64, is_write: bool) {
        let write_through = self.l1_write_through;
        let outcome = self.l1d.access_line(l1_line, is_write);
        if is_write && write_through {
            // Every write propagates immediately; a write miss does
            // not fetch (no write-allocate).
            let l2_line = self.l2_line_of(l1_line);
            self.reference_l2(l2_line, true);
        } else if !outcome.hit {
            // Demand fetch from L2 (write-allocate: fetch even on a
            // write miss; the L2 reference itself is a read).
            let l2_line = self.l2_line_of(l1_line);
            self.reference_l2(l2_line, false);
        }
        if let Some(victim) = outcome.writeback {
            // Dirty L1 victim written back to L2.
            let l2_line = self.l2_line_of(victim);
            self.reference_l2(l2_line, true);
        }
    }

    #[inline]
    fn reference_l2(&mut self, l2_line: u64, is_write: bool) {
        // Same-line short-circuit (fast path only): a rehit implies the
        // immediately-previous L2 reference was to this very line, so
        // the classifier already holds it at the MRU position of the
        // fully-associative model and in its seen-set — `note_hit`
        // would be a structural no-op. Nothing propagates downward on a
        // hit, so the short-circuit is complete. When the L2 is the
        // DRAM-facing level and classification is deferred, every
        // reference must produce a log event, so the short-circuit is
        // skipped (an L3 below makes the L2 stream unclassified and the
        // rehit always safe).
        if (self.l3.is_some() || self.llc_log.is_none()) && self.l2.try_rehit(l2_line, is_write) {
            self.record_latency(true);
            return;
        }
        let outcome = self.l2.access_line(l2_line, is_write);
        match &mut self.l3 {
            None => {
                // The L2 is the DRAM-facing level: classify its stream
                // (or log it for a deferred, merged classification).
                if let Some(log) = &mut self.llc_log {
                    log.push(LlcEvent {
                        line: l2_line,
                        hit: outcome.hit,
                    });
                    if !outcome.hit {
                        self.memory_reads += 1;
                    }
                } else if outcome.hit {
                    self.classifier.note_hit(l2_line);
                } else {
                    self.classifier.classify_miss(l2_line);
                    self.memory_reads += 1;
                }
                self.record_latency(outcome.hit);
                if outcome.writeback.is_some() {
                    self.memory_writebacks += 1;
                }
            }
            Some(_) => {
                let ratio = self.l3_line_shift - self.l2_line_shift;
                if outcome.hit {
                    self.record_latency(true);
                } else {
                    self.reference_l3(l2_line >> ratio, false);
                }
                if let Some(victim) = outcome.writeback {
                    self.reference_l3(victim >> ratio, true);
                }
            }
        }
    }

    #[inline]
    fn reference_l3(&mut self, l3_line: u64, is_write: bool) {
        let l3 = self.l3.as_mut().expect("only called with an L3");
        // Same-line short-circuit, with the same classifier argument as
        // in `reference_l2`: the previous L3 reference was this line.
        // Skipped under deferred classification for the same reason as
        // there (the L3 is always the DRAM-facing level).
        if self.llc_log.is_none() && l3.try_rehit(l3_line, is_write) {
            self.record_latency(true);
            return;
        }
        let outcome = l3.access_line(l3_line, is_write);
        if let Some(log) = &mut self.llc_log {
            log.push(LlcEvent {
                line: l3_line,
                hit: outcome.hit,
            });
            if !outcome.hit {
                self.memory_reads += 1;
            }
        } else if outcome.hit {
            self.classifier.note_hit(l3_line);
        } else {
            self.classifier.classify_miss(l3_line);
            self.memory_reads += 1;
        }
        self.record_latency(outcome.hit);
        if outcome.writeback.is_some() {
            self.memory_writebacks += 1;
        }
    }

    /// L1 data-cache statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics (reference stream = L1 misses + L1 write-backs).
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// L3 statistics, if a third level is configured.
    pub fn l3_stats(&self) -> Option<&CacheStats> {
        self.l3.as_ref().map(super::cache::Cache::stats)
    }

    /// 3C classification of the DRAM-facing (last) level's misses.
    pub fn classes(&self) -> MissClassCounts {
        self.classifier.counts()
    }

    /// Misses of the DRAM-facing level (L3 if present, else L2).
    pub fn llc_misses(&self) -> u64 {
        match &self.l3 {
            Some(l3) => l3.stats().misses(),
            None => self.l2.stats().misses(),
        }
    }

    /// TLB statistics (zero if no MMU is attached).
    pub fn tlb_stats(&self) -> TlbStats {
        self.mmu.as_ref().map(|m| m.tlb.stats()).unwrap_or_default()
    }

    /// Demand fetches that reached main memory.
    pub fn memory_reads(&self) -> u64 {
        self.memory_reads
    }

    /// Dirty L2 lines written back to main memory.
    pub fn memory_writebacks(&self) -> u64 {
        self.memory_writebacks
    }

    /// Flushes the hierarchy's probe observations into a profile:
    /// per-level hit/rehit/miss sections, the modelled miss-latency
    /// histogram, and the 3C classifier's verdict counts. Cumulative
    /// since construction; empty-ish when probes are compiled out
    /// (callers gate embedding on [`probe::enabled`]).
    pub fn run_profile(&self) -> probe::RunProfile {
        let mut profile = probe::RunProfile::new();
        profile.push(self.l1d.probe_section("l1"));
        profile.push(self.l2.probe_section("l2"));
        if let Some(l3) = &self.l3 {
            profile.push(l3.probe_section("l3"));
        }
        let mut latency = probe::Section::new("latency");
        latency.histogram("miss_service_ns", &self.miss_latency_ns);
        profile.push(latency);
        let classes = self.classifier.counts();
        let mut verdicts = probe::Section::new("classifier");
        verdicts
            .counter("compulsory", classes.compulsory)
            .counter("capacity", classes.capacity)
            .counter("conflict", classes.conflict);
        profile.push(verdicts);
        profile
    }

    /// Zeroes all statistics while keeping cache contents warm
    /// (excludes warm-up, as the paper's simulations exclude program
    /// initialization).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        if let Some(l3) = &mut self.l3 {
            l3.reset_stats();
        }
        self.classifier.reset_counts();
        if let Some(log) = &mut self.llc_log {
            log.clear();
        }
        if let Some(mmu) = &mut self.mmu {
            mmu.tlb.reset_stats();
        }
        self.memory_reads = 0;
        self.memory_writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;

    fn small_hierarchy() -> Hierarchy {
        // L1: 256 B direct-mapped, 32 B lines. L2: 2 KiB 2-way, 64 B lines.
        Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        ))
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = small_hierarchy();
        // Two accesses to the same L1 line: one L1 miss, one hit.
        h.access(Access::read(Addr::new(0), 8));
        h.access(Access::read(Addr::new(8), 8));
        assert_eq!(h.l1_stats().references(), 2);
        assert_eq!(h.l1_stats().misses(), 1);
        assert_eq!(h.l2_stats().references(), 1);
    }

    #[test]
    fn classes_always_partition_l2_misses() {
        let mut h = small_hierarchy();
        let mut state = 99u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 30) % 16384;
            let write = state.is_multiple_of(3);
            let access = if write {
                Access::write(Addr::new(addr), 8)
            } else {
                Access::read(Addr::new(addr), 8)
            };
            h.access(access);
        }
        assert_eq!(h.classes().total(), h.l2_stats().misses());
    }

    #[test]
    fn access_spanning_l1_lines_touches_both() {
        let mut h = small_hierarchy();
        // 16 bytes starting 8 before a 32-byte boundary.
        h.access(Access::read(Addr::new(24), 16));
        assert_eq!(h.l1_stats().references(), 2);
    }

    #[test]
    fn zero_size_access_touches_one_line() {
        let mut h = small_hierarchy();
        h.access(Access::read(Addr::new(0), 0));
        assert_eq!(h.l1_stats().references(), 1);
    }

    #[test]
    fn dirty_l1_victim_writes_back_to_l2() {
        // L1 has 8 sets; addresses 0 and 256 collide in L1 set 0.
        let mut h = small_hierarchy();
        h.access(Access::write(Addr::new(0), 8)); // L1 miss, dirty
        h.access(Access::read(Addr::new(256), 8)); // evicts dirty line 0
                                                   // L2 references: fetch(0), fetch(256), writeback(0).
        assert_eq!(h.l2_stats().references(), 3);
        assert_eq!(h.l2_stats().writes, 1);
        // The write-back hits in L2 (line 0 still resident).
        assert_eq!(h.l2_stats().misses(), 2);
    }

    #[test]
    fn working_set_within_l2_stops_missing_after_warmup() {
        let mut h = small_hierarchy();
        // 1 KiB working set (fits 2 KiB L2, overflows 256 B L1).
        for _round in 0..4 {
            for off in (0..1024).step_by(8) {
                h.access(Access::read(Addr::new(off), 8));
            }
        }
        // After the first pass, L2 never misses again.
        assert_eq!(h.l2_stats().misses(), 1024 / 64);
        assert_eq!(h.classes().compulsory, 1024 / 64);
        assert_eq!(h.classes().capacity, 0);
        // But the L1 keeps missing (working set 4x its size).
        assert!(h.l1_stats().misses() > 1024 / 32);
    }

    #[test]
    fn working_set_exceeding_l2_causes_capacity_misses() {
        let mut h = small_hierarchy();
        // 8 KiB working set cycled: 4x the 2 KiB L2.
        for _round in 0..3 {
            for off in (0..8192).step_by(8) {
                h.access(Access::read(Addr::new(off), 8));
            }
        }
        let classes = h.classes();
        assert_eq!(classes.compulsory, 8192 / 64);
        assert_eq!(classes.capacity, 2 * 8192 / 64, "every revisit misses");
        assert_eq!(classes.conflict, 0);
    }

    #[test]
    fn reset_stats_keeps_contents_warm() {
        let mut h = small_hierarchy();
        for off in (0..1024).step_by(8) {
            h.access(Access::read(Addr::new(off), 8));
        }
        h.reset_stats();
        assert_eq!(h.l1_stats().references(), 0);
        assert_eq!(h.classes().total(), 0);
        // Second pass: L2-resident, so zero L2 misses — and crucially
        // not re-counted as compulsory.
        for off in (0..1024).step_by(8) {
            h.access(Access::read(Addr::new(off), 8));
        }
        assert_eq!(h.l2_stats().misses(), 0);
    }

    #[test]
    fn mmu_identity_matches_no_mmu_on_l2() {
        use crate::paging::{PageMapper, PagePolicy};
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        );
        let mut plain = Hierarchy::new(config);
        let mut mapped = Hierarchy::with_mmu(
            config,
            Mmu::new(PageMapper::new(PagePolicy::Identity, 4096), 8),
        );
        let mut state = 7u64;
        let mut translations = 0u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 33) % 32768;
            let access = Access::read(Addr::new(addr), 8);
            plain.access(access);
            mapped.access(access);
            // One translation per 4 KiB page the 8-byte access touches.
            translations += ((addr + 7) >> 12) - (addr >> 12) + 1;
        }
        assert_eq!(plain.l2_stats(), mapped.l2_stats());
        assert_eq!(plain.tlb_stats().accesses, 0, "no MMU, no TLB traffic");
        assert_eq!(mapped.tlb_stats().accesses, translations);
        assert!(translations > 3000, "some accesses straddle pages");
    }

    #[test]
    fn random_page_mapping_changes_l2_conflicts() {
        use crate::paging::{PageMapper, PagePolicy};
        // A pathological virtual stride: cache-sized strides all alias
        // one set of a 512 KiB direct-mapped L2 (128 page colors at
        // 4 KiB pages).
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(512 << 10, 64, 1).unwrap(),
        );
        let run = |mmu: Option<Mmu>| {
            let mut h = match mmu {
                Some(m) => Hierarchy::with_mmu(config, m),
                None => Hierarchy::new(config),
            };
            for _round in 0..20 {
                for i in 0..16u64 {
                    h.access(Access::read(Addr::new(i * (512 << 10)), 8));
                }
            }
            h.classes().conflict
        };
        let aliased = run(None);
        let randomized = run(Some(Mmu::new(
            PageMapper::new(PagePolicy::RandomSeeded(3), 4096),
            64,
        )));
        // 16 lines cycling one set: heavy conflicts; random frames
        // scatter them (Bershad et al.'s dynamic page recoloring
        // argument, reference [8] of the paper).
        assert!(aliased > 200, "expected alias storm, got {aliased}");
        assert!(
            randomized < aliased / 2,
            "random mapping should break the alias storm: {randomized} vs {aliased}"
        );
    }

    #[test]
    fn tlb_counts_page_walks() {
        use crate::paging::{PageMapper, PagePolicy};
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        );
        let mut h = Hierarchy::with_mmu(
            config,
            Mmu::new(PageMapper::new(PagePolicy::Identity, 4096), 2),
        );
        // Walk 4 pages cyclically with a 2-entry TLB: all misses.
        for _round in 0..5 {
            for page in 0..4u64 {
                h.access(Access::read(Addr::new(page * 4096), 8));
            }
        }
        assert_eq!(h.tlb_stats().misses, 20);
    }

    #[test]
    fn write_through_l1_propagates_every_write() {
        use crate::WritePolicy;
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1)
                .unwrap()
                .with_write_policy(WritePolicy::WriteThroughNoAllocate),
            CacheConfig::new(2048, 64, 2).unwrap(),
        );
        let mut h = Hierarchy::new(config);
        // Ten writes to the same address: each one reaches the L2.
        for _ in 0..10 {
            h.access(Access::write(Addr::new(0), 8));
        }
        assert_eq!(h.l2_stats().writes, 10);
        // And none of them allocated in L1 (no read yet): all misses.
        assert_eq!(h.l1_stats().misses(), 10);
        // A write-back L1 sends only the eventual writeback.
        let mut wb = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        ));
        for _ in 0..10 {
            wb.access(Access::write(Addr::new(0), 8));
        }
        assert_eq!(wb.l2_stats().writes, 0, "dirty line still resident");
        assert_eq!(wb.l1_stats().misses(), 1);
    }

    #[test]
    fn three_level_hierarchy_classifies_the_last_level() {
        let config = HierarchyConfig::new3(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(1024, 64, 2).unwrap(),
            CacheConfig::new(8192, 64, 4).unwrap(),
        );
        let mut h = Hierarchy::new(config);
        // 4 KiB working set: overflows L1 and L2, fits the 8 KiB L3.
        for _round in 0..4 {
            for off in (0..4096).step_by(8) {
                h.access(Access::read(Addr::new(off), 8));
            }
        }
        let l3 = *h.l3_stats().expect("three levels");
        assert_eq!(l3.misses(), 4096 / 64, "L3 only cold-misses");
        assert_eq!(h.classes().compulsory, 4096 / 64);
        assert_eq!(h.classes().capacity, 0, "fits the L3");
        assert_eq!(h.llc_misses(), l3.misses());
        assert!(h.l2_stats().misses() > l3.misses(), "L2 keeps missing");
        assert_eq!(h.memory_reads(), l3.misses());
    }

    #[test]
    fn three_level_capacity_misses_when_l3_overflows() {
        let config = HierarchyConfig::new3(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(1024, 64, 2).unwrap(),
            CacheConfig::new(4096, 64, 4).unwrap(),
        );
        let mut h = Hierarchy::new(config);
        // 16 KiB cycled: 4x the L3.
        for _round in 0..3 {
            for off in (0..16384).step_by(8) {
                h.access(Access::read(Addr::new(off), 8));
            }
        }
        assert_eq!(h.classes().compulsory, 16384 / 64);
        assert_eq!(h.classes().capacity, 2 * 16384 / 64);
        assert_eq!(h.classes().total(), h.llc_misses());
    }

    #[test]
    fn access_near_u64_max_does_not_overflow() {
        // A corrupt trace record can carry any (addr, size): the span
        // arithmetic must saturate, not wrap around to line 0.
        let mut h = small_hierarchy();
        h.access(Access::read(Addr::new(u64::MAX), 8));
        h.access(Access::write(Addr::new(u64::MAX - 3), 4096));
        h.access(Access::read(Addr::new(u64::MAX - 31), u32::MAX));
        // The clamped spans each touch exactly one L1 line (the last).
        assert_eq!(h.l1_stats().references(), 3);
        assert_eq!(h.l1_stats().misses(), 1, "all three hit the top line");
    }

    #[test]
    fn page_straddling_access_walks_both_pages() {
        use crate::paging::{PageMapper, PagePolicy};
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        );
        let mut h = Hierarchy::with_mmu(
            config,
            Mmu::new(PageMapper::new(PagePolicy::Identity, 4096), 8),
        );
        // 16 bytes ending 8 into the second page: two translations.
        h.access(Access::read(Addr::new(4096 - 8), 16));
        assert_eq!(h.tlb_stats().accesses, 2);
        assert_eq!(h.tlb_stats().misses, 2);
        // Contained in one page: one translation.
        h.access(Access::read(Addr::new(100), 8));
        assert_eq!(h.tlb_stats().accesses, 3);
        // Spanning three pages: three translations (two already mapped).
        h.access(Access::read(Addr::new(4000), 2 * 4096));
        assert_eq!(h.tlb_stats().accesses, 6);
        assert_eq!(h.tlb_stats().misses, 3);
    }

    #[test]
    fn fast_and_slow_hierarchies_agree_on_everything() {
        let config = HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(2048, 64, 2).unwrap(),
        );
        let mut fast = Hierarchy::new(config);
        let mut slow = Hierarchy::new(config);
        slow.set_fast_path(false);
        assert!(fast.fast_path());
        assert!(!slow.fast_path());
        let mut state = 42u64;
        for i in 0..30_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Mix strided sweeps (rehit-heavy) with random references.
            let addr = if i % 2 == 0 {
                (i * 4) % 16384
            } else {
                (state >> 30) % 16384
            };
            let access = if state.is_multiple_of(3) {
                Access::write(Addr::new(addr), 8)
            } else {
                Access::read(Addr::new(addr), 8)
            };
            fast.access(access);
            slow.access(access);
        }
        assert_eq!(fast.l1_stats(), slow.l1_stats());
        assert_eq!(fast.l2_stats(), slow.l2_stats());
        assert_eq!(fast.classes(), slow.classes());
        assert_eq!(fast.memory_reads(), slow.memory_reads());
        assert_eq!(fast.memory_writebacks(), slow.memory_writebacks());
    }

    #[test]
    #[should_panic(expected = "L3 line")]
    fn l3_line_smaller_than_l2_line_is_rejected() {
        let _ = HierarchyConfig::new3(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(1024, 64, 2).unwrap(),
            CacheConfig::new(4096, 32, 4).unwrap(),
        );
    }

    #[test]
    #[should_panic(expected = "must be >=")]
    fn l2_line_smaller_than_l1_line_is_rejected() {
        let _ = HierarchyConfig::new(
            CacheConfig::new(256, 64, 1).unwrap(),
            CacheConfig::new(2048, 32, 2).unwrap(),
        );
    }
}

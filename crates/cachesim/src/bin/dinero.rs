//! `dinero` — replay a binary trace file (see
//! [`memtrace::TraceFileWriter`]) through a configurable two-level
//! hierarchy and print the paper-style report. The standalone-tool
//! equivalent of the modified DineroIII the paper used.
//!
//! ```text
//! dinero [--l1 SIZE:LINE:ASSOC] [--l2 SIZE:LINE:ASSOC]
//!        [--machine r8000|r10000] [--mmu identity|random|binhop]
//!        [--write-through-l1] TRACE_FILE
//! ```
//!
//! Sizes accept `K`/`M` suffixes, e.g. `--l2 2M:128:4`.

use cachesim::{
    CacheConfig, Hierarchy, HierarchyConfig, MachineModel, Mmu, PageMapper, PagePolicy, SimSink,
    WritePolicy,
};
use memtrace::TraceFileReader;
use std::fs::File;
use std::process::ExitCode;

fn parse_size(text: &str) -> Result<u64, String> {
    let (digits, multiplier) = match text.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&text[..text.len() - 1], 1024),
        Some(b'M') | Some(b'm') => (&text[..text.len() - 1], 1 << 20),
        _ => (text, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * multiplier)
        .map_err(|e| format!("bad size {text:?}: {e}"))
}

fn parse_cache(spec: &str) -> Result<CacheConfig, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("cache spec {spec:?} is not SIZE:LINE:ASSOC"));
    }
    let size = parse_size(parts[0])?;
    let line = parse_size(parts[1])?;
    let assoc: u32 = parts[2]
        .parse()
        .map_err(|e| format!("bad associativity {:?}: {e}", parts[2]))?;
    CacheConfig::new(size, line, assoc).map_err(|e| e.to_string())
}

struct Options {
    l1: CacheConfig,
    l2: CacheConfig,
    mmu: Option<PagePolicy>,
    write_through_l1: bool,
    trace: String,
    machine: MachineModel,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let machine = MachineModel::r8000();
    let mut options = Options {
        l1: machine.l1_config(),
        l2: machine.l2_config(),
        mmu: None,
        write_through_l1: false,
        trace: String::new(),
        machine,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--l1" => {
                options.l1 = parse_cache(it.next().ok_or("--l1 needs a value")?)?;
            }
            "--l2" => {
                options.l2 = parse_cache(it.next().ok_or("--l2 needs a value")?)?;
            }
            "--machine" => {
                options.machine = match it.next().ok_or("--machine needs a value")?.as_str() {
                    "r8000" => MachineModel::r8000(),
                    "r10000" => MachineModel::r10000(),
                    other => return Err(format!("unknown machine {other:?}")),
                };
                options.l1 = options.machine.l1_config();
                options.l2 = options.machine.l2_config();
            }
            "--mmu" => {
                options.mmu = Some(match it.next().ok_or("--mmu needs a value")?.as_str() {
                    "identity" => PagePolicy::Identity,
                    "random" => PagePolicy::RandomSeeded(0x5eed),
                    "binhop" => PagePolicy::BinHopping,
                    other => return Err(format!("unknown mmu policy {other:?}")),
                });
            }
            "--write-through-l1" => options.write_through_l1 = true,
            other if !other.starts_with("--") => options.trace = other.to_owned(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.trace.is_empty() {
        return Err("no trace file given".to_owned());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("dinero: {message}");
            eprintln!(
                "usage: dinero [--l1 S:L:A] [--l2 S:L:A] [--machine r8000|r10000] \
                 [--mmu identity|random|binhop] [--write-through-l1] TRACE"
            );
            return ExitCode::FAILURE;
        }
    };
    let l1 = if options.write_through_l1 {
        options
            .l1
            .with_write_policy(WritePolicy::WriteThroughNoAllocate)
    } else {
        options.l1
    };
    let config = HierarchyConfig::new(l1, options.l2);
    let hierarchy = match options.mmu {
        Some(policy) => Hierarchy::with_mmu(
            config,
            Mmu::new(PageMapper::new(policy, options.machine.page_size()), 64),
        ),
        None => Hierarchy::new(config),
    };

    let file = match File::open(&options.trace) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dinero: cannot open {}: {e}", options.trace);
            return ExitCode::FAILURE;
        }
    };
    let mut sim = SimSink::new(hierarchy);
    match TraceFileReader::new(file).replay(&mut sim) {
        Ok(events) => {
            let report = sim.finish();
            println!("# {} events from {}", events, options.trace);
            println!("# L1 {} | L2 {}", l1, options.l2);
            println!("{report}");
            println!(
                "modeled on {}: {}",
                options.machine.name(),
                report.time_on(&options.machine)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dinero: trace replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

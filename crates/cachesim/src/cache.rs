//! A single set-associative cache level.

use crate::{CacheConfig, WritePolicy};
use memtrace::Addr;

/// Hit/miss counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read references.
    pub reads: u64,
    /// Write references.
    pub writes: u64,
    /// Read references that missed.
    pub read_misses: u64,
    /// Write references that missed.
    pub write_misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total references.
    pub fn references(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.references() - self.misses()
    }

    /// Accumulates another level's counters into this one — the reduce
    /// step when per-shard statistics are summed into machine totals.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.writebacks += other.writebacks;
    }

    /// Miss ratio in percent (0 if no references).
    pub fn miss_rate_percent(&self) -> f64 {
        if self.references() == 0 {
            0.0
        } else {
            100.0 * self.misses() as f64 / self.references() as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// Probe observations for one cache level: which fast path served each
/// hit. Kept out of [`CacheStats`] because the differential suite
/// asserts fast-path and slow-path stats are bit-identical, and these
/// counters are *expected* to differ between the two modes (the slow
/// path never rehits by construction).
#[derive(Clone, Debug, Default)]
struct CacheObs {
    /// Hits served by the same-line short-circuit ([`Cache::try_rehit`]).
    rehits: probe::LocalCounter,
    /// Hits served by the MRU-first probe before the full set scan.
    mru_hits: probe::LocalCounter,
}

/// Outcome of one cache reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct LineOutcome {
    /// Whether the referenced line was resident.
    pub hit: bool,
    /// Line index of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// One set-associative, write-allocate, write-back cache level with true
/// LRU replacement — the configuration DineroIII's default ("copy-back,
/// write-allocate, LRU") used and the paper's machines implement.
///
/// The cache operates on *line indexes* (`address / line_size`); callers
/// split byte accesses into line touches (see
/// [`Hierarchy`](crate::Hierarchy)).
///
/// # Examples
///
/// ```
/// use cachesim::{Cache, CacheConfig};
/// use memtrace::Addr;
///
/// let mut cache = Cache::new(CacheConfig::new(1024, 32, 2)?);
/// cache.access_addr(Addr::new(0), false);
/// cache.access_addr(Addr::new(8), false);  // same 32-byte line: hit
/// assert_eq!(cache.stats().misses(), 1);
/// assert_eq!(cache.stats().hits(), 1);
/// # Ok::<(), cachesim::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Structure-of-arrays set metadata, one flat allocation per field,
    /// indexed by `set * assoc + way`. The hit scan touches only
    /// `lines`; `stamps` is read only when choosing a victim and
    /// `dirty` only on hits and evictions, so the common probe streams
    /// through one contiguous tag array instead of striding over
    /// per-line structs.
    lines: Vec<u64>,
    /// Global tick of last use per way, for LRU victim choice.
    stamps: Vec<u64>,
    /// Dirty flag per way.
    dirty: Vec<bool>,
    set_shift: u32,
    set_mask: u64,
    assoc: usize,
    tick: u64,
    stats: CacheStats,
    /// Per-set index of the most-recently-used way. Probed first on
    /// the fast path: loop-heavy reference streams hit the MRU way far
    /// more often than any other, so most hits skip the full set scan.
    mru: Vec<u32>,
    /// Line index touched by the previous access, if that access left
    /// it resident; `INVALID` otherwise. Enables the same-line
    /// short-circuit ([`try_rehit`](Cache::try_rehit)).
    last_line: u64,
    /// Index into `ways` of `last_line`'s slot (valid only while
    /// `last_line != INVALID`).
    last_way: u32,
    /// Cached `config.write_policy() == WriteThroughNoAllocate`.
    write_through: bool,
    /// When false, every access takes the original full-scan path; the
    /// differential suite and `simbench` use this as the bit-identical
    /// slow reference.
    fast_path: bool,
    obs: CacheObs,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets() as usize;
        let assoc = config.assoc() as usize;
        Cache {
            config,
            lines: vec![INVALID; sets * assoc],
            stamps: vec![0; sets * assoc],
            dirty: vec![false; sets * assoc],
            set_shift: config.line().trailing_zeros(),
            set_mask: config.sets() - 1,
            assoc,
            tick: 0,
            stats: CacheStats::default(),
            mru: vec![0; sets],
            last_line: INVALID,
            last_way: 0,
            write_through: config.write_policy() == WritePolicy::WriteThroughNoAllocate,
            fast_path: true,
            obs: CacheObs::default(),
        }
    }

    /// Enables or disables the fast lookup paths (MRU-first probing and
    /// the same-line short-circuit). Statistics are bit-identical
    /// either way; disabling exists so tests and benchmarks can compare
    /// against the exhaustive reference path.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Whether the fast lookup paths are enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line index of `addr` under this cache's line size.
    #[inline]
    pub fn line_of(&self, addr: Addr) -> u64 {
        addr.raw() >> self.set_shift
    }

    /// References the line containing `addr`; returns `true` on hit.
    ///
    /// Convenience wrapper over the line-granular access path for
    /// accesses known not to span lines.
    #[inline]
    pub fn access_addr(&mut self, addr: Addr, is_write: bool) -> bool {
        self.access_line(self.line_of(addr), is_write).hit
    }

    /// References line `line` (an address divided by the line size).
    ///
    /// Misses allocate the line (write-allocate); the evicted victim is
    /// the LRU way, and if it is dirty its line index is reported so the
    /// caller can propagate the write-back to the next level.
    #[inline]
    pub(crate) fn access_line(&mut self, line: u64, is_write: bool) -> LineOutcome {
        debug_assert_ne!(line, INVALID);
        let write_through = self.write_through;
        self.tick += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;

        // MRU-first probe: loop-heavy streams overwhelmingly re-hit the
        // way touched most recently, so checking it before the full scan
        // turns the common hit into a single compare. Identical stats:
        // a hit here is exactly the hit the scan below would have found.
        if self.fast_path {
            let mru_way = base + self.mru[set] as usize;
            if self.lines[mru_way] == line {
                self.stamps[mru_way] = self.tick;
                self.dirty[mru_way] |= is_write && !write_through;
                self.last_line = line;
                self.last_way = mru_way as u32;
                self.obs.mru_hits.incr();
                return LineOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Hit path: a pure tag scan over the contiguous `lines` slice.
        // Victim ranking is deferred to the miss path below, so hits
        // never touch the stamp array.
        let tags = &self.lines[base..base + self.assoc];
        for (i, &tag) in tags.iter().enumerate() {
            if tag == line {
                let way = base + i;
                self.stamps[way] = self.tick;
                // Write-through lines are never dirty: the write goes
                // down immediately (the caller propagates it).
                self.dirty[way] |= is_write && !write_through;
                self.mru[set] = i as u32;
                self.last_line = line;
                self.last_way = way as u32;
                return LineOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss.
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        if is_write && write_through {
            // No write-allocate: the line is not brought in, so it must
            // not be remembered as resident.
            self.last_line = INVALID;
            return LineOutcome {
                hit: false,
                writeback: None,
            };
        }
        // Choose the LRU (or an invalid) way as the victim.
        let mut victim = 0usize;
        let mut victim_tick = u64::MAX;
        for i in 0..self.assoc {
            let rank = if self.lines[base + i] == INVALID {
                0
            } else {
                self.stamps[base + i]
            };
            if rank < victim_tick {
                victim_tick = rank;
                victim = i;
            }
        }
        let way = base + victim;
        let writeback = if self.lines[way] != INVALID && self.dirty[way] {
            self.stats.writebacks += 1;
            Some(self.lines[way])
        } else {
            None
        };
        self.lines[way] = line;
        self.dirty[way] = is_write && !write_through;
        self.stamps[way] = self.tick;
        self.mru[set] = victim as u32;
        self.last_line = line;
        self.last_way = way as u32;
        LineOutcome {
            hit: false,
            writeback,
        }
    }

    /// Same-line short-circuit: if `line` is the line this cache touched
    /// on its immediately preceding access *and that access left it
    /// resident*, records the guaranteed hit (stats, LRU tick, dirty
    /// bit) without any set lookup and returns `true`. Returns `false`
    /// — having recorded nothing — when the caller must take
    /// [`access_line`].
    ///
    /// Correctness: between the access that set `last_line` and this
    /// call, no other reference entered this cache, so the line cannot
    /// have been evicted. Write-through writes are excluded even on a
    /// rehit because the caller must still propagate them downstream.
    #[inline]
    pub(crate) fn try_rehit(&mut self, line: u64, is_write: bool) -> bool {
        if line != self.last_line || !self.fast_path || (is_write && self.write_through) {
            return false;
        }
        self.tick += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let way = self.last_way as usize;
        debug_assert_eq!(self.lines[way], line);
        self.stamps[way] = self.tick;
        self.dirty[way] |= is_write;
        self.obs.rehits.incr();
        true
    }

    /// Bulk form of [`try_rehit`](Cache::try_rehit): records `reads`
    /// read hits and `writes` write hits to `line` in O(1), exactly as
    /// if `try_rehit` had been called once per reference. Used by the
    /// sharded replay loop, whose compact queues carry run-length
    /// collapsed same-line records.
    ///
    /// Equivalence: `n` consecutive rehits bump the tick `n` times and
    /// leave the way's stamp at the final tick; intermediate stamps are
    /// unobservable because no other reference enters the cache in
    /// between. Declined (returning `false`, having recorded nothing)
    /// under exactly the conditions `try_rehit` declines for any
    /// reference in the run — the caller then replays per-reference.
    #[inline]
    pub(crate) fn rehit_many(&mut self, line: u64, reads: u64, writes: u64) -> bool {
        if line != self.last_line || !self.fast_path || (writes > 0 && self.write_through) {
            return false;
        }
        let n = reads + writes;
        self.tick += n;
        self.stats.reads += reads;
        self.stats.writes += writes;
        let way = self.last_way as usize;
        debug_assert_eq!(self.lines[way], line);
        self.stamps[way] = self.tick;
        self.dirty[way] |= writes > 0;
        self.obs.rehits.add(n);
        true
    }

    /// Flushes this level's probe observations into a profile section:
    /// always-on hit/miss totals plus which fast path served the hits.
    /// Cumulative since construction; all-zero when the probe layer is
    /// compiled out.
    pub fn probe_section(&self, name: &str) -> probe::Section {
        let mut section = probe::Section::new(name);
        section
            .counter("hits", self.stats.hits())
            .counter("misses", self.stats.misses())
            .counter("rehits", self.obs.rehits.get())
            .counter("mru_hits", self.obs.mru_hits.get());
        section
    }

    /// Zeroes the statistics while keeping cache contents warm.
    ///
    /// Use this to exclude warm-up phases (the paper's simulations
    /// exclude program initialization).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and zeroes the statistics.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.tick = 0;
        self.stats = CacheStats::default();
        self.mru.fill(0);
        self.last_line = INVALID;
        self.last_way = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u64, line: u64, assoc: u32) -> Cache {
        Cache::new(CacheConfig::new(size, line, assoc).unwrap())
    }

    #[test]
    fn spatial_locality_within_a_line_hits() {
        let mut c = cache(1024, 32, 1);
        assert!(!c.access_addr(Addr::new(64), false));
        for off in 1..32 {
            assert!(c.access_addr(Addr::new(64 + off), false), "offset {off}");
        }
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().references(), 32);
    }

    #[test]
    fn direct_mapped_conflict() {
        // 1024 B direct-mapped, 32 B lines => 32 sets; addresses 0 and
        // 1024 map to the same set and alternate evictions.
        let mut c = cache(1024, 32, 1);
        for _ in 0..4 {
            assert!(!c.access_addr(Addr::new(0), false));
            assert!(!c.access_addr(Addr::new(1024), false));
        }
        assert_eq!(c.stats().misses(), 8);
    }

    #[test]
    fn two_way_absorbs_the_same_conflict() {
        let mut c = cache(1024, 32, 2);
        c.access_addr(Addr::new(0), false);
        c.access_addr(Addr::new(1024), false);
        for _ in 0..4 {
            assert!(c.access_addr(Addr::new(0), false));
            assert!(c.access_addr(Addr::new(1024), false));
        }
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn lru_replacement_order() {
        // One set (fully associative), 2 ways.
        let mut c = cache(64, 32, 2);
        c.access_addr(Addr::new(0), false); // line 0
        c.access_addr(Addr::new(32), false); // line 1
        c.access_addr(Addr::new(0), false); // line 0 now MRU
        c.access_addr(Addr::new(64), false); // evicts line 1 (LRU)
        assert!(c.access_addr(Addr::new(0), false), "line 0 should survive");
        assert!(!c.access_addr(Addr::new(32), false), "line 1 was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = cache(32, 32, 1); // one line total
        let first = c.access_line(0, true);
        assert_eq!(first.writeback, None);
        let second = c.access_line(1, false);
        assert_eq!(
            second.writeback,
            Some(0),
            "dirty line 0 must be written back"
        );
        let third = c.access_line(2, false);
        assert_eq!(third.writeback, None, "clean line 1 evicts silently");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = cache(32, 32, 1);
        c.access_line(0, false); // clean fill
        c.access_line(0, true); // dirty it on a hit
        let out = c.access_line(1, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn stats_separate_reads_and_writes() {
        let mut c = cache(1024, 32, 1);
        c.access_addr(Addr::new(0), false);
        c.access_addr(Addr::new(0), true);
        c.access_addr(Addr::new(4096), true);
        let s = c.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.hits(), 1);
        assert!((s.miss_rate_percent() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = cache(1024, 32, 2);
        c.access_addr(Addr::new(0), true);
        c.reset();
        assert_eq!(c.stats().references(), 0);
        assert!(!c.access_addr(Addr::new(0), false), "reset must invalidate");
    }

    #[test]
    fn write_through_no_allocate_semantics() {
        use crate::WritePolicy;
        let config = CacheConfig::new(64, 32, 2)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(config);
        // Write miss: counted, but not allocated.
        let out = c.access_line(0, true);
        assert!(!out.hit);
        assert!(!c.access_line(0, false).hit, "write did not allocate");
        // Now line 0 is resident (read-allocated); a write hit must not
        // dirty it.
        c.access_line(0, true);
        let evict = c.access_line(2, false); // same set as 0
        let evict2 = c.access_line(4, false); // evicts one of them
        assert_eq!(evict.writeback, None);
        assert_eq!(evict2.writeback, None, "write-through lines are clean");
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn empty_stats_miss_rate_is_zero() {
        assert_eq!(CacheStats::default().miss_rate_percent(), 0.0);
    }

    #[test]
    fn try_rehit_only_fires_on_resident_last_line() {
        let mut c = cache(1024, 32, 2);
        assert!(!c.try_rehit(0, false), "empty cache has no last line");
        c.access_line(0, false); // miss, allocates
        assert!(c.try_rehit(0, false), "line 0 just touched");
        assert!(c.try_rehit(0, true), "write rehit allowed (write-back)");
        assert!(!c.try_rehit(1, false), "different line");
        assert_eq!(c.stats().references(), 3);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn try_rehit_respects_fast_path_knob() {
        let mut c = cache(1024, 32, 2);
        c.access_line(0, false);
        c.set_fast_path(false);
        assert!(!c.try_rehit(0, false));
        c.set_fast_path(true);
        assert!(c.try_rehit(0, false));
    }

    #[test]
    fn try_rehit_refuses_write_through_writes() {
        let config = CacheConfig::new(64, 32, 2)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(config);
        c.access_line(0, false); // read-allocate line 0
        assert!(
            !c.try_rehit(0, true),
            "WT writes must reach the next level even on a hit"
        );
        assert!(c.try_rehit(0, false), "reads may short-circuit");
        // A WT write miss leaves nothing resident to rehit.
        c.access_line(5, true);
        assert!(!c.try_rehit(5, false));
    }

    #[test]
    fn fast_and_slow_paths_produce_identical_stats() {
        // Drive two identical caches with the same pseudo-random stream:
        // the fast one through the rehit-then-lookup path the hierarchy
        // uses, the slow one through the exhaustive scan only. Every
        // counter must agree, for both write policies.
        for policy in [
            WritePolicy::WriteBackAllocate,
            WritePolicy::WriteThroughNoAllocate,
        ] {
            let config = CacheConfig::new(1024, 32, 2)
                .unwrap()
                .with_write_policy(policy);
            let mut fast = Cache::new(config);
            let mut slow = Cache::new(config);
            slow.set_fast_path(false);
            let mut x = 0x2545f4914f6cdd1du64;
            let mut outcomes_checked = 0u64;
            for i in 0..20_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Bias toward reuse (and exact repeats) so the MRU probe
                // and the same-line rehit actually fire.
                let line = match i % 4 {
                    0 => (x % 8) * 4,
                    1 => x % 4, // tiny range: frequent exact repeats
                    _ => x % 256,
                };
                let is_write = x.is_multiple_of(5);
                if !fast.try_rehit(line, is_write) {
                    let f = fast.access_line(line, is_write);
                    let s = slow.access_line(line, is_write);
                    assert_eq!(f, s, "outcome diverged at reference {i}");
                    outcomes_checked += 1;
                    continue;
                }
                let s = slow.access_line(line, is_write);
                assert!(s.hit, "rehit accepted a line the slow path missed");
            }
            assert_eq!(fast.stats(), slow.stats(), "policy {policy:?}");
            assert!(outcomes_checked > 0);
        }
    }
}

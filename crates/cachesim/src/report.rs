//! Aggregated simulation results in the paper's table format.

use crate::{CacheStats, MachineModel, MissClassCounts, TimeBreakdown, TlbStats};
use std::fmt;

/// Everything the paper's cache-simulation tables (3, 5, 7, 9) report
/// for one program version, plus enough to drive the timing model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Instructions accounted analytically (the paper's "I fetches").
    pub instructions: u64,
    /// Data reads observed.
    pub reads: u64,
    /// Data writes observed.
    pub writes: u64,
    /// L1 data-cache statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// L3 statistics, when a third level was simulated.
    pub l3: Option<CacheStats>,
    /// 3C classification of L2 misses.
    pub classes: MissClassCounts,
    /// TLB statistics (zero when no MMU is simulated).
    pub tlb: TlbStats,
    /// Demand fetches that reached memory.
    pub memory_reads: u64,
    /// Dirty L2 lines written back to memory.
    pub memory_writebacks: u64,
    /// Threads forked+run during the measured region (0 for unthreaded
    /// versions); drives the thread-overhead term of the timing model.
    pub threads: u64,
}

impl SimReport {
    /// Total data references.
    pub fn data_references(&self) -> u64 {
        self.reads + self.writes
    }

    /// L1 miss rate in percent of data references (the denominator the
    /// paper's tables use).
    pub fn l1_miss_rate_percent(&self) -> f64 {
        if self.data_references() == 0 {
            0.0
        } else {
            100.0 * self.l1.misses() as f64 / self.data_references() as f64
        }
    }

    /// L2 miss rate in percent of L1 misses (the paper's convention:
    /// each level's rate is relative to the references it sees).
    pub fn l2_miss_rate_percent(&self) -> f64 {
        self.l2.miss_rate_percent()
    }

    /// Misses of the DRAM-facing level: the L3 when present, else the
    /// L2 — what the timing model charges the memory penalty for.
    pub fn llc_misses(&self) -> u64 {
        match &self.l3 {
            Some(l3) => l3.misses(),
            None => self.l2.misses(),
        }
    }

    /// Models execution time on `machine` using the paper's crude model,
    /// charging per-thread overhead at the machine's Table 1 value.
    pub fn time_on(&self, machine: &MachineModel) -> TimeBreakdown {
        let timing = machine.timing();
        let mut breakdown = timing.estimate_with_threads(
            self.instructions,
            self.l1.misses(),
            self.llc_misses(),
            self.threads,
            machine.thread_overhead_ns(),
        );
        breakdown.tlb_seconds =
            timing.tlb_seconds(self.tlb.misses, machine.tlb_miss_penalty_cycles());
        breakdown
    }
}

impl fmt::Display for SimReport {
    /// Renders the rows of the paper's per-version simulation columns
    /// ("memory references and cache misses in thousands").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = |v: u64| (v as f64 / 1000.0).round() as u64;
        writeln!(f, "I fetches      {:>14}k", k(self.instructions))?;
        writeln!(f, "D references   {:>14}k", k(self.data_references()))?;
        writeln!(f, "L1 misses      {:>14}k", k(self.l1.misses()))?;
        writeln!(f, "  rate         {:>14.1}%", self.l1_miss_rate_percent())?;
        writeln!(f, "L2 misses      {:>14}k", k(self.l2.misses()))?;
        writeln!(f, "  rate         {:>14.1}%", self.l2_miss_rate_percent())?;
        writeln!(f, "L2 compulsory  {:>14}k", k(self.classes.compulsory))?;
        writeln!(f, "L2 capacity    {:>14}k", k(self.classes.capacity))?;
        write!(f, "L2 conflict    {:>14}k", k(self.classes.conflict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            instructions: 1_000_000,
            reads: 300_000,
            writes: 100_000,
            l1: CacheStats {
                reads: 300_000,
                writes: 100_000,
                read_misses: 30_000,
                write_misses: 10_000,
                writebacks: 5_000,
            },
            l2: CacheStats {
                reads: 40_000,
                writes: 5_000,
                read_misses: 4_000,
                write_misses: 500,
                writebacks: 100,
            },
            classes: MissClassCounts {
                compulsory: 500,
                capacity: 3_800,
                conflict: 200,
            },
            l3: None,
            tlb: TlbStats::default(),
            memory_reads: 4_500,
            memory_writebacks: 100,
            threads: 0,
        }
    }

    #[test]
    fn rates_match_paper_conventions() {
        let r = report();
        assert!((r.l1_miss_rate_percent() - 10.0).abs() < 1e-9);
        assert!((r.l2_miss_rate_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_class_rows() {
        let s = report().to_string();
        assert!(s.contains("L2 compulsory"), "{s}");
        assert!(s.contains("L2 capacity"), "{s}");
        assert!(s.contains("L2 conflict"), "{s}");
        assert!(s.contains("10.0%"), "{s}");
    }

    #[test]
    fn time_on_charges_all_components() {
        let machine = MachineModel::r8000();
        let mut r = report();
        let base = r.time_on(&machine).total();
        r.threads = 1_000_000;
        let with_threads = r.time_on(&machine).total();
        // 1M threads at 1.6 µs each = 1.6 s extra.
        assert!((with_threads - base - 1.6).abs() < 1e-6);
    }

    #[test]
    fn empty_report_has_zero_rates() {
        let r = SimReport::default();
        assert_eq!(r.l1_miss_rate_percent(), 0.0);
        assert_eq!(r.l2_miss_rate_percent(), 0.0);
        assert_eq!(r.time_on(&MachineModel::r8000()).total(), 0.0);
    }
}

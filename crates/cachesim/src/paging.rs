//! Virtual memory effects: virtual→physical page mapping and a TLB.
//!
//! The paper lists both among its limitations (§6): "the simulation
//! works with virtual addresses whereas the L2 cache uses physical
//! addresses" — citing Kessler & Hill's page-placement work [27] and
//! Bershad et al.'s dynamic conflict-avoidance [8] — and its crude
//! model ignores TLB misses entirely (one reason the SOR baseline runs
//! slower than the model predicts: column sweeps of a 32 MB array touch
//! thousands of pages). These extensions let the harness quantify both
//! effects.

use crate::lru::LruSet;
use memtrace::Addr;

/// How virtual pages map to physical page frames (which determines the
/// set index bits of a physically-indexed L2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PagePolicy {
    /// Physical = virtual: the most locality-friendly mapping (page
    /// coloring achieves approximately this).
    Identity,
    /// Pseudo-random frame per page (deterministic in the seed): what a
    /// first-touch allocator with a long-running system looks like.
    /// Destroys the contiguity of large arrays above the page size.
    RandomSeeded(u64),
    /// Bin-hopping-style mapping: consecutive virtual pages get frames
    /// whose cache colors cycle, avoiding same-color pileups.
    BinHopping,
}

/// A virtual→physical translator with a fixed page size.
///
/// # Examples
///
/// ```
/// use cachesim::{PageMapper, PagePolicy};
/// use memtrace::Addr;
///
/// let mapper = PageMapper::new(PagePolicy::Identity, 4096);
/// assert_eq!(mapper.translate(Addr::new(0x12345)), Addr::new(0x12345));
///
/// let random = PageMapper::new(PagePolicy::RandomSeeded(1), 4096);
/// let p = random.translate(Addr::new(0x12345));
/// // Page offset is preserved; only the frame number changes.
/// assert_eq!(p.raw() & 0xfff, 0x345);
/// ```
#[derive(Clone, Debug)]
pub struct PageMapper {
    policy: PagePolicy,
    page_size: u64,
    offset_mask: u64,
}

impl PageMapper {
    /// Creates a mapper.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(policy: PagePolicy, page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageMapper {
            policy,
            page_size,
            offset_mask: page_size - 1,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// The configured policy.
    pub fn policy(&self) -> PagePolicy {
        self.policy
    }

    /// Translates a virtual address to its physical address. The
    /// mapping is a deterministic function (a synthetic page table):
    /// the same virtual page always maps to the same frame.
    #[inline]
    pub fn translate(&self, vaddr: Addr) -> Addr {
        let vpn = vaddr.raw() / self.page_size;
        // Synthetic frame numbers live in a 28-bit frame space (a 1 TB
        // physical address space at 4 KiB pages). The non-identity
        // policies are *bijections* on that space, so distinct virtual
        // pages never alias one frame.
        const FRAME_BITS: u32 = 28;
        const FRAME_MASK: u64 = (1 << FRAME_BITS) - 1;
        debug_assert!(vpn <= FRAME_MASK, "virtual page number exceeds frame space");
        let frame = match self.policy {
            PagePolicy::Identity => vpn,
            PagePolicy::RandomSeeded(seed) => {
                // Bijective mix: xor, odd multiply (invertible mod 2^28),
                // xor-shift (invertible), odd multiply.
                let mut x = (vpn ^ (seed & FRAME_MASK)) & FRAME_MASK;
                x = x.wrapping_mul(0x9E3_779B | 1) & FRAME_MASK;
                x ^= x >> 14;
                x = x.wrapping_mul(0xBF5_8477 | 1) & FRAME_MASK;
                x
            }
            PagePolicy::BinHopping => vpn.wrapping_mul(0x9E37_79B9 | 1) & FRAME_MASK,
        };
        Addr::new((frame * self.page_size) | (vaddr.raw() & self.offset_mask))
    }
}

/// Statistics of a [`Tlb`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed the TLB.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio in percent.
    pub fn miss_rate_percent(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative LRU translation lookaside buffer.
///
/// The R8000 and R10000 both had fully-associative 64-ish entry TLBs;
/// a miss costs a software or hardware table walk the paper's crude
/// model omits.
///
/// # Examples
///
/// ```
/// use cachesim::Tlb;
/// use memtrace::Addr;
///
/// let mut tlb = Tlb::new(64, 4096);
/// tlb.access(Addr::new(0));
/// tlb.access(Addr::new(64));      // same page: hit
/// tlb.access(Addr::new(8192));    // new page: miss
/// assert_eq!(tlb.stats().misses, 2);
/// assert_eq!(tlb.stats().accesses, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: LruSet,
    page_shift: u32,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` fully-associative entries over
    /// `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_size` is not a power of
    /// two.
    pub fn new(entries: usize, page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: LruSet::new(entries),
            page_shift: page_size.trailing_zeros(),
            stats: TlbStats::default(),
        }
    }

    /// Translates (i.e. touches) the page of `vaddr`; returns `true`
    /// on a TLB hit.
    #[inline]
    pub fn access(&mut self, vaddr: Addr) -> bool {
        self.stats.accesses += 1;
        let hit = self.entries.touch(vaddr.raw() >> self.page_shift);
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// Log2 of the page size (for computing page numbers of a span).
    pub fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// Switches the entry set's fast lookup path on or off (see
    /// [`Hierarchy::set_fast_path`](crate::Hierarchy::set_fast_path)).
    /// Hit/miss behaviour is identical in both modes.
    pub fn set_fast_path(&mut self, fast: bool) {
        self.entries.set_fast(fast);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Zeroes the statistics, keeping the entries warm.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_is_identity() {
        let m = PageMapper::new(PagePolicy::Identity, 4096);
        for addr in [0u64, 4095, 4096, 123_456_789] {
            assert_eq!(m.translate(Addr::new(addr)), Addr::new(addr));
        }
    }

    #[test]
    fn mappings_preserve_page_offsets() {
        for policy in [
            PagePolicy::RandomSeeded(42),
            PagePolicy::BinHopping,
            PagePolicy::Identity,
        ] {
            let m = PageMapper::new(policy, 4096);
            for addr in [1u64, 4095, 8191, 0x1234_5678] {
                let p = m.translate(Addr::new(addr));
                assert_eq!(p.raw() & 4095, addr & 4095, "{policy:?} {addr:#x}");
            }
        }
    }

    #[test]
    fn mapping_is_a_stable_function() {
        let m = PageMapper::new(PagePolicy::RandomSeeded(7), 4096);
        let a = m.translate(Addr::new(0x10_0000));
        let b = m.translate(Addr::new(0x10_0008));
        assert_eq!(a + 8, b, "same page must map to the same frame");
        assert_eq!(m.translate(Addr::new(0x10_0000)), a);
    }

    #[test]
    fn random_seeds_differ() {
        let m1 = PageMapper::new(PagePolicy::RandomSeeded(1), 4096);
        let m2 = PageMapper::new(PagePolicy::RandomSeeded(2), 4096);
        let v = Addr::new(0x20_0000);
        assert_ne!(m1.translate(v), m2.translate(v));
    }

    #[test]
    fn random_mapping_scatters_consecutive_pages() {
        let m = PageMapper::new(PagePolicy::RandomSeeded(3), 4096);
        let p0 = m.translate(Addr::new(0));
        let p1 = m.translate(Addr::new(4096));
        assert_ne!(
            p1.raw(),
            p0.raw() + 4096,
            "contiguity must be destroyed (w.h.p.)"
        );
    }

    #[test]
    fn tlb_within_reach_hits_after_warmup() {
        let mut tlb = Tlb::new(4, 4096);
        for _ in 0..3 {
            for page in 0..4u64 {
                tlb.access(Addr::new(page * 4096));
            }
        }
        assert_eq!(tlb.stats().misses, 4, "only cold misses");
        assert_eq!(tlb.stats().accesses, 12);
    }

    #[test]
    fn tlb_thrashes_beyond_reach() {
        let mut tlb = Tlb::new(4, 4096);
        for _round in 0..3 {
            for page in 0..8u64 {
                tlb.access(Addr::new(page * 4096));
            }
        }
        assert_eq!(tlb.stats().misses, 24, "LRU cycling misses every time");
        assert!((tlb.stats().miss_rate_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tlb_reset_keeps_entries_warm() {
        let mut tlb = Tlb::new(4, 4096);
        tlb.access(Addr::new(0));
        tlb.reset_stats();
        assert!(tlb.access(Addr::new(8)), "same page still mapped");
        assert_eq!(tlb.stats().misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let _ = Tlb::new(4, 1000);
    }
}

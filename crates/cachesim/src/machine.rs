//! Models of the paper's two evaluation machines.

use crate::paging::{PageMapper, PagePolicy};
use crate::topology::{MachineTopology, TopologyLevel};
use crate::{CacheConfig, CacheConfigError, Hierarchy, HierarchyConfig, Mmu, TimingModel};
use std::fmt;

/// A machine model: cache geometry plus the paper's crude timing
/// parameters.
///
/// The paper evaluates on an SGI Power Indigo2 (MIPS R8000) and an SGI
/// Indigo2 IMPACT (MIPS R10000) and analyses its results with a crude
/// model — one instruction per cycle, a 7-cycle L1-miss penalty, and a
/// measured L2-miss penalty (Table 1: 1.06 µs on the R8000, 0.85 µs on
/// the R10000). This type packages the same parameters.
///
/// # Examples
///
/// ```
/// use cachesim::MachineModel;
///
/// let m = MachineModel::r8000();
/// assert_eq!(m.l2_config().size(), 2 << 20);
/// // Scale the caches down 16x for a scaled-problem experiment:
/// let small = m.scaled(1.0 / 16.0)?;
/// assert_eq!(small.l2_config().size(), 128 << 10);
/// # Ok::<(), cachesim::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MachineModel {
    name: String,
    clock_hz: f64,
    instructions_per_cycle: f64,
    l1_miss_penalty_cycles: f64,
    l2_miss_penalty_ns: f64,
    hierarchy: HierarchyConfig,
    /// Explicit locality topology; `None` derives one from `hierarchy`.
    topology: Option<MachineTopology>,
    /// Per-thread fork+run overhead (paper Table 1), in nanoseconds.
    thread_overhead_ns: f64,
    /// Fully-associative TLB entries (both MIPS parts: 64 dual entries).
    tlb_entries: usize,
    /// Cycles per TLB miss (software-refilled on MIPS).
    tlb_miss_penalty_cycles: f64,
    /// Virtual memory page size.
    page_size: u64,
}

impl MachineModel {
    /// SGI Power Indigo2: 75 MHz MIPS R8000.
    ///
    /// 16 KB direct-mapped L1 data cache with 32-byte lines; unified
    /// 2 MB 4-way L2 with 128-byte lines; L1-miss penalty 7 cycles
    /// (paper §4.2, citing the R8000 design paper); L2-miss penalty
    /// 1.06 µs (Table 1). Thread overhead 1.60 µs (Table 1).
    pub fn r8000() -> Self {
        MachineModel {
            name: "R8000".to_owned(),
            clock_hz: 75e6,
            instructions_per_cycle: 1.0,
            l1_miss_penalty_cycles: 7.0,
            l2_miss_penalty_ns: 1060.0,
            hierarchy: HierarchyConfig::new(
                CacheConfig::new(16 << 10, 32, 1).expect("static config"),
                CacheConfig::new(2 << 20, 128, 4).expect("static config"),
            ),
            topology: None,
            thread_overhead_ns: 1600.0,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// SGI Indigo2 IMPACT: 195 MHz MIPS R10000.
    ///
    /// 32 KB 2-way L1 data cache with 32-byte lines; unified 1 MB 2-way
    /// L2 with 128-byte lines; L2-miss penalty 0.85 µs (Table 1).
    /// The paper does not state an R10000 L1-miss penalty; we use 8
    /// cycles (the R10000 user's-manual L2 load-to-use latency), which
    /// only affects the crude timing model, not any cache statistic.
    /// Thread overhead 1.09 µs (Table 1).
    pub fn r10000() -> Self {
        MachineModel {
            name: "R10000".to_owned(),
            clock_hz: 195e6,
            instructions_per_cycle: 1.0,
            l1_miss_penalty_cycles: 8.0,
            l2_miss_penalty_ns: 850.0,
            hierarchy: HierarchyConfig::new(
                CacheConfig::new(32 << 10, 32, 2).expect("static config"),
                CacheConfig::new(1 << 20, 128, 2).expect("static config"),
            ),
            topology: None,
            thread_overhead_ns: 1090.0,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// A plausible 2020s desktop core, for "does the technique still
    /// matter" studies: 4 GHz, 4-wide, 32 KB/8-way L1D, 512 KB/8-way
    /// private L2, 32 MB/16-way shared L3 (64-byte lines throughout),
    /// ~12-cycle L1-miss penalty and ~80 ns DRAM penalty. Thread
    /// overhead uses this crate's measured Rust fork+run cost (~30 ns,
    /// Table 1 on a modern host).
    pub fn modern() -> Self {
        MachineModel {
            name: "Modern".to_owned(),
            clock_hz: 4e9,
            instructions_per_cycle: 4.0,
            l1_miss_penalty_cycles: 12.0,
            l2_miss_penalty_ns: 80.0,
            hierarchy: HierarchyConfig::new3(
                CacheConfig::new(32 << 10, 64, 8).expect("static config"),
                CacheConfig::new(512 << 10, 64, 8).expect("static config"),
                CacheConfig::new(32 << 20, 64, 16).expect("static config"),
            ),
            topology: None,
            thread_overhead_ns: 30.0,
            tlb_entries: 1536,
            tlb_miss_penalty_cycles: 20.0,
            page_size: 4096,
        }
    }

    /// A custom machine model.
    pub fn custom(
        name: impl Into<String>,
        clock_hz: f64,
        instructions_per_cycle: f64,
        l1_miss_penalty_cycles: f64,
        l2_miss_penalty_ns: f64,
        hierarchy: HierarchyConfig,
        thread_overhead_ns: f64,
    ) -> Self {
        MachineModel {
            name: name.into(),
            clock_hz,
            instructions_per_cycle,
            l1_miss_penalty_cycles,
            l2_miss_penalty_ns,
            hierarchy,
            topology: None,
            thread_overhead_ns,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// A synthetic 2-socket NUMA machine for topology-depth studies:
    /// per-core 32 KB L1D and 256 KB L2, an 8 MB L3 shared by four
    /// cores, and a 64 MB socket-local memory domain, two sockets —
    /// a four-level locality tree (L1 ⊂ L2 ⊂ L3 ⊂ socket). The
    /// simulated cache hierarchy models the three cache levels; the
    /// socket level exists only in the topology, where schedulers and
    /// lints see it.
    pub fn numa2() -> Self {
        let topology = MachineTopology::new(vec![
            TopologyLevel::new(32 << 10, 64, 1),
            TopologyLevel::new(256 << 10, 64, 1),
            TopologyLevel::new(8 << 20, 64, 4),
            TopologyLevel::new(64 << 20, 64, 2),
        ])
        .expect("static topology");
        MachineModel {
            name: "NUMA2".to_owned(),
            clock_hz: 2.5e9,
            instructions_per_cycle: 3.0,
            l1_miss_penalty_cycles: 12.0,
            l2_miss_penalty_ns: 90.0,
            hierarchy: HierarchyConfig::new3(
                CacheConfig::new(32 << 10, 64, 8).expect("static config"),
                CacheConfig::new(256 << 10, 64, 8).expect("static config"),
                CacheConfig::new(8 << 20, 64, 16).expect("static config"),
            ),
            topology: Some(topology),
            thread_overhead_ns: 30.0,
            tlb_entries: 1536,
            tlb_miss_penalty_cycles: 20.0,
            page_size: 4096,
        }
    }

    /// Attaches an explicit locality topology (already validated by
    /// [`MachineTopology::new`]), overriding the tree derived from the
    /// cache hierarchy.
    pub fn with_topology(mut self, topology: MachineTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The machine's locality topology — the single source of
    /// hierarchy truth for schedulers, bin geometry, and lints.
    ///
    /// Machines without an explicit topology derive one from their
    /// simulated cache hierarchy (two levels for the paper machines,
    /// three for [`modern`](Self::modern)), clamped so capacities come
    /// out strictly ordered even on scaled models whose L2 shrinks
    /// under the L1. A hierarchy too degenerate to clamp (capacity
    /// under line size) collapses to its coarsest level.
    pub fn topology(&self) -> MachineTopology {
        if let Some(topology) = &self.topology {
            return topology.clone();
        }
        let mut levels = vec![
            TopologyLevel::new(self.hierarchy.l1d.size(), self.hierarchy.l1d.line(), 1),
            TopologyLevel::new(self.hierarchy.l2.size(), self.hierarchy.l2.line(), 1),
        ];
        if let Some(l3) = self.hierarchy.l3 {
            levels.push(TopologyLevel::new(l3.size(), l3.line(), 1));
        }
        // Lines may shrink as scaled capacities cross; widen each
        // level's line to the running maximum so the derived tree
        // always validates on that axis.
        let mut widest = 0;
        for level in &mut levels {
            widest = widest.max(level.line());
            *level = TopologyLevel::new(level.capacity(), widest, level.fanout());
        }
        let coarsest = *levels.last().expect("at least one level");
        MachineTopology::clamped(levels).unwrap_or_else(|_| {
            MachineTopology::new(vec![coarsest]).expect("single cache level is a valid topology")
        })
    }

    /// Returns this machine with both cache capacities multiplied by
    /// `factor` (timing parameters unchanged).
    ///
    /// Scaled machines pair with scaled problem sizes to preserve the
    /// paper's data-set : cache ratios while keeping trace-driven
    /// simulation affordable; see EXPERIMENTS.md.
    ///
    /// # Errors
    ///
    /// Returns an error if scaling degenerates the locality topology —
    /// a level's capacity would fall below its line size even after
    /// clamping — rather than silently flattening the tree.
    pub fn scaled(&self, factor: f64) -> Result<MachineModel, CacheConfigError> {
        self.scaled_split(factor, factor)
    }

    /// Returns this machine with the L1 capacity scaled by `l1_factor`
    /// and the L2 capacity by `l2_factor`.
    ///
    /// Scaled-problem experiments shrink a 2-D problem's *side* by
    /// √factor while its *area* shrinks by factor; working sets that
    /// live in the L1 (a few matrix columns) scale with the side, while
    /// the L2-level working set (whole arrays) scales with the area. So
    /// the ratio-preserving choice is `l1_factor = √l2_factor`; see
    /// EXPERIMENTS.md.
    ///
    /// An explicit topology is scaled with the machine: the finest
    /// level by `l1_factor`, every coarser level by `l2_factor`,
    /// clamped so capacities stay strictly ordered.
    ///
    /// # Errors
    ///
    /// Returns an error if the scaled topology degenerates (a level's
    /// capacity falls below its line size after clamping).
    pub fn scaled_split(
        &self,
        l1_factor: f64,
        l2_factor: f64,
    ) -> Result<MachineModel, CacheConfigError> {
        let mut scaled = self.clone();
        scaled.name = format!("{}/{:.3}x", self.name, l2_factor);
        scaled.hierarchy = HierarchyConfig::new(
            self.hierarchy.l1d.scaled(l1_factor),
            self.hierarchy.l2.scaled(l2_factor),
        );
        scaled.hierarchy.l3 = self.hierarchy.l3.map(|l3| l3.scaled(l2_factor));
        scaled.topology = match &self.topology {
            Some(topology) => Some(topology.scaled_split(l1_factor, l2_factor)?),
            None => None,
        };
        // A derived topology must also survive the scaling; reject the
        // machine if it cannot, instead of handing out a model whose
        // topology() silently flattened.
        if scaled.topology.is_none() && scaled.topology().depth() < self.topology().depth() {
            return Err(CacheConfigError::new(format!(
                "scaling {} by ({l1_factor}, {l2_factor}) degenerates its locality topology",
                self.name
            )));
        }
        Ok(scaled)
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cache hierarchy geometry.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        self.hierarchy
    }

    /// L1 data-cache geometry.
    pub fn l1_config(&self) -> CacheConfig {
        self.hierarchy.l1d
    }

    /// L2 geometry.
    pub fn l2_config(&self) -> CacheConfig {
        self.hierarchy.l2
    }

    /// L1 data-cache capacity in bytes — the working-set budget a
    /// scheduler's finest bin level should target on this machine.
    pub fn l1_capacity(&self) -> u64 {
        self.hierarchy.l1d.size()
    }

    /// L2 capacity in bytes — the paper's bin-sizing budget ("the
    /// default dimension sizes of the block are set such that their
    /// sum are the same as the second-level cache size", §3.2).
    pub fn l2_capacity(&self) -> u64 {
        self.hierarchy.l2.size()
    }

    /// L1 data-cache line size in bytes.
    pub fn l1_line(&self) -> u64 {
        self.hierarchy.l1d.line()
    }

    /// L2 line size in bytes.
    pub fn l2_line(&self) -> u64 {
        self.hierarchy.l2.line()
    }

    /// Creates a fresh, empty simulated hierarchy for this machine,
    /// with virtual indexing throughout (the paper's own methodology).
    pub fn hierarchy(&self) -> Hierarchy {
        let mut h = Hierarchy::new(self.hierarchy);
        self.apply_probe_penalties(&mut h);
        h
    }

    /// Arms the hierarchy's probe miss-latency histogram with this
    /// machine's Table 1 penalties (L1-miss cycles at this clock, plus
    /// the L2-miss nanoseconds on a DRAM-reaching miss).
    fn apply_probe_penalties(&self, h: &mut Hierarchy) {
        let l1_ns = (self.l1_miss_penalty_cycles / self.clock_hz * 1e9).round() as u64;
        h.set_probe_penalties(l1_ns, self.l2_miss_penalty_ns.round() as u64);
    }

    /// Creates a hierarchy with virtual memory simulated: the machine's
    /// TLB in front, and a physically-indexed L2 through the given page
    /// mapping policy — the effect the paper flags as missing from its
    /// own simulations (§6).
    pub fn hierarchy_with_paging(&self, policy: PagePolicy) -> Hierarchy {
        let mut h = Hierarchy::with_mmu(
            self.hierarchy,
            Mmu::new(PageMapper::new(policy, self.page_size), self.tlb_entries),
        );
        self.apply_probe_penalties(&mut h);
        h
    }

    /// Cycles charged per TLB miss by the timing model.
    pub fn tlb_miss_penalty_cycles(&self) -> f64 {
        self.tlb_miss_penalty_cycles
    }

    /// Virtual memory page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// The crude timing model for this machine.
    pub fn timing(&self) -> TimingModel {
        TimingModel::new(
            self.clock_hz,
            self.instructions_per_cycle,
            self.l1_miss_penalty_cycles,
            self.l2_miss_penalty_ns,
        )
    }

    /// Clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// L2-miss penalty in nanoseconds (paper Table 1's "L2 Miss" row).
    pub fn l2_miss_penalty_ns(&self) -> f64 {
        self.l2_miss_penalty_ns
    }

    /// Per-thread fork+run overhead in nanoseconds (paper Table 1).
    pub fn thread_overhead_ns(&self) -> f64 {
        self.thread_overhead_ns
    }

    /// Replaces the modeled thread overhead (e.g. with a value measured
    /// for this Rust implementation on the host).
    pub fn with_thread_overhead_ns(mut self, ns: f64) -> Self {
        self.thread_overhead_ns = ns;
        self
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} MHz, L1D {}, L2 {})",
            self.name,
            self.clock_hz / 1e6,
            self.hierarchy.l1d,
            self.hierarchy.l2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r8000_matches_paper_geometry() {
        let m = MachineModel::r8000();
        assert_eq!(m.l1_config().size(), 16 << 10);
        assert_eq!(m.l1_config().line(), 32);
        assert_eq!(m.l1_config().assoc(), 1);
        assert_eq!(m.l2_config().size(), 2 << 20);
        assert_eq!(m.l2_config().line(), 128);
        assert_eq!(m.l2_config().assoc(), 4);
        assert_eq!(m.l2_miss_penalty_ns(), 1060.0);
    }

    #[test]
    fn r10000_matches_paper_geometry() {
        let m = MachineModel::r10000();
        assert_eq!(m.l1_config().size(), 32 << 10);
        assert_eq!(m.l1_config().assoc(), 2);
        assert_eq!(m.l2_config().size(), 1 << 20);
        assert_eq!(m.l2_config().assoc(), 2);
        assert_eq!(m.l2_miss_penalty_ns(), 850.0);
    }

    #[test]
    fn scaling_scales_both_levels() {
        let m = MachineModel::r8000().scaled(0.25).unwrap();
        assert_eq!(m.l2_config().size(), 512 << 10);
        assert_eq!(m.l1_config().size(), 4 << 10);
        assert_eq!(m.l2_config().line(), 128, "line size preserved");
        assert!(m.name().contains("R8000"));
    }

    #[test]
    fn derived_topology_matches_hierarchy() {
        let t = MachineModel::r8000().topology();
        assert_eq!(t.capacities(), vec![16 << 10, 2 << 20]);
        assert_eq!(t.level(0).line(), 32);
        assert_eq!(t.level(1).line(), 128);
        let t3 = MachineModel::modern().topology();
        assert_eq!(t3.capacities(), vec![32 << 10, 512 << 10, 32 << 20]);
    }

    #[test]
    fn derived_topology_clamps_crossed_scaled_levels() {
        // Bench machines scale L2 only; at 1/256 the L2 (8 KB) drops
        // under the full-size L1 (16 KB). The derived tree must clamp
        // the L1 level back under the L2, not flatten or invert.
        let m = MachineModel::r8000()
            .scaled_split(1.0, 1.0 / 256.0)
            .unwrap();
        let t = m.topology();
        assert_eq!(t.capacities(), vec![4 << 10, 8 << 10]);
        assert_eq!(t.level(0).line(), 32);
        assert_eq!(t.level(1).line(), 128);
    }

    #[test]
    fn numa2_has_a_four_level_tree() {
        let m = MachineModel::numa2();
        let t = m.topology();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.capacities(), vec![32 << 10, 256 << 10, 8 << 20, 64 << 20]);
        assert_eq!(t.level(3).fanout(), 2, "two sockets");
        // The simulated hierarchy covers the three cache levels.
        assert_eq!(m.hierarchy_config().l3.unwrap().size(), 8 << 20);
    }

    #[test]
    fn scaling_scales_the_whole_topology_coherently() {
        let m = MachineModel::numa2().scaled_split(1.0, 1.0 / 8.0).unwrap();
        let t = m.topology();
        assert_eq!(t.depth(), 4, "no level silently dropped");
        // Coarse levels shrink 8x; the unscaled L1 clamps under the L2.
        assert_eq!(t.capacities(), vec![16 << 10, 32 << 10, 1 << 20, 8 << 20]);
        let caps = t.capacities();
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "strictly ordered");
    }

    #[test]
    fn degenerate_scaling_is_an_error() {
        // Scaling the explicit tree to below its line sizes must be
        // rejected, not silently flattened (mirrors the serve crate's
        // degenerate-L2 config error).
        let err = MachineModel::numa2().scaled(1e-6).unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
        // with_topology attaches an explicit (validated) tree.
        let custom = MachineModel::r8000().with_topology(
            MachineTopology::new(vec![
                TopologyLevel::new(16 << 10, 32, 1),
                TopologyLevel::new(2 << 20, 128, 1),
                TopologyLevel::new(32 << 20, 128, 2),
            ])
            .unwrap(),
        );
        assert_eq!(custom.topology().depth(), 3);
        assert!(custom.scaled(1.0 / 4.0).is_ok());
        assert!(custom.scaled(1e-7).is_err());
    }

    #[test]
    fn display_mentions_geometry() {
        let s = MachineModel::r8000().to_string();
        assert!(s.contains("R8000"), "{s}");
        assert!(s.contains("2MB"), "{s}");
    }

    #[test]
    fn thread_overhead_override() {
        let m = MachineModel::r8000().with_thread_overhead_ns(500.0);
        assert_eq!(m.thread_overhead_ns(), 500.0);
    }
}

//! Models of the paper's two evaluation machines.

use crate::paging::{PageMapper, PagePolicy};
use crate::{CacheConfig, Hierarchy, HierarchyConfig, Mmu, TimingModel};
use std::fmt;

/// A machine model: cache geometry plus the paper's crude timing
/// parameters.
///
/// The paper evaluates on an SGI Power Indigo2 (MIPS R8000) and an SGI
/// Indigo2 IMPACT (MIPS R10000) and analyses its results with a crude
/// model — one instruction per cycle, a 7-cycle L1-miss penalty, and a
/// measured L2-miss penalty (Table 1: 1.06 µs on the R8000, 0.85 µs on
/// the R10000). This type packages the same parameters.
///
/// # Examples
///
/// ```
/// use cachesim::MachineModel;
///
/// let m = MachineModel::r8000();
/// assert_eq!(m.l2_config().size(), 2 << 20);
/// // Scale the caches down 16x for a scaled-problem experiment:
/// let small = m.scaled(1.0 / 16.0);
/// assert_eq!(small.l2_config().size(), 128 << 10);
/// ```
#[derive(Clone, Debug)]
pub struct MachineModel {
    name: String,
    clock_hz: f64,
    instructions_per_cycle: f64,
    l1_miss_penalty_cycles: f64,
    l2_miss_penalty_ns: f64,
    hierarchy: HierarchyConfig,
    /// Per-thread fork+run overhead (paper Table 1), in nanoseconds.
    thread_overhead_ns: f64,
    /// Fully-associative TLB entries (both MIPS parts: 64 dual entries).
    tlb_entries: usize,
    /// Cycles per TLB miss (software-refilled on MIPS).
    tlb_miss_penalty_cycles: f64,
    /// Virtual memory page size.
    page_size: u64,
}

impl MachineModel {
    /// SGI Power Indigo2: 75 MHz MIPS R8000.
    ///
    /// 16 KB direct-mapped L1 data cache with 32-byte lines; unified
    /// 2 MB 4-way L2 with 128-byte lines; L1-miss penalty 7 cycles
    /// (paper §4.2, citing the R8000 design paper); L2-miss penalty
    /// 1.06 µs (Table 1). Thread overhead 1.60 µs (Table 1).
    pub fn r8000() -> Self {
        MachineModel {
            name: "R8000".to_owned(),
            clock_hz: 75e6,
            instructions_per_cycle: 1.0,
            l1_miss_penalty_cycles: 7.0,
            l2_miss_penalty_ns: 1060.0,
            hierarchy: HierarchyConfig::new(
                CacheConfig::new(16 << 10, 32, 1).expect("static config"),
                CacheConfig::new(2 << 20, 128, 4).expect("static config"),
            ),
            thread_overhead_ns: 1600.0,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// SGI Indigo2 IMPACT: 195 MHz MIPS R10000.
    ///
    /// 32 KB 2-way L1 data cache with 32-byte lines; unified 1 MB 2-way
    /// L2 with 128-byte lines; L2-miss penalty 0.85 µs (Table 1).
    /// The paper does not state an R10000 L1-miss penalty; we use 8
    /// cycles (the R10000 user's-manual L2 load-to-use latency), which
    /// only affects the crude timing model, not any cache statistic.
    /// Thread overhead 1.09 µs (Table 1).
    pub fn r10000() -> Self {
        MachineModel {
            name: "R10000".to_owned(),
            clock_hz: 195e6,
            instructions_per_cycle: 1.0,
            l1_miss_penalty_cycles: 8.0,
            l2_miss_penalty_ns: 850.0,
            hierarchy: HierarchyConfig::new(
                CacheConfig::new(32 << 10, 32, 2).expect("static config"),
                CacheConfig::new(1 << 20, 128, 2).expect("static config"),
            ),
            thread_overhead_ns: 1090.0,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// A plausible 2020s desktop core, for "does the technique still
    /// matter" studies: 4 GHz, 4-wide, 32 KB/8-way L1D, 512 KB/8-way
    /// private L2, 32 MB/16-way shared L3 (64-byte lines throughout),
    /// ~12-cycle L1-miss penalty and ~80 ns DRAM penalty. Thread
    /// overhead uses this crate's measured Rust fork+run cost (~30 ns,
    /// Table 1 on a modern host).
    pub fn modern() -> Self {
        MachineModel {
            name: "Modern".to_owned(),
            clock_hz: 4e9,
            instructions_per_cycle: 4.0,
            l1_miss_penalty_cycles: 12.0,
            l2_miss_penalty_ns: 80.0,
            hierarchy: HierarchyConfig::new3(
                CacheConfig::new(32 << 10, 64, 8).expect("static config"),
                CacheConfig::new(512 << 10, 64, 8).expect("static config"),
                CacheConfig::new(32 << 20, 64, 16).expect("static config"),
            ),
            thread_overhead_ns: 30.0,
            tlb_entries: 1536,
            tlb_miss_penalty_cycles: 20.0,
            page_size: 4096,
        }
    }

    /// A custom machine model.
    pub fn custom(
        name: impl Into<String>,
        clock_hz: f64,
        instructions_per_cycle: f64,
        l1_miss_penalty_cycles: f64,
        l2_miss_penalty_ns: f64,
        hierarchy: HierarchyConfig,
        thread_overhead_ns: f64,
    ) -> Self {
        MachineModel {
            name: name.into(),
            clock_hz,
            instructions_per_cycle,
            l1_miss_penalty_cycles,
            l2_miss_penalty_ns,
            hierarchy,
            thread_overhead_ns,
            tlb_entries: 64,
            tlb_miss_penalty_cycles: 40.0,
            page_size: 4096,
        }
    }

    /// Returns this machine with both cache capacities multiplied by
    /// `factor` (timing parameters unchanged).
    ///
    /// Scaled machines pair with scaled problem sizes to preserve the
    /// paper's data-set : cache ratios while keeping trace-driven
    /// simulation affordable; see EXPERIMENTS.md.
    pub fn scaled(&self, factor: f64) -> MachineModel {
        self.scaled_split(factor, factor)
    }

    /// Returns this machine with the L1 capacity scaled by `l1_factor`
    /// and the L2 capacity by `l2_factor`.
    ///
    /// Scaled-problem experiments shrink a 2-D problem's *side* by
    /// √factor while its *area* shrinks by factor; working sets that
    /// live in the L1 (a few matrix columns) scale with the side, while
    /// the L2-level working set (whole arrays) scales with the area. So
    /// the ratio-preserving choice is `l1_factor = √l2_factor`; see
    /// EXPERIMENTS.md.
    pub fn scaled_split(&self, l1_factor: f64, l2_factor: f64) -> MachineModel {
        let mut scaled = self.clone();
        scaled.name = format!("{}/{:.3}x", self.name, l2_factor);
        scaled.hierarchy = HierarchyConfig::new(
            self.hierarchy.l1d.scaled(l1_factor),
            self.hierarchy.l2.scaled(l2_factor),
        );
        scaled.hierarchy.l3 = self.hierarchy.l3.map(|l3| l3.scaled(l2_factor));
        scaled
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cache hierarchy geometry.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        self.hierarchy
    }

    /// L1 data-cache geometry.
    pub fn l1_config(&self) -> CacheConfig {
        self.hierarchy.l1d
    }

    /// L2 geometry.
    pub fn l2_config(&self) -> CacheConfig {
        self.hierarchy.l2
    }

    /// L1 data-cache capacity in bytes — the working-set budget a
    /// scheduler's finest bin level should target on this machine.
    pub fn l1_capacity(&self) -> u64 {
        self.hierarchy.l1d.size()
    }

    /// L2 capacity in bytes — the paper's bin-sizing budget ("the
    /// default dimension sizes of the block are set such that their
    /// sum are the same as the second-level cache size", §3.2).
    pub fn l2_capacity(&self) -> u64 {
        self.hierarchy.l2.size()
    }

    /// L1 data-cache line size in bytes.
    pub fn l1_line(&self) -> u64 {
        self.hierarchy.l1d.line()
    }

    /// L2 line size in bytes.
    pub fn l2_line(&self) -> u64 {
        self.hierarchy.l2.line()
    }

    /// Creates a fresh, empty simulated hierarchy for this machine,
    /// with virtual indexing throughout (the paper's own methodology).
    pub fn hierarchy(&self) -> Hierarchy {
        let mut h = Hierarchy::new(self.hierarchy);
        self.apply_probe_penalties(&mut h);
        h
    }

    /// Arms the hierarchy's probe miss-latency histogram with this
    /// machine's Table 1 penalties (L1-miss cycles at this clock, plus
    /// the L2-miss nanoseconds on a DRAM-reaching miss).
    fn apply_probe_penalties(&self, h: &mut Hierarchy) {
        let l1_ns = (self.l1_miss_penalty_cycles / self.clock_hz * 1e9).round() as u64;
        h.set_probe_penalties(l1_ns, self.l2_miss_penalty_ns.round() as u64);
    }

    /// Creates a hierarchy with virtual memory simulated: the machine's
    /// TLB in front, and a physically-indexed L2 through the given page
    /// mapping policy — the effect the paper flags as missing from its
    /// own simulations (§6).
    pub fn hierarchy_with_paging(&self, policy: PagePolicy) -> Hierarchy {
        let mut h = Hierarchy::with_mmu(
            self.hierarchy,
            Mmu::new(PageMapper::new(policy, self.page_size), self.tlb_entries),
        );
        self.apply_probe_penalties(&mut h);
        h
    }

    /// Cycles charged per TLB miss by the timing model.
    pub fn tlb_miss_penalty_cycles(&self) -> f64 {
        self.tlb_miss_penalty_cycles
    }

    /// Virtual memory page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// The crude timing model for this machine.
    pub fn timing(&self) -> TimingModel {
        TimingModel::new(
            self.clock_hz,
            self.instructions_per_cycle,
            self.l1_miss_penalty_cycles,
            self.l2_miss_penalty_ns,
        )
    }

    /// Clock rate in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// L2-miss penalty in nanoseconds (paper Table 1's "L2 Miss" row).
    pub fn l2_miss_penalty_ns(&self) -> f64 {
        self.l2_miss_penalty_ns
    }

    /// Per-thread fork+run overhead in nanoseconds (paper Table 1).
    pub fn thread_overhead_ns(&self) -> f64 {
        self.thread_overhead_ns
    }

    /// Replaces the modeled thread overhead (e.g. with a value measured
    /// for this Rust implementation on the host).
    pub fn with_thread_overhead_ns(mut self, ns: f64) -> Self {
        self.thread_overhead_ns = ns;
        self
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.0} MHz, L1D {}, L2 {})",
            self.name,
            self.clock_hz / 1e6,
            self.hierarchy.l1d,
            self.hierarchy.l2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r8000_matches_paper_geometry() {
        let m = MachineModel::r8000();
        assert_eq!(m.l1_config().size(), 16 << 10);
        assert_eq!(m.l1_config().line(), 32);
        assert_eq!(m.l1_config().assoc(), 1);
        assert_eq!(m.l2_config().size(), 2 << 20);
        assert_eq!(m.l2_config().line(), 128);
        assert_eq!(m.l2_config().assoc(), 4);
        assert_eq!(m.l2_miss_penalty_ns(), 1060.0);
    }

    #[test]
    fn r10000_matches_paper_geometry() {
        let m = MachineModel::r10000();
        assert_eq!(m.l1_config().size(), 32 << 10);
        assert_eq!(m.l1_config().assoc(), 2);
        assert_eq!(m.l2_config().size(), 1 << 20);
        assert_eq!(m.l2_config().assoc(), 2);
        assert_eq!(m.l2_miss_penalty_ns(), 850.0);
    }

    #[test]
    fn scaling_scales_both_levels() {
        let m = MachineModel::r8000().scaled(0.25);
        assert_eq!(m.l2_config().size(), 512 << 10);
        assert_eq!(m.l1_config().size(), 4 << 10);
        assert_eq!(m.l2_config().line(), 128, "line size preserved");
        assert!(m.name().contains("R8000"));
    }

    #[test]
    fn display_mentions_geometry() {
        let s = MachineModel::r8000().to_string();
        assert!(s.contains("R8000"), "{s}");
        assert!(s.contains("2MB"), "{s}");
    }

    #[test]
    fn thread_overhead_override() {
        let m = MachineModel::r8000().with_thread_overhead_ns(500.0);
        assert_eq!(m.thread_overhead_ns(), 500.0);
    }
}

//! An O(1) bounded LRU set over `u64` keys.
//!
//! Backs the fully-associative capacity model of the 3C classifier,
//! where the "set" holds tens of thousands of lines and a linear scan
//! per reference would be prohibitive.

use crate::linehash::LineHashState;
use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// How many recency positions [`LruSet::touch`] scans (pointer-chasing
/// from the MRU end) before falling back to the hash index, in fast
/// mode. Loop traces interleave a handful of arrays, so the line just
/// referenced is almost always within the first few positions.
const FRONT_SCAN: u32 = 6;

/// A fixed-capacity set of `u64` keys with least-recently-used eviction,
/// O(1) per operation.
///
/// The recency list is stored structure-of-arrays: `keys`, `prev`, and
/// `next` are parallel flat arrays indexed by slot. The fast-path front
/// scan chases `next` pointers while comparing `keys`, touching two
/// dense arrays instead of striding over 16-byte nodes.
///
/// # Examples
///
/// ```ignore
/// let mut lru = LruSet::new(2);
/// assert!(!lru.touch(1)); // miss, inserted
/// assert!(!lru.touch(2)); // miss, inserted
/// assert!(lru.touch(1));  // hit
/// assert!(!lru.touch(3)); // miss, evicts 2
/// assert!(!lru.touch(2)); // miss again
/// ```
#[derive(Clone, Debug)]
pub(crate) struct LruSet {
    keys: Vec<u64>,
    prev: Vec<u32>,
    next: Vec<u32>,
    index: HashMap<u64, u32, LineHashState>,
    head: u32,
    tail: u32,
    capacity: usize,
    fast: bool,
}

impl LruSet {
    /// Creates a set holding at most `capacity` keys, with the fast
    /// lookup path enabled.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be nonzero");
        let prealloc = capacity.min(1 << 20);
        LruSet {
            keys: Vec::with_capacity(prealloc),
            prev: Vec::with_capacity(prealloc),
            next: Vec::with_capacity(prealloc),
            index: HashMap::with_capacity_and_hasher(prealloc, LineHashState::for_fast(true)),
            head: NIL,
            tail: NIL,
            capacity,
            fast: true,
        }
    }

    /// Switches the fast lookup path (front-of-list scan + one-multiply
    /// hashing) on or off. Hit/miss/eviction behaviour is identical in
    /// both modes; the slow mode is the exhaustive SipHash reference.
    pub(crate) fn set_fast(&mut self, fast: bool) {
        if self.fast == fast {
            return;
        }
        self.fast = fast;
        // Bucket positions depend on the hash function: rebuild.
        let mut index =
            HashMap::with_capacity_and_hasher(self.index.capacity(), LineHashState::for_fast(fast));
        index.extend(self.index.drain());
        self.index = index;
    }

    /// Number of keys currently resident. (Test-only helper.)
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// References `key`: returns `true` on hit. On miss the key is
    /// inserted, evicting the least-recently-used key if full. Either
    /// way `key` becomes most-recently-used.
    pub(crate) fn touch(&mut self, key: u64) -> bool {
        if self.fast {
            // A key near the MRU end is found by chasing a few `next`
            // pointers, with no hashing at all — and at position 0 the
            // touch is a structural no-op.
            let mut slot = self.head;
            for depth in 0..FRONT_SCAN {
                if slot == NIL {
                    break;
                }
                if self.keys[slot as usize] == key {
                    if depth > 0 {
                        self.unlink(slot);
                        self.push_front(slot);
                    }
                    return true;
                }
                slot = self.next[slot as usize];
            }
        }
        if let Some(&slot) = self.index.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        let slot = if self.index.len() == self.capacity {
            // Reuse the LRU slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.keys[victim as usize];
            self.index.remove(&old_key);
            self.keys[victim as usize] = key;
            victim
        } else {
            let slot = self.keys.len() as u32;
            self.keys.push(key);
            self.prev.push(NIL);
            self.next.push(NIL);
            slot
        };
        self.index.insert(key, slot);
        self.push_front(slot);
        false
    }

    /// Returns `true` if `key` is resident, without updating recency.
    /// (Test-only helper.)
    #[allow(dead_code)]
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    fn unlink(&mut self, slot: u32) {
        let prev = self.prev[slot as usize];
        let next = self.next[slot as usize];
        if prev != NIL {
            self.next[prev as usize] = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.prev[next as usize] = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss_evict() {
        let mut lru = LruSet::new(2);
        assert!(!lru.touch(1));
        assert!(!lru.touch(2));
        assert!(lru.touch(1)); // 1 now MRU, 2 LRU
        assert!(!lru.touch(3)); // evicts 2
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruSet::new(1);
        assert!(!lru.touch(7));
        assert!(lru.touch(7));
        assert!(!lru.touch(8));
        assert!(!lru.touch(7));
    }

    #[test]
    fn sequential_stream_larger_than_capacity_never_hits() {
        let mut lru = LruSet::new(4);
        for round in 0..3 {
            for key in 0..8u64 {
                assert!(!lru.touch(key), "round {round} key {key} unexpectedly hit");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut lru = LruSet::new(8);
        for key in 0..8u64 {
            lru.touch(key);
        }
        for _ in 0..10 {
            for key in 0..8u64 {
                assert!(lru.touch(key));
            }
        }
    }

    /// Drives an [`LruSet`] against a naive O(n) oracle. `toggle_every`
    /// switches the fast path on/off periodically when nonzero.
    fn check_against_oracle(initial_fast: bool, toggle_every: usize) {
        use std::collections::VecDeque;
        let mut oracle: VecDeque<u64> = VecDeque::new();
        let capacity = 16;
        let mut lru = LruSet::new(capacity);
        lru.set_fast(initial_fast);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for step in 0..10_000usize {
            if toggle_every > 0 && step.is_multiple_of(toggle_every) {
                let fast = lru.fast;
                lru.set_fast(!fast);
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 40;
            let oracle_hit = if let Some(pos) = oracle.iter().position(|&k| k == key) {
                oracle.remove(pos);
                oracle.push_front(key);
                true
            } else {
                if oracle.len() == capacity {
                    oracle.pop_back();
                }
                oracle.push_front(key);
                false
            };
            assert_eq!(lru.touch(key), oracle_hit, "step {step}");
        }
    }

    #[test]
    fn matches_naive_model_on_random_stream() {
        check_against_oracle(true, 0);
    }

    #[test]
    fn slow_mode_matches_naive_model() {
        check_against_oracle(false, 0);
    }

    #[test]
    fn toggling_fast_mode_mid_stream_preserves_contents() {
        // The index rebuild on toggle must carry every resident key.
        check_against_oracle(true, 97);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = LruSet::new(0);
    }
}

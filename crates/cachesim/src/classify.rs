//! One-pass compulsory/capacity/conflict miss classification.

use crate::linehash::LineHashState;
use crate::lru::LruSet;
use crate::CacheConfig;
use std::collections::HashSet;

/// The three-C class of a cache miss (Hill & Smith, *Evaluating
/// Associativity in CPU Caches*, IEEE ToC 1989 — reference \[21\] of the
/// paper; the paper's modified DineroIII produced exactly this
/// classification in one run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the line (cold miss).
    Compulsory,
    /// A fully-associative LRU cache of the same capacity would also
    /// have missed.
    Capacity,
    /// Only the restricted associativity caused the miss.
    Conflict,
}

/// Counts of classified misses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissClassCounts {
    /// Cold misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl MissClassCounts {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Adds one miss of the given class.
    pub fn record(&mut self, class: MissClass) {
        match class {
            MissClass::Compulsory => self.compulsory += 1,
            MissClass::Capacity => self.capacity += 1,
            MissClass::Conflict => self.conflict += 1,
        }
    }
}

/// One-pass 3C classifier for a cache level's reference stream.
///
/// Feed it *every* reference the classified cache sees (hits included —
/// the fully-associative model's recency state depends on them);
/// [`classify_miss`](Self::classify_miss) is consulted only when the
/// real cache missed.
///
/// # Examples
///
/// ```
/// use cachesim::{CacheConfig, MissClass, MissClassifier};
///
/// // Two-line fully-associative capacity model.
/// let config = CacheConfig::new(64, 32, 2)?;
/// let mut cls = MissClassifier::new(&config);
/// assert_eq!(cls.classify_miss(0), MissClass::Compulsory);
/// assert_eq!(cls.classify_miss(1), MissClass::Compulsory);
/// assert_eq!(cls.classify_miss(2), MissClass::Compulsory);
/// // Line 0 was evicted from the 2-line FA model by lines 1, 2:
/// assert_eq!(cls.classify_miss(0), MissClass::Capacity);
/// # Ok::<(), cachesim::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MissClassifier {
    seen: HashSet<u64, LineHashState>,
    fully_assoc: LruSet,
    counts: MissClassCounts,
    fast: bool,
}

impl MissClassifier {
    /// Creates a classifier for a cache with geometry `config`, with
    /// the fast lookup paths enabled.
    ///
    /// The capacity model is a fully-associative LRU cache with
    /// `config.lines()` lines.
    pub fn new(config: &CacheConfig) -> Self {
        MissClassifier {
            seen: HashSet::with_hasher(LineHashState::for_fast(true)),
            fully_assoc: LruSet::new(config.lines() as usize),
            counts: MissClassCounts::default(),
            fast: true,
        }
    }

    /// Switches the fast paths (one-multiply line hashing, front-of-list
    /// LRU scan, and elision of provably redundant `seen` updates) on or
    /// off. Classification is bit-identical in both modes; the slow mode
    /// is the exhaustive reference.
    pub fn set_fast_path(&mut self, fast: bool) {
        if self.fast == fast {
            return;
        }
        self.fast = fast;
        self.fully_assoc.set_fast(fast);
        let mut seen =
            HashSet::with_capacity_and_hasher(self.seen.capacity(), LineHashState::for_fast(fast));
        seen.extend(self.seen.drain());
        self.seen = seen;
    }

    /// Records a reference that *hit* in the classified cache.
    ///
    /// Keeps the capacity model's recency state in sync.
    #[inline]
    pub fn note_hit(&mut self, line: u64) {
        let fa_hit = self.fully_assoc.touch(line);
        // Every insertion into the FA model (here and in
        // `classify_miss`) is paired with a `seen` insertion, so FA ⊆
        // seen always: when the FA model already held the line, the
        // `seen` update is a no-op the fast path elides.
        if !(self.fast && fa_hit) {
            self.seen.insert(line);
        }
    }

    /// Classifies a miss on `line` and updates the model state.
    #[inline]
    pub fn classify_miss(&mut self, line: u64) -> MissClass {
        let class = if self.fast {
            // FA ⊆ seen (see `note_hit`): an FA hit implies the line was
            // seen before, so the first-touch probe is needed only on an
            // FA miss — where `insert`'s return value answers it.
            if self.fully_assoc.touch(line) {
                MissClass::Conflict
            } else if self.seen.insert(line) {
                MissClass::Compulsory
            } else {
                MissClass::Capacity
            }
        } else {
            let first_touch = self.seen.insert(line);
            let fa_hit = self.fully_assoc.touch(line);
            if first_touch {
                MissClass::Compulsory
            } else if !fa_hit {
                MissClass::Capacity
            } else {
                MissClass::Conflict
            }
        };
        self.counts.record(class);
        class
    }

    /// Classified miss counts so far.
    pub fn counts(&self) -> MissClassCounts {
        self.counts
    }

    /// Zeroes the counts, keeping the cache-content models warm.
    ///
    /// Use this to exclude warm-up (e.g. the paper excludes program
    /// initialization from its simulations).
    pub fn reset_counts(&mut self) {
        self.counts = MissClassCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classifier(lines: u64) -> MissClassifier {
        MissClassifier::new(&CacheConfig::new(lines * 32, 32, 1).unwrap())
    }

    #[test]
    fn first_touch_is_always_compulsory() {
        let mut c = classifier(4);
        for line in 0..100 {
            assert_eq!(c.classify_miss(line), MissClass::Compulsory);
        }
        assert_eq!(c.counts().compulsory, 100);
    }

    #[test]
    fn cycling_working_set_larger_than_cache_is_capacity() {
        let mut c = classifier(4);
        for line in 0..8 {
            c.classify_miss(line);
        }
        for _ in 0..3 {
            for line in 0..8 {
                assert_eq!(c.classify_miss(line), MissClass::Capacity);
            }
        }
        let counts = c.counts();
        assert_eq!(counts.compulsory, 8);
        assert_eq!(counts.capacity, 24);
        assert_eq!(counts.conflict, 0);
        assert_eq!(counts.total(), 32);
    }

    #[test]
    fn miss_that_fa_would_hit_is_conflict() {
        let mut c = classifier(16);
        c.classify_miss(0);
        c.classify_miss(16); // same direct-mapped set in a 16-set cache
                             // Real cache missed again on 0 (conflict eviction), but the FA
                             // model still holds both lines:
        assert_eq!(c.classify_miss(0), MissClass::Conflict);
        assert_eq!(c.counts().conflict, 1);
    }

    #[test]
    fn hits_refresh_fa_recency() {
        let mut c = classifier(2);
        c.classify_miss(0);
        c.classify_miss(1);
        c.note_hit(0); // 0 becomes MRU in the FA model
        c.classify_miss(2); // FA evicts 1
                            // If the real cache now misses on 0, the FA model still holds it
                            // (thanks to the hit), so it's a conflict miss:
        assert_eq!(c.classify_miss(0), MissClass::Conflict);
        // ...while 1 is genuinely out of FA capacity:
        assert_eq!(c.classify_miss(1), MissClass::Capacity);
    }

    #[test]
    fn reset_counts_keeps_models_warm() {
        let mut c = classifier(4);
        c.classify_miss(0);
        c.reset_counts();
        assert_eq!(c.counts().total(), 0);
        // Line 0 was already seen: a new miss on it is not compulsory.
        assert_ne!(c.classify_miss(0), MissClass::Compulsory);
    }

    #[test]
    fn fast_and_slow_classifiers_agree_class_by_class() {
        let mut fast = classifier(8);
        let mut slow = classifier(8);
        slow.set_fast_path(false);
        let mut state = 0x1234_5678u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (state >> 33) % 24;
            // Mimic the hierarchy's usage: hits keep recency in sync,
            // misses get classified.
            if state.is_multiple_of(3) {
                fast.note_hit(line);
                slow.note_hit(line);
            } else {
                assert_eq!(fast.classify_miss(line), slow.classify_miss(line));
            }
        }
        assert_eq!(fast.counts(), slow.counts());
    }

    #[test]
    fn classes_partition_misses() {
        let mut c = classifier(8);
        let mut total = 0u64;
        let mut state = 12345u64;
        for _ in 0..1000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = (state >> 33) % 24;
            c.classify_miss(line);
            total += 1;
        }
        assert_eq!(c.counts().total(), total);
    }
}

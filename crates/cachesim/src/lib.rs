//! Trace-driven cache simulation (the reproduction's stand-in for the
//! paper's modified DineroIII).
//!
//! The ASPLOS'96 paper attributes its speedups to second-level-cache
//! *capacity* misses, measured by feeding Pixie address traces through a
//! DineroIII simulator modified to classify misses as compulsory,
//! capacity, or conflict in a single pass. This crate provides the same
//! capability for traces produced by the `memtrace` crate:
//!
//! * [`Cache`] — one set-associative, write-allocate, write-back LRU
//!   cache level.
//! * [`MissClassifier`] — one-pass 3C classification (Hill & Smith):
//!   compulsory if the line was never referenced, capacity if a
//!   fully-associative LRU cache of the same capacity would also miss,
//!   conflict otherwise.
//! * [`Hierarchy`] — split L1 data cache backed by a unified L2 (the
//!   configuration of both paper machines); the L2 reference stream is
//!   classified.
//! * [`MachineModel`] — the two paper machines ([`MachineModel::r8000`],
//!   [`MachineModel::r10000`]) with cache geometry and the paper's crude
//!   timing model (§4.2: 1 instruction/cycle, 7-cycle L1-miss penalty,
//!   1.06 µs / 0.85 µs L2-miss penalty), plus proportional scaling for
//!   reduced-size experiments.
//! * [`SimSink`] — a [`memtrace::TraceSink`] that drives a [`Hierarchy`]
//!   online, replacing the Pixie trace file.
//!
//! # Examples
//!
//! ```
//! use cachesim::{MachineModel, SimSink};
//! use memtrace::{Addr, TraceSink};
//!
//! let machine = MachineModel::r8000();
//! let mut sim = SimSink::new(machine.hierarchy());
//! // Stream two passes of a little loop over 64 KiB...
//! for _pass in 0..2 {
//!     for off in (0..65536u64).step_by(8) {
//!         sim.read(Addr::new(0x1000_0000 + off), 8);
//!     }
//! }
//! let report = sim.finish();
//! assert!(report.l1.misses() > 0);
//! // 64 KiB fits in the 2 MB L2: second pass hits, all L2 misses compulsory.
//! assert_eq!(report.l2.misses(), report.classes.compulsory);
//! ```

mod cache;
mod classify;
mod config;
mod hierarchy;
mod linehash;
mod lru;
mod machine;
mod paging;
mod report;
mod shard;
mod sink;
mod timing;
mod topology;

pub use cache::{Cache, CacheStats};
pub use classify::{MissClass, MissClassCounts, MissClassifier};
pub use config::{CacheConfig, CacheConfigError, WritePolicy};
pub use hierarchy::{Hierarchy, HierarchyConfig, Mmu};
pub use machine::MachineModel;
pub use paging::{PageMapper, PagePolicy, Tlb, TlbStats};
pub use report::SimReport;
pub use shard::{ShardPlan, ShardedSimSink};
pub use sink::SimSink;
pub use timing::{TimeBreakdown, TimingModel};
pub use topology::{MachineTopology, TopologyLevel, MAX_TOPOLOGY_LEVELS};

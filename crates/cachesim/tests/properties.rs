//! Property-based tests of the cache simulator's invariants.

use cachesim::{Cache, CacheConfig, Hierarchy, HierarchyConfig, MissClass, MissClassifier};
use memtrace::{Access, Addr};
use proptest::prelude::*;

/// A naive reference model of a set-associative LRU cache, O(assoc) per
/// access, kept deliberately dumb so it can serve as an oracle.
struct NaiveCache {
    sets: Vec<Vec<u64>>, // MRU-first tag lists
    assoc: usize,
    line: u64,
}

impl NaiveCache {
    fn new(config: CacheConfig) -> Self {
        NaiveCache {
            sets: vec![Vec::new(); config.sets() as usize],
            assoc: config.assoc() as usize,
            line: config.line(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.sets.len() as u64) as usize;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == line) {
            list.remove(pos);
            list.insert(0, line);
            true
        } else {
            if list.len() == self.assoc {
                list.pop();
            }
            list.insert(0, line);
            false
        }
    }
}

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    // sizes 256B..8KiB, lines 16..128, assoc 1..8, filtered for validity
    (8u32..14, 4u32..8, 0u32..4).prop_filter_map(
        "valid geometry",
        |(size_log2, line_log2, assoc_log2)| {
            CacheConfig::new(1 << size_log2, 1 << line_log2, 1 << assoc_log2).ok()
        },
    )
}

proptest! {
    /// The set-associative cache matches a naive LRU oracle on random
    /// address streams, for any geometry.
    #[test]
    fn cache_matches_naive_lru_oracle(
        config in arb_geometry(),
        addrs in prop::collection::vec(0u64..16384, 1..2000),
        writes in prop::collection::vec(any::<bool>(), 2000),
    ) {
        let mut cache = Cache::new(config);
        let mut oracle = NaiveCache::new(config);
        for (i, &addr) in addrs.iter().enumerate() {
            let hit = cache.access_addr(Addr::new(addr), writes[i]);
            prop_assert_eq!(hit, oracle.access(addr), "access {} at {:#x}", i, addr);
        }
    }

    /// 3C classes always partition the misses, and the first touch of
    /// every line is compulsory.
    #[test]
    fn classes_partition_and_first_touch_is_compulsory(
        lines in prop::collection::vec(0u64..64, 1..2000),
    ) {
        let config = CacheConfig::new(512, 32, 1).unwrap();
        let mut classifier = MissClassifier::new(&config);
        let mut seen = std::collections::HashSet::new();
        let mut misses = 0u64;
        for &line in &lines {
            let class = classifier.classify_miss(line);
            misses += 1;
            if seen.insert(line) {
                prop_assert_eq!(class, MissClass::Compulsory);
            } else {
                prop_assert_ne!(class, MissClass::Compulsory);
            }
        }
        prop_assert_eq!(classifier.counts().total(), misses);
    }

    /// Fully-associative LRU caches have the stack (inclusion)
    /// property: a larger cache never misses where a smaller one hits.
    #[test]
    fn fully_associative_inclusion_property(
        addrs in prop::collection::vec(0u64..8192, 1..2000),
    ) {
        let small = CacheConfig::new(256, 32, 8).unwrap(); // 8 lines FA
        let large = CacheConfig::new(512, 32, 16).unwrap(); // 16 lines FA
        let mut small_cache = Cache::new(small);
        let mut large_cache = Cache::new(large);
        for &addr in &addrs {
            let small_hit = small_cache.access_addr(Addr::new(addr), false);
            let large_hit = large_cache.access_addr(Addr::new(addr), false);
            prop_assert!(!small_hit || large_hit, "inclusion violated at {addr:#x}");
        }
    }

    /// In a hierarchy, L2 references never exceed L1 references, and
    /// the classifier exactly partitions L2 misses.
    #[test]
    fn hierarchy_invariants(
        accesses in prop::collection::vec((0u64..32768, any::<bool>(), 1u32..16), 1..2000),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(512, 32, 1).unwrap(),
            CacheConfig::new(4096, 64, 2).unwrap(),
        ));
        for &(addr, write, size) in &accesses {
            let access = if write {
                Access::write(Addr::new(addr), size)
            } else {
                Access::read(Addr::new(addr), size)
            };
            h.access(access);
        }
        prop_assert!(h.l2_stats().references() <= h.l1_stats().references() + h.l1_stats().writebacks);
        prop_assert_eq!(h.classes().total(), h.l2_stats().misses());
        prop_assert!(h.l1_stats().misses() <= h.l1_stats().references());
        prop_assert_eq!(h.memory_reads(), h.l2_stats().misses());
    }

    /// An access of any size touches exactly the L1 lines it spans.
    #[test]
    fn access_splitting_touches_spanned_lines(
        addr in 0u64..4096,
        size in 1u32..256,
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(1024, 32, 2).unwrap(),
            CacheConfig::new(4096, 64, 2).unwrap(),
        ));
        h.access(Access::read(Addr::new(addr), size));
        let expected = (addr + u64::from(size) - 1) / 32 - addr / 32 + 1;
        prop_assert_eq!(h.l1_stats().references(), expected);
    }

    /// Warm reruns of a working set that fits in L2 produce zero L2
    /// misses, regardless of the access pattern.
    #[test]
    fn l2_resident_working_set_stops_missing(
        offsets in prop::collection::vec(0u64..2048, 1..500),
    ) {
        let mut h = Hierarchy::new(HierarchyConfig::new(
            CacheConfig::new(256, 32, 1).unwrap(),
            CacheConfig::new(4096, 64, 4).unwrap(), // holds all 2 KiB
        ));
        for &off in &offsets {
            h.access(Access::read(Addr::new(off), 8));
        }
        h.reset_stats();
        for &off in &offsets {
            h.access(Access::read(Addr::new(off), 8));
        }
        prop_assert_eq!(h.l2_stats().misses(), 0);
    }
}

//! End-to-end test of the `dinero` trace-replay tool.

use memtrace::{Addr, TraceFileWriter, TraceSink};
use std::process::Command;

fn write_trace(path: &std::path::Path) {
    let file = std::fs::File::create(path).expect("create trace");
    let mut writer = TraceFileWriter::new(file);
    // Two passes over 64 KiB: second pass hits a 2 MB L2.
    for _pass in 0..2 {
        for off in (0..65536u64).step_by(8) {
            writer.read(Addr::new(0x1000_0000 + off), 8);
        }
    }
    writer.instructions(100_000);
    writer.finish().expect("flush trace");
}

fn dinero() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dinero"))
}

#[test]
fn replays_a_trace_and_prints_the_report() {
    let dir = std::env::temp_dir().join(format!("dinero-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.bin");
    write_trace(&trace);

    let output = dinero().arg(&trace).output().expect("run dinero");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("D references"), "{stdout}");
    assert!(stdout.contains("16385 events"), "{stdout}");
    assert!(stdout.contains("L2 compulsory"), "{stdout}");
    assert!(stdout.contains("modeled on R8000"), "{stdout}");

    // Custom geometry: an L2 too small for the working set shows
    // capacity misses; the default does not.
    let output = dinero()
        .args(["--l2", "16K:128:4"])
        .arg(&trace)
        .output()
        .expect("run dinero");
    assert!(output.status.success());
    let small = String::from_utf8(output.stdout).unwrap();
    assert!(small.contains("16KB/4-way/128B-line"), "{small}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_bad_arguments() {
    let output = dinero().output().expect("run dinero");
    assert!(!output.status.success(), "no trace file must fail");
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("usage"), "{stderr}");

    let output = dinero()
        .args(["--l2", "banana"])
        .arg("/nonexistent")
        .output()
        .expect("run dinero");
    assert!(!output.status.success());

    let output = dinero().arg("/nonexistent-trace-file").output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("cannot open"), "{stderr}");
}

#[test]
fn mmu_and_write_policy_flags_work() {
    let dir = std::env::temp_dir().join(format!("dinero-test2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.bin");
    write_trace(&trace);

    for flags in [
        vec!["--mmu", "random"],
        vec!["--mmu", "identity"],
        vec!["--mmu", "binhop"],
        vec!["--write-through-l1"],
        vec!["--machine", "r10000"],
    ] {
        let output = dinero().args(&flags).arg(&trace).output().unwrap();
        assert!(output.status.success(), "{flags:?}: {output:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Matrix multiplication, §4.2 of the paper: `C = A × B` on `n × n`
//! column-major (Fortran-layout) matrices, in the five versions of
//! Table 2.
//!
//! Per-inner-iteration instruction counts follow the paper's own
//! disassembly of the three code shapes (§4.2): the untiled
//! *interchanged* loop runs "10 instructions with 2 multiply-adds, 4
//! loads, 2 stores" (5 instructions, 2 loads, 1 store per multiply-add);
//! the KAP-*tiled* loop "18 instructions with 9 multiply-adds, 6 loads"
//! (2 instructions, ⅔ load per multiply-add — a 3×3 register block);
//! and the *transposed/threaded* loop "14 instructions with 4
//! multiply-adds, 8 loads" (3.5 instructions, 2 loads per multiply-add,
//! no stores). The traced loops below emit exactly those reference
//! patterns, which is why the simulated reference counts reproduce
//! Table 3.

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use crate::WorkloadReport;
use locality_sched::{BinPolicy, Hints, PaperBlockHash, RunMode, Scheduler, SchedulerConfig};
use memtrace::{AddressSpace, MatrixLayout, TraceSink, TracedMatrix};

/// Instructions per multiply-add in the untiled interchanged loop.
pub const INTERCHANGED_INSTR_PER_MADD: u64 = 5;
/// Instructions per *two* multiply-adds in the transposed dot-product
/// loop (the paper's count is 3.5 per multiply-add).
pub const TRANSPOSED_INSTR_PER_2_MADDS: u64 = 7;
/// Instructions per 3×3 register-block step (9 multiply-adds) in the
/// tiled microkernel.
pub const TILED_INSTR_PER_BLOCK_STEP: u64 = 18;
/// Instructions per element pair swapped by the in-place transpose.
pub const TRANSPOSE_INSTR_PER_PAIR: u64 = 8;

/// The operand set for one multiplication: `A`, `B`, and the output
/// `C`, all `n × n` column-major.
#[derive(Clone, Debug)]
pub struct MatMulData {
    /// Left operand.
    pub a: TracedMatrix,
    /// Right operand.
    pub b: TracedMatrix,
    /// Output, zeroed between runs with [`reset`](MatMulData::reset).
    pub c: TracedMatrix,
    n: usize,
}

impl MatMulData {
    /// Allocates operands in `space` and fills `A`, `B` with a
    /// deterministic pseudo-random pattern derived from `seed`.
    pub fn new(space: &mut AddressSpace, n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Small values keep products well-conditioned.
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let a = TracedMatrix::from_fn(space, n, n, MatrixLayout::ColMajor, |_, _| next());
        let b = TracedMatrix::from_fn(space, n, n, MatrixLayout::ColMajor, |_, _| next());
        let c = TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor);
        MatMulData { a, b, c, n }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Zeroes `C` (untraced) so another version can run on the same
    /// operands.
    pub fn reset(&mut self) {
        for i in 0..self.n {
            for j in 0..self.n {
                self.c.set_untraced(i, j, 0.0);
            }
        }
    }

    /// Computes the reference product with a plain untraced triple
    /// loop and returns the maximum absolute difference from `C`.
    pub fn max_error_vs_naive(&self) -> f64 {
        let n = self.n;
        let mut max = 0.0f64;
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.a.at(i, k) * self.b.at(k, j);
                }
                max = max.max((acc - self.c.at(i, j)).abs());
            }
        }
        max
    }
}

/// The best untiled sequential version (paper: *interchanged*): loop
/// order `j, k, i` with `B[k, j]` registered, so the inner loop does
/// two loads and one store per multiply-add.
pub fn interchanged<S: TraceSink>(data: &mut MatMulData, sink: &mut S) -> WorkloadReport {
    let n = data.n;
    for j in 0..n {
        for k in 0..n {
            let b_kj = data.b.get(k, j, sink);
            for i in 0..n {
                let a_ik = data.a.get(i, k, sink);
                let c_ij = data.c.get(i, j, sink);
                data.c.set(i, j, c_ij + a_ik * b_kj, sink);
                sink.instructions(INTERCHANGED_INSTR_PER_MADD);
            }
        }
    }
    WorkloadReport::unthreaded("matmul/interchanged", data.c.checksum())
}

/// Transposes the square matrix `m` in place, tracing every reference.
///
/// The paper's transposed and threaded versions transpose `A` before
/// and after the multiplication; "since the complexity of a transpose
/// is an order of magnitude less than the matrix multiply, the overhead
/// of transposes is small".
pub fn transpose_in_place<S: TraceSink>(m: &mut TracedMatrix, sink: &mut S) {
    let n = m.rows();
    assert_eq!(n, m.cols(), "in-place transpose requires a square matrix");
    for j in 1..n {
        for i in 0..j {
            let x = m.get(i, j, sink);
            let y = m.get(j, i, sink);
            m.set(i, j, y, sink);
            m.set(j, i, x, sink);
            sink.instructions(TRANSPOSE_INSTR_PER_PAIR);
        }
    }
}

/// The dot product of stored columns `i` of `At` (= row `i` of the
/// original `A`) and `j` of `B`, unrolled by two as the paper's
/// compiler did (4 multiply-adds / 14 instructions / 8 loads per
/// unrolled body ⇒ 2 loads and 3.5 instructions per multiply-add; the
/// accumulator lives in a register, so there are no stores).
#[inline]
fn dot_column<S: TraceSink>(
    at: &TracedMatrix,
    b: &TracedMatrix,
    i: usize,
    j: usize,
    sink: &mut S,
) -> f64 {
    let n = at.rows();
    let mut acc = 0.0;
    let mut k = 0;
    while k + 2 <= n {
        // Batched per matrix: both column elements in one sink call.
        let [a0, a1] = at.get_batch([(k, i), (k + 1, i)], sink);
        let [b0, b1] = b.get_batch([(k, j), (k + 1, j)], sink);
        acc += a0 * b0 + a1 * b1;
        sink.instructions(TRANSPOSED_INSTR_PER_2_MADDS);
        k += 2;
    }
    if k < n {
        let a0 = at.get(k, i, sink);
        let b0 = b.get(k, j, sink);
        acc += a0 * b0;
        sink.instructions(TRANSPOSED_INSTR_PER_2_MADDS / 2 + 1);
    }
    acc
}

/// The cache-conscious sequential version (paper: *transposed*):
/// transpose `A`, compute every `C[i, j]` as a dot product of two
/// sequentially-stored columns, transpose `A` back.
pub fn transposed<S: TraceSink>(data: &mut MatMulData, sink: &mut S) -> WorkloadReport {
    let n = data.n;
    transpose_in_place(&mut data.a, sink);
    for i in 0..n {
        for j in 0..n {
            let acc = dot_column(&data.a, &data.b, i, j, sink);
            data.c.set(i, j, acc, sink);
        }
    }
    transpose_in_place(&mut data.a, sink);
    WorkloadReport::unthreaded("matmul/transposed", data.c.checksum())
}

/// Tile sizes for the compiler-tiled versions.
///
/// The defaults follow the usual register/L1/L2 blocking recipe the
/// KAP and SGI compilers applied: a 3×3 register block (matching the
/// paper's 9-multiply-add inner loop), a `kc` panel sized for L1, and
/// an `mc` panel sized for L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileConfig {
    /// K-panel length (L1 blocking).
    pub kc: usize,
    /// I-panel height (L2 blocking).
    pub mc: usize,
}

impl TileConfig {
    /// Derives tile sizes from cache capacities in bytes.
    pub fn for_caches(l1_bytes: u64, l2_bytes: u64) -> Self {
        // Keep a 3-row A sliver and a 3-column B sliver of length kc
        // in L1 (6·kc·8 bytes ≤ L1/2), and an mc × kc A panel in L2
        // (mc·kc·8 ≤ L2/2).
        let kc = ((l1_bytes / 2 / (8 * 6)) as usize).max(8);
        let mc = ((l2_bytes / 2 / (8 * kc as u64)) as usize).max(3);
        TileConfig { kc, mc }
    }
}

impl Default for TileConfig {
    fn default() -> Self {
        // The paper's R8000: 16 KB L1, 2 MB L2.
        TileConfig::for_caches(16 << 10, 2 << 20)
    }
}

/// The 3×3-register-block microkernel over one packed k-panel:
/// `C[i0.., j0..] += packA · packB`. Both panels are contiguous
/// scratch buffers (see [`tiled_common`]): 6 streaming loads and 18
/// instructions per 9 multiply-adds, the paper's tiled inner loop.
#[allow(clippy::too_many_arguments)]
fn micro_kernel<S: TraceSink>(
    pack_a: &TracedMatrix, // mc x kc, i fast
    pack_b: &TracedMatrix, // kc x n, k fast
    c: &mut TracedMatrix,
    i0: usize,
    ih: usize,
    j0: usize,
    jh: usize,
    ia: usize, // i0 relative to the A panel
    kc: usize, // panel depth
    sink: &mut S,
) {
    debug_assert!(ih <= 3 && jh <= 3);
    let mut acc = [[0.0f64; 3]; 3];
    for k in 0..kc {
        let mut a_reg = [0.0f64; 3];
        let mut b_reg = [0.0f64; 3];
        for (di, a_val) in a_reg.iter_mut().enumerate().take(ih) {
            *a_val = pack_a.get(ia + di, k, sink);
        }
        for (dj, b_val) in b_reg.iter_mut().enumerate().take(jh) {
            *b_val = pack_b.get(k, j0 + dj, sink);
        }
        for (di, acc_row) in acc.iter_mut().enumerate().take(ih) {
            for (dj, cell) in acc_row.iter_mut().enumerate().take(jh) {
                *cell += a_reg[di] * b_reg[dj];
            }
        }
        sink.instructions((TILED_INSTR_PER_BLOCK_STEP * (ih * jh) as u64).div_ceil(9));
    }
    for (di, acc_row) in acc.iter().enumerate().take(ih) {
        for (dj, &partial) in acc_row.iter().enumerate().take(jh) {
            let c_ij = c.get(i0 + di, j0 + dj, sink);
            c.set(i0 + di, j0 + dj, c_ij + partial, sink);
            sink.instructions(3);
        }
    }
}

/// Instructions per element copied while packing panels.
const PACK_INSTRUCTIONS: u64 = 2;

fn tiled_common<S: TraceSink>(
    data: &mut MatMulData,
    a_is_transposed: bool,
    tiles: TileConfig,
    space: &mut AddressSpace,
    sink: &mut S,
) {
    let n = data.n;
    let kc = tiles.kc.min(n.max(1));
    let mc = tiles.mc.min(n.max(1));
    // Contiguous packing buffers, as compiler-generated and library
    // GEMMs use: they make panel reuse conflict-free in physically
    // strided caches (without packing, the column stride aliases whole
    // panels onto a few cache sets).
    let mut pack_a = TracedMatrix::zeros(space, mc, kc, MatrixLayout::ColMajor);
    let mut pack_b = TracedMatrix::zeros(space, kc, n, MatrixLayout::ColMajor);
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + kc).min(n);
        let kd = k1 - k0;
        // Pack the B slab for this k-panel: kd x n, k fast.
        for j in 0..n {
            for k in k0..k1 {
                let v = data.b.get(k, j, sink);
                pack_b.set(k - k0, j, v, sink);
                sink.instructions(PACK_INSTRUCTIONS);
            }
        }
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + mc).min(n);
            // Pack the A block: (i1-i0) x kd, i fast.
            for k in k0..k1 {
                for i in i0..i1 {
                    let v = if a_is_transposed {
                        data.a.get(k, i, sink)
                    } else {
                        data.a.get(i, k, sink)
                    };
                    pack_a.set(i - i0, k - k0, v, sink);
                    sink.instructions(PACK_INSTRUCTIONS);
                }
            }
            let mut j = 0;
            while j < n {
                let jh = (n - j).min(3);
                let mut i = i0;
                while i < i1 {
                    let ih = (i1 - i).min(3);
                    micro_kernel(
                        &pack_a,
                        &pack_b,
                        &mut data.c,
                        i,
                        ih,
                        j,
                        jh,
                        i - i0,
                        kd,
                        sink,
                    );
                    i += ih;
                }
                j += jh;
            }
            i0 = i1;
        }
        k0 = k1;
    }
}

/// The compiler-tiled interchanged version (paper: KAP on the R8000,
/// SGI 7.0 on the R10000): register + L1 + L2 blocking with panel
/// packing over the untransposed operands. `space` provides the
/// packing scratch buffers.
pub fn tiled_interchanged<S: TraceSink>(
    data: &mut MatMulData,
    tiles: TileConfig,
    space: &mut AddressSpace,
    sink: &mut S,
) -> WorkloadReport {
    tiled_common(data, false, tiles, space, sink);
    WorkloadReport::unthreaded("matmul/tiled-interchanged", data.c.checksum())
}

/// The compiler-tiled transposed version: transpose `A`, run the
/// blocked kernel on sequential columns, transpose back.
pub fn tiled_transposed<S: TraceSink>(
    data: &mut MatMulData,
    tiles: TileConfig,
    space: &mut AddressSpace,
    sink: &mut S,
) -> WorkloadReport {
    transpose_in_place(&mut data.a, sink);
    tiled_common(data, true, tiles, space, sink);
    transpose_in_place(&mut data.a, sink);
    WorkloadReport::unthreaded("matmul/tiled-transposed", data.c.checksum())
}

/// Context shared by the dot-product threads.
struct DotCtx<'a, S> {
    at: &'a TracedMatrix,
    b: &'a TracedMatrix,
    c: &'a mut TracedMatrix,
    sink: &'a mut S,
}

fn dot_thread<S: TraceSink>(ctx: &mut DotCtx<'_, S>, i: usize, j: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    let acc = dot_column(ctx.at, ctx.b, i, j, ctx.sink);
    ctx.c.set(i, j, acc, ctx.sink);
}

/// The threaded version (paper §2.1/§4.2): transpose `A`, fork one
/// thread per dot product with the two column base addresses as hints —
/// `th_fork(DotProduct, i, j, A[1,i], B[1,j])` — run them in bin order,
/// transpose back.
pub fn threaded<S: TraceSink>(
    data: &mut MatMulData,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let policy = PaperBlockHash::from_config(&config);
    threaded_with(data, config, policy, sink)
}

/// [`threaded`] under an arbitrary [`BinPolicy`] — the hints are
/// identical; only the hints→bin mapping (and hence the drain order)
/// changes.
pub fn threaded_with<S: TraceSink, P: BinPolicy>(
    data: &mut MatMulData,
    config: SchedulerConfig,
    policy: P,
    sink: &mut S,
) -> WorkloadReport {
    let n = data.n;
    transpose_in_place(&mut data.a, sink);
    let sched_stats = {
        let mut sched: Scheduler<DotCtx<'_, S>, P> = Scheduler::with_policy(config, policy);
        sched.trace_package_memory();
        for i in 0..n {
            for j in 0..n {
                sched.fork_traced(
                    dot_thread::<S>,
                    i,
                    j,
                    Hints::two(data.a.col_addr(i), data.b.col_addr(j)),
                    sink,
                );
                sink.instructions(FORK_INSTRUCTIONS);
            }
        }
        let stats = sched.stats();
        let mut ctx = DotCtx {
            at: &data.a,
            b: &data.b,
            c: &mut data.c,
            sink,
        };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
        stats
    };
    transpose_in_place(&mut data.a, sink);
    WorkloadReport::threaded("matmul/threaded", data.c.checksum(), sched_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CountingSink, NullSink};

    fn data(n: usize) -> (AddressSpace, MatMulData) {
        let mut space = AddressSpace::new();
        let d = MatMulData::new(&mut space, n, 42);
        (space, d)
    }

    fn sched_config() -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(1 << 12)
            .build()
            .unwrap()
    }

    #[test]
    fn interchanged_is_correct() {
        let (_s, mut d) = data(17);
        interchanged(&mut d, &mut NullSink);
        assert!(d.max_error_vs_naive() < 1e-12);
    }

    #[test]
    fn transposed_is_correct_and_restores_a() {
        let (_s, mut d) = data(16);
        let a_before: Vec<f64> = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| d.a.at(i, j))
            .collect();
        transposed(&mut d, &mut NullSink);
        assert!(d.max_error_vs_naive() < 1e-12);
        let a_after: Vec<f64> = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| d.a.at(i, j))
            .collect();
        assert_eq!(a_before, a_after, "A must be transposed back");
    }

    #[test]
    fn tiled_versions_are_correct() {
        for n in [9, 16, 23] {
            let (mut s, mut d) = data(n);
            let tiles = TileConfig { kc: 5, mc: 7 };
            tiled_interchanged(&mut d, tiles, &mut s, &mut NullSink);
            assert!(d.max_error_vs_naive() < 1e-12, "tiled-interchanged n={n}");
            d.reset();
            tiled_transposed(&mut d, tiles, &mut s, &mut NullSink);
            assert!(d.max_error_vs_naive() < 1e-12, "tiled-transposed n={n}");
        }
    }

    #[test]
    fn threaded_is_correct() {
        for n in [8, 15] {
            let (_s, mut d) = data(n);
            let report = threaded(&mut d, sched_config(), &mut NullSink);
            assert!(d.max_error_vs_naive() < 1e-12, "n={n}");
            assert_eq!(report.threads, (n * n) as u64);
            assert!(report.sched.unwrap().bins() >= 1);
        }
    }

    #[test]
    fn all_versions_agree_bitwise() {
        let (mut space, mut d) = data(20);
        interchanged(&mut d, &mut NullSink);
        let reference = d.c.checksum();
        type Runner = fn(&mut MatMulData, &mut AddressSpace, &mut NullSink) -> WorkloadReport;
        let runners: [Runner; 4] = [
            |d, _sp, s| transposed(d, s),
            |d, sp, s| tiled_interchanged(d, TileConfig::default(), sp, s),
            |d, sp, s| tiled_transposed(d, TileConfig::default(), sp, s),
            |d, _sp, s| {
                threaded(
                    d,
                    SchedulerConfig::builder()
                        .block_size(1 << 12)
                        .build()
                        .unwrap(),
                    s,
                )
            },
        ];
        for run in runners {
            d.reset();
            let report = run(&mut d, &mut space, &mut NullSink);
            // Same sums of products, different association order: allow
            // only tiny drift.
            assert!(
                (report.checksum - reference).abs() < 1e-9 * reference.abs().max(1.0),
                "{} checksum {} vs {}",
                report.name,
                report.checksum,
                reference
            );
        }
    }

    #[test]
    fn interchanged_reference_counts_match_paper_formula() {
        // Paper Table 3 (n = 1024): D references = 3n³ (2 loads + 1
        // store per multiply-add), I fetches ≈ 5n³.
        let n = 12;
        let (_s, mut d) = data(n);
        let mut sink = CountingSink::new();
        interchanged(&mut d, &mut sink);
        let n3 = (n * n * n) as u64;
        assert_eq!(sink.reads(), 2 * n3 + n as u64 * n as u64); // + B loads
        assert_eq!(sink.writes(), n3);
        assert_eq!(sink.instructions_executed(), 5 * n3);
    }

    #[test]
    fn transposed_reference_counts_match_paper_formula() {
        // 2 loads per multiply-add + 1 store per element + 2 transposes.
        let n = 12;
        let (_s, mut d) = data(n);
        let mut sink = CountingSink::new();
        transposed(&mut d, &mut sink);
        let n = n as u64;
        let transpose_refs = 2 * (n * (n - 1) / 2) * 4;
        assert_eq!(
            sink.reads() + sink.writes(),
            2 * n * n * n + n * n + transpose_refs
        );
        // 3.5 instructions per multiply-add (n even: no remainder).
        assert_eq!(
            sink.instructions_executed(),
            7 * n * n * n / 2 + TRANSPOSE_INSTR_PER_PAIR * (n * (n - 1) / 2) * 2
        );
    }

    #[test]
    fn tiled_does_fewer_data_references_than_untiled() {
        let n = 24;
        let (_s, mut d) = data(n);
        let mut untiled_sink = CountingSink::new();
        interchanged(&mut d, &mut untiled_sink);
        d.reset();
        let mut tiled_sink = CountingSink::new();
        let mut space = AddressSpace::new();
        tiled_interchanged(
            &mut d,
            TileConfig { kc: 8, mc: 12 },
            &mut space,
            &mut tiled_sink,
        );
        assert!(
            tiled_sink.data_references() < untiled_sink.data_references() / 2,
            "tiled {} vs untiled {}",
            tiled_sink.data_references(),
            untiled_sink.data_references()
        );
        assert!(tiled_sink.instructions_executed() < untiled_sink.instructions_executed());
    }

    #[test]
    fn threaded_bins_follow_block_size() {
        // Columns of 8 * n bytes; block of 2 columns -> n/2 blocks per
        // dimension -> (n/2)² bins... but A and B are distinct regions,
        // so the bin count is the number of distinct (blockA, blockB)
        // pairs actually touched.
        let n = 16;
        let (_s, mut d) = data(n);
        let col_bytes = 8 * n as u64;
        let config = SchedulerConfig::builder()
            .block_size((2 * col_bytes).next_power_of_two())
            .build()
            .unwrap();
        let report = threaded(&mut d, config, &mut NullSink);
        let sched = report.sched.unwrap();
        // Threads per bin should be uniform: the paper reports "quite
        // uniform" distribution for matmul.
        assert!(sched.bin_size_cv() < 0.6, "cv = {}", sched.bin_size_cv());
    }
}

//! Per-run workload metadata.

use locality_sched::SchedulerStats;
use std::fmt;

/// What a workload run reports besides the trace it emitted: identity,
/// a result checksum for cross-version verification, and — for threaded
/// versions — the scheduling statistics the paper quotes per benchmark
/// (threads, bins, threads per bin).
#[derive(Clone, Debug, Default)]
pub struct WorkloadReport {
    /// Workload and version, e.g. `"matmul/threaded"`.
    pub name: String,
    /// Threads forked and run (0 for unthreaded versions). Feed this to
    /// `SimSink::add_threads` so the timing model charges the paper's
    /// per-thread overhead.
    pub threads: u64,
    /// Scheduler distribution statistics, if the version is threaded.
    pub sched: Option<SchedulerStats>,
    /// A checksum of the numerical result, for cheap cross-version
    /// comparison in tests and harnesses.
    pub checksum: f64,
}

impl WorkloadReport {
    /// Creates a report for an unthreaded version.
    pub fn unthreaded(name: impl Into<String>, checksum: f64) -> Self {
        WorkloadReport {
            name: name.into(),
            threads: 0,
            sched: None,
            checksum,
        }
    }

    /// Creates a report for a threaded version.
    pub fn threaded(name: impl Into<String>, checksum: f64, sched: SchedulerStats) -> Self {
        WorkloadReport {
            name: name.into(),
            threads: sched.threads(),
            sched: Some(sched),
            checksum,
        }
    }
}

impl fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(sched) = &self.sched {
            write!(f, " [{sched}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthreaded_report_has_no_sched() {
        let r = WorkloadReport::unthreaded("matmul/interchanged", 1.5);
        assert_eq!(r.threads, 0);
        assert!(r.sched.is_none());
        assert_eq!(r.to_string(), "matmul/interchanged");
    }
}

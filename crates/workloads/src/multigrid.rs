//! A multigrid V-cycle Poisson solver — the surrounding application the
//! paper's PDE kernel is "meant to be nested inside" (§4.3: "The first
//! is meant to be nested inside a multigrid partial differential
//! equation solver … When multigrid is used, i > 1"). The paper
//! benchmarks only the smoother; this module supplies the full solver,
//! with the smoother in each of the paper's three flavours.
//!
//! Standard components on the 5-point Laplacian (`4u − Σ neighbours =
//! b`): red-black Gauss–Seidel smoothing, full-weighting restriction of
//! the residual, bilinear prolongation of the correction, and a
//! recursively-smoothed coarsest level. All three smoothers perform
//! each point update with identical operands, so whole V-cycles agree
//! bitwise across versions.

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use locality_sched::{Hints, RunMode, Scheduler, SchedulerConfig};
use memtrace::{AddressSpace, MatrixLayout, TraceSink, TracedMatrix};

/// Instructions per smoothing update.
const SMOOTH_INSTRUCTIONS: u64 = 14;
/// Instructions per residual point.
const RESIDUAL_INSTRUCTIONS: u64 = 16;
/// Instructions per restriction point.
const RESTRICT_INSTRUCTIONS: u64 = 20;
/// Instructions per prolongation point.
const PROLONG_INSTRUCTIONS: u64 = 12;

/// Which smoother the V-cycle uses at every level — the paper's three
/// PDE versions.
#[derive(Clone, Copy, Debug)]
pub enum Smoother {
    /// Full red sweep then full black sweep (paper: *regular*).
    Regular,
    /// Line-fused red/black sweeps (paper: *cache-conscious*).
    CacheConscious,
    /// One locality-scheduled thread per fused line pair (paper:
    /// *threaded*), with the given scheduler configuration.
    Threaded(SchedulerConfig),
}

/// One grid level: solution, right-hand side, residual.
#[derive(Clone, Debug)]
struct Level {
    u: TracedMatrix,
    b: TracedMatrix,
    r: TracedMatrix,
    n: usize,
}

impl Level {
    fn new(space: &mut AddressSpace, n: usize) -> Self {
        Level {
            u: TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor),
            b: TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor),
            r: TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor),
            n,
        }
    }
}

/// A multigrid hierarchy for `−∇²u = f` on the unit square with zero
/// boundary, discretized on an `n × n` grid (`n = 2^k + 1`).
///
/// # Examples
///
/// ```
/// use memtrace::{AddressSpace, NullSink};
/// use workloads::multigrid::{Multigrid, Smoother};
///
/// let mut space = AddressSpace::new();
/// let mut mg = Multigrid::new(&mut space, 33, 7);
/// let before = mg.residual_norm(&mut NullSink);
/// for _ in 0..4 {
///     mg.v_cycle(2, 2, Smoother::CacheConscious, &mut NullSink);
/// }
/// assert!(mg.residual_norm(&mut NullSink) < before / 100.0);
/// ```
#[derive(Clone, Debug)]
pub struct Multigrid {
    levels: Vec<Level>,
}

impl Multigrid {
    /// Builds the hierarchy for a fine grid of dimension `n`
    /// (`n = 2^k + 1`), with a deterministic pseudo-random right-hand
    /// side from `seed`; coarser levels halve down to 3.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `n - 1` is not a power of two.
    pub fn new(space: &mut AddressSpace, n: usize, seed: u64) -> Self {
        assert!(n >= 3, "grid must have interior points");
        assert!(
            (n - 1).is_power_of_two(),
            "multigrid needs n = 2^k + 1, got {n}"
        );
        let mut levels = Vec::new();
        let mut size = n;
        while size >= 3 {
            levels.push(Level::new(space, size));
            if size == 3 {
                break;
            }
            size = (size - 1) / 2 + 1;
        }
        // Fine-level right-hand side.
        let mut state = seed | 1;
        let fine = &mut levels[0];
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                fine.b
                    .set_untraced(i2, i3, (state % 2048) as f64 / 2048.0 - 0.5);
            }
        }
        Multigrid { levels }
    }

    /// Number of levels in the hierarchy.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Fine-grid dimension.
    pub fn n(&self) -> usize {
        self.levels[0].n
    }

    /// Fine-grid solution value (untraced test helper).
    pub fn solution_at(&self, i: usize, j: usize) -> f64 {
        self.levels[0].u.at(i, j)
    }

    /// Sum over the fine solution — a cheap checksum.
    pub fn checksum(&self) -> f64 {
        self.levels[0].u.checksum()
    }

    /// Computes the fine-grid residual (traced) and returns its
    /// infinity norm.
    pub fn residual_norm<S: TraceSink>(&mut self, sink: &mut S) -> f64 {
        residual(&mut self.levels[0], sink);
        let level = &self.levels[0];
        let mut max = 0.0f64;
        for i3 in 1..level.n - 1 {
            for i2 in 1..level.n - 1 {
                max = max.max(level.r.at(i2, i3).abs());
            }
        }
        max
    }

    /// Runs one V-cycle: `pre` smoothing sweeps down, `post` sweeps up.
    pub fn v_cycle<S: TraceSink>(
        &mut self,
        pre: usize,
        post: usize,
        smoother: Smoother,
        sink: &mut S,
    ) {
        self.descend(0, pre, post, smoother, sink);
    }

    fn descend<S: TraceSink>(
        &mut self,
        depth: usize,
        pre: usize,
        post: usize,
        smoother: Smoother,
        sink: &mut S,
    ) {
        if depth + 1 == self.levels.len() {
            // Coarsest level: smooth hard (the grid is tiny).
            smooth(&mut self.levels[depth], 30, smoother, sink);
            return;
        }
        smooth(&mut self.levels[depth], pre, smoother, sink);
        residual(&mut self.levels[depth], sink);
        let (fine, coarse) = {
            let (a, b) = self.levels.split_at_mut(depth + 1);
            (&mut a[depth], &mut b[0])
        };
        restrict(fine, coarse, sink);
        self.descend(depth + 1, pre, post, smoother, sink);
        let (fine, coarse) = {
            let (a, b) = self.levels.split_at_mut(depth + 1);
            (&mut a[depth], &mut b[0])
        };
        prolong_add(coarse, fine, sink);
        smooth(&mut self.levels[depth], post, smoother, sink);
    }
}

/// Is the point (i2, i3) red?
#[inline]
fn is_red(i2: usize, i3: usize) -> bool {
    (i2 + i3).is_multiple_of(2)
}

/// One Gauss–Seidel update of the 5-point Laplacian:
/// `u = ¼ (b + up + down + left + right)`.
#[inline]
fn relax_point<S: TraceSink>(level: &mut Level, i2: usize, i3: usize, sink: &mut S) {
    let b = level.b.get(i2, i3, sink);
    let up = level.u.get(i2 - 1, i3, sink);
    let down = level.u.get(i2 + 1, i3, sink);
    let left = level.u.get(i2, i3 - 1, sink);
    let right = level.u.get(i2, i3 + 1, sink);
    level
        .u
        .set(i2, i3, 0.25 * (b + up + down + left + right), sink);
    sink.instructions(SMOOTH_INSTRUCTIONS);
}

#[inline]
fn relax_line<S: TraceSink>(level: &mut Level, i3: usize, red: bool, sink: &mut S) {
    let n = level.n;
    let start = 1 + usize::from(is_red(1, i3) != red);
    let mut i2 = start;
    while i2 < n - 1 {
        relax_point(level, i2, i3, sink);
        i2 += 2;
    }
}

/// One fused step: red line `i3`, black line `i3 − 1` — the
/// cache-conscious/threaded schedule, dependence-equivalent to the
/// regular sweeps.
#[inline]
fn fused_step<S: TraceSink>(level: &mut Level, i3: usize, sink: &mut S) {
    let n = level.n;
    if (1..n - 1).contains(&i3) {
        relax_line(level, i3, true, sink);
    }
    if i3 >= 2 && i3 - 1 < n - 1 {
        relax_line(level, i3 - 1, false, sink);
    }
}

struct MgCtx<'a, S> {
    level: &'a mut Level,
    sink: &'a mut S,
}

fn mg_thread<S: TraceSink>(ctx: &mut MgCtx<'_, S>, i3: usize, _unused: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    fused_step(ctx.level, i3, ctx.sink);
}

fn smooth<S: TraceSink>(level: &mut Level, iters: usize, smoother: Smoother, sink: &mut S) {
    let n = level.n;
    match smoother {
        Smoother::Regular => {
            for _ in 0..iters {
                for red in [true, false] {
                    for i3 in 1..n - 1 {
                        relax_line(level, i3, red, sink);
                    }
                }
            }
        }
        Smoother::CacheConscious => {
            for _ in 0..iters {
                for i3 in 1..=n {
                    fused_step(level, i3, sink);
                }
            }
        }
        Smoother::Threaded(config) => {
            for _ in 0..iters {
                let mut sched: Scheduler<MgCtx<'_, S>> = Scheduler::new(config);
                sched.trace_package_memory();
                for i3 in 1..=n {
                    let hint_line = i3.min(n - 1);
                    sched.fork_traced(
                        mg_thread::<S>,
                        i3,
                        0,
                        Hints::one(level.u.col_addr(hint_line)),
                        sink,
                    );
                    sink.instructions(FORK_INSTRUCTIONS);
                }
                let mut ctx = MgCtx { level, sink };
                sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
            }
        }
    }
}

/// `r = b − (4u − Σ neighbours)` over the interior.
fn residual<S: TraceSink>(level: &mut Level, sink: &mut S) {
    let n = level.n;
    for i3 in 1..n - 1 {
        for i2 in 1..n - 1 {
            let b = level.b.get(i2, i3, sink);
            let c = level.u.get(i2, i3, sink);
            let up = level.u.get(i2 - 1, i3, sink);
            let down = level.u.get(i2 + 1, i3, sink);
            let left = level.u.get(i2, i3 - 1, sink);
            let right = level.u.get(i2, i3 + 1, sink);
            level
                .r
                .set(i2, i3, b - (4.0 * c - up - down - left - right), sink);
            sink.instructions(RESIDUAL_INSTRUCTIONS);
        }
    }
}

/// Full-weighting restriction of the fine residual into the coarse
/// right-hand side; the coarse solution starts at zero.
fn restrict<S: TraceSink>(fine: &mut Level, coarse: &mut Level, sink: &mut S) {
    let nc = coarse.n;
    for j in 0..nc {
        for i in 0..nc {
            coarse.u.set(i, j, 0.0, sink);
        }
    }
    for j in 1..nc - 1 {
        for i in 1..nc - 1 {
            let (fi, fj) = (2 * i, 2 * j);
            let center = fine.r.get(fi, fj, sink);
            let edges = fine.r.get(fi - 1, fj, sink)
                + fine.r.get(fi + 1, fj, sink)
                + fine.r.get(fi, fj - 1, sink)
                + fine.r.get(fi, fj + 1, sink);
            let corners = fine.r.get(fi - 1, fj - 1, sink)
                + fine.r.get(fi - 1, fj + 1, sink)
                + fine.r.get(fi + 1, fj - 1, sink)
                + fine.r.get(fi + 1, fj + 1, sink);
            // Full weighting, scaled by 4 (the coarse mesh width is 2h,
            // and b absorbs the h² of the discrete operator).
            coarse.b.set(
                i,
                j,
                4.0 * (4.0 * center + 2.0 * edges + corners) / 16.0,
                sink,
            );
            sink.instructions(RESTRICT_INSTRUCTIONS);
        }
    }
}

/// Bilinear prolongation of the coarse correction, added into the fine
/// solution.
fn prolong_add<S: TraceSink>(coarse: &mut Level, fine: &mut Level, sink: &mut S) {
    let nf = fine.n;
    for fj in 1..nf - 1 {
        for fi in 1..nf - 1 {
            let (ci, cr) = (fi / 2, fi % 2);
            let (cj, cc) = (fj / 2, fj % 2);
            let correction = match (cr, cc) {
                (0, 0) => coarse.u.get(ci, cj, sink),
                (1, 0) => 0.5 * (coarse.u.get(ci, cj, sink) + coarse.u.get(ci + 1, cj, sink)),
                (0, 1) => 0.5 * (coarse.u.get(ci, cj, sink) + coarse.u.get(ci, cj + 1, sink)),
                _ => {
                    0.25 * (coarse.u.get(ci, cj, sink)
                        + coarse.u.get(ci + 1, cj, sink)
                        + coarse.u.get(ci, cj + 1, sink)
                        + coarse.u.get(ci + 1, cj + 1, sink))
                }
            };
            let current = fine.u.get(fi, fj, sink);
            fine.u.set(fi, fj, current + correction, sink);
            sink.instructions(PROLONG_INSTRUCTIONS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::NullSink;

    fn mg(n: usize) -> Multigrid {
        let mut space = AddressSpace::new();
        Multigrid::new(&mut space, n, 5)
    }

    #[test]
    fn hierarchy_has_the_right_depth() {
        let m = mg(65);
        assert_eq!(m.levels(), 6); // 65, 33, 17, 9, 5, 3
        assert_eq!(m.n(), 65);
    }

    #[test]
    fn v_cycles_converge_fast() {
        let mut m = mg(65);
        let initial = m.residual_norm(&mut NullSink);
        m.v_cycle(2, 2, Smoother::CacheConscious, &mut NullSink);
        let after_one = m.residual_norm(&mut NullSink);
        assert!(
            after_one < initial / 4.0,
            "one V-cycle: {initial} -> {after_one}"
        );
        for _ in 0..5 {
            m.v_cycle(2, 2, Smoother::CacheConscious, &mut NullSink);
        }
        let after_six = m.residual_norm(&mut NullSink);
        assert!(
            after_six < initial / 1e4,
            "six V-cycles: {initial} -> {after_six}"
        );
    }

    #[test]
    fn v_cycle_beats_plain_smoothing_at_equal_sweeps() {
        // One V-cycle does ~2(pre+post) sweeps of work across levels;
        // give plain smoothing many more fine-grid sweeps and still
        // lose.
        let mut plain = mg(65);
        let initial = plain.residual_norm(&mut NullSink);
        smooth(
            &mut plain.levels[0],
            20,
            Smoother::CacheConscious,
            &mut NullSink,
        );
        let smoothed = plain.residual_norm(&mut NullSink);

        let mut cycled = mg(65);
        cycled.v_cycle(2, 2, Smoother::CacheConscious, &mut NullSink);
        let after_cycle = cycled.residual_norm(&mut NullSink);
        assert!(
            after_cycle < smoothed,
            "V-cycle {after_cycle} vs 20 sweeps {smoothed} (from {initial})"
        );
    }

    #[test]
    fn all_smoothers_agree_bitwise() {
        let reference = {
            let mut m = mg(33);
            m.v_cycle(2, 2, Smoother::Regular, &mut NullSink);
            m.v_cycle(2, 2, Smoother::Regular, &mut NullSink);
            m
        };
        for smoother in [
            Smoother::CacheConscious,
            Smoother::Threaded(SchedulerConfig::builder().block_size(4096).build().unwrap()),
        ] {
            let mut m = mg(33);
            m.v_cycle(2, 2, smoother, &mut NullSink);
            m.v_cycle(2, 2, smoother, &mut NullSink);
            for i in 0..33 {
                for j in 0..33 {
                    assert_eq!(
                        m.solution_at(i, j).to_bits(),
                        reference.solution_at(i, j).to_bits(),
                        "({i},{j}) under {smoother:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn traced_cycle_emits_references() {
        use memtrace::CountingSink;
        let mut m = mg(33);
        let mut sink = CountingSink::new();
        m.v_cycle(1, 1, Smoother::Regular, &mut sink);
        assert!(sink.data_references() > 33 * 33 * 4);
        assert!(sink.instructions_executed() > 0);
    }

    #[test]
    #[should_panic(expected = "2^k + 1")]
    fn rejects_bad_grid_size() {
        let mut space = AddressSpace::new();
        let _ = Multigrid::new(&mut space, 40, 1);
    }
}

//! The Barnes–Hut octree (reference [6] of the paper): build,
//! centre-of-mass computation, and θ-opening force evaluation, all
//! traced through the node arena.

use super::{Body, ACC_OFFSET, BODY_POS_MASS_BYTES};
use memtrace::{AddressSpace, TraceSink, TracedBuf};

/// Bodies a leaf can hold before splitting (stored in the `children`
/// slots).
pub const LEAF_CAPACITY: usize = 8;

/// Maximum insertion depth; exceeding it means two bodies coincide.
const MAX_DEPTH: usize = 64;

const NIL: u32 = u32::MAX;

/// One octree node. Layout is fixed (`repr(C)`) because traced field
/// accesses name byte offsets.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Centre of mass of the subtree.
    pub com: [f64; 3],
    /// Total mass of the subtree.
    pub mass: f64,
    /// Geometric centre of the cell.
    pub center: [f64; 3],
    /// Half the cell's side length.
    pub half: f64,
    /// Child node ids for internal nodes; resident body ids for leaves.
    pub children: [u32; 8],
    /// Bodies in the subtree (for a leaf: bodies resident).
    pub count: u32,
    /// 1 if this node is a leaf.
    pub leaf: u32,
    /// Pads the node to exactly one 128-byte L2 line, so a node visit
    /// never straddles two lines — the alignment any performance-aware
    /// arena allocator would choose.
    pad: [u64; 3],
}

impl Default for Node {
    fn default() -> Self {
        Node {
            com: [0.0; 3],
            mass: 0.0,
            center: [0.0; 3],
            half: 0.0,
            children: [NIL; 8],
            count: 0,
            leaf: 1,
            pad: [0; 3],
        }
    }
}

/// Byte offset of the `com`+`mass` group (read on every interaction).
const COM_MASS_OFFSET: u64 = 0;
const COM_MASS_BYTES: u32 = 32;
/// Byte offset of the `center`+`half` group (read by the opening test
/// and insertion descent).
const GEOM_OFFSET: u64 = 32;
const GEOM_BYTES: u32 = 32;
/// Byte offset of the `children` array.
const CHILDREN_OFFSET: u64 = 64;
const CHILDREN_BYTES: u32 = 32;
/// Byte offset of the `count`+`leaf` metadata.
const META_OFFSET: u64 = 96;
const META_BYTES: u32 = 8;

/// Instructions charged per node visited during insertion descent.
pub const INSERT_STEP_INSTRUCTIONS: u64 = 12;
/// Instructions charged per node whose centre of mass is combined.
pub const COM_INSTRUCTIONS: u64 = 14;
/// Instructions charged per opening test during force traversal.
pub const OPEN_TEST_INSTRUCTIONS: u64 = 14;
/// Instructions charged per accepted gravitational interaction
/// (distance, square root, accumulate).
pub const INTERACTION_INSTRUCTIONS: u64 = 28;

/// A Barnes–Hut octree over a fixed-capacity traced node arena.
///
/// The arena is allocated once and reused across timesteps ("the BH
/// tree is rebuilt for each iteration"), so node addresses are stable
/// — as they would be with a real arena allocator.
#[derive(Clone, Debug)]
pub struct BhTree {
    nodes: TracedBuf<Node>,
    len: usize,
}

impl BhTree {
    /// Allocates an arena able to hold the tree of `max_bodies` bodies.
    pub fn with_capacity(space: &mut AddressSpace, max_bodies: usize) -> Self {
        // With leaf capacity 8, internal nodes number well under the
        // body count; 4x is comfortable for clustered distributions.
        let capacity = (4 * max_bodies).max(64);
        BhTree {
            nodes: TracedBuf::new(space, capacity),
            len: 0,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root node id.
    pub fn root(&self) -> u32 {
        0
    }

    fn alloc_node<S: TraceSink>(&mut self, center: [f64; 3], half: f64, sink: &mut S) -> u32 {
        assert!(
            self.len < self.nodes.len(),
            "tree arena exhausted ({} nodes); raise the arena capacity",
            self.len
        );
        let id = self.len as u32;
        self.len += 1;
        {
            let node = self
                .nodes
                .write_field(id as usize, GEOM_OFFSET, GEOM_BYTES, sink);
            *node = Node::default();
            node.center = center;
            node.half = half;
        }
        // Children + metadata initialization (contiguous 40 bytes).
        let _ = self.nodes.write_field(
            id as usize,
            CHILDREN_OFFSET,
            CHILDREN_BYTES + META_BYTES,
            sink,
        );
        id
    }

    /// Rebuilds the tree over `bodies` (a fresh root each call), using
    /// the bounding cube `center ± half`.
    pub fn build<S: TraceSink>(
        &mut self,
        bodies: &TracedBuf<Body>,
        center: [f64; 3],
        half: f64,
        sink: &mut S,
    ) {
        self.len = 0;
        self.alloc_node(center, half, sink);
        for i in 0..bodies.len() {
            let pos = {
                let b = bodies.read_field(i, 0, BODY_POS_MASS_BYTES, sink);
                b.pos
            };
            self.insert(i as u32, pos, bodies, sink);
        }
        self.compute_mass(0, bodies, sink);
    }

    fn insert<S: TraceSink>(
        &mut self,
        body: u32,
        pos: [f64; 3],
        bodies: &TracedBuf<Body>,
        sink: &mut S,
    ) {
        self.insert_from(0, body, pos, bodies, sink);
    }

    /// Inserts `body` by descending from node `start`. Splitting a full
    /// leaf redistributes its residents recursively from the split
    /// node.
    fn insert_from<S: TraceSink>(
        &mut self,
        start: u32,
        body: u32,
        pos: [f64; 3],
        bodies: &TracedBuf<Body>,
        sink: &mut S,
    ) {
        let mut cur = start;
        for _depth in 0..MAX_DEPTH {
            sink.instructions(INSERT_STEP_INSTRUCTIONS);
            let (is_leaf, count, center, half) = {
                let node = self
                    .nodes
                    .read_field(cur as usize, META_OFFSET, META_BYTES, sink);
                (node.leaf == 1, node.count, node.center, node.half)
            };
            let _ = self
                .nodes
                .read_field(cur as usize, GEOM_OFFSET, GEOM_BYTES, sink);
            if is_leaf {
                if (count as usize) < LEAF_CAPACITY {
                    let node =
                        self.nodes
                            .write_field(cur as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                    node.children[count as usize] = body;
                    node.count = count + 1;
                    let _ = self
                        .nodes
                        .write_field(cur as usize, META_OFFSET, META_BYTES, sink);
                    return;
                }
                // Split: convert to an internal node and reinsert the
                // residents below.
                let residents = {
                    let node =
                        self.nodes
                            .read_field(cur as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                    node.children
                };
                {
                    let node =
                        self.nodes
                            .write_field(cur as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                    node.children = [NIL; 8];
                    node.leaf = 0;
                    let _ = self
                        .nodes
                        .write_field(cur as usize, META_OFFSET, META_BYTES, sink);
                }
                let _ = (center, half);
                for resident in residents.iter().take(count as usize) {
                    let rpos = {
                        let b = bodies.read_field(*resident as usize, 0, BODY_POS_MASS_BYTES, sink);
                        b.pos
                    };
                    self.insert_from(cur, *resident, rpos, bodies, sink);
                }
                // Fall through: `cur` is now internal; continue the
                // descent for the new body on the next loop turn.
                continue;
            }
            // Internal: descend into (or create) the octant child.
            let octant = octant_of(center, pos);
            let child = {
                let node =
                    self.nodes
                        .read_field(cur as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                node.children[octant]
            };
            if child == NIL {
                let (ccenter, chalf) = child_cell(center, half, octant);
                let new_child = self.alloc_node(ccenter, chalf, sink);
                {
                    let node =
                        self.nodes
                            .write_field(cur as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                    node.children[octant] = new_child;
                }
                let leaf = self.nodes.write_field(
                    new_child as usize,
                    CHILDREN_OFFSET,
                    CHILDREN_BYTES,
                    sink,
                );
                leaf.children[0] = body;
                leaf.count = 1;
                let _ = self
                    .nodes
                    .write_field(new_child as usize, META_OFFSET, META_BYTES, sink);
                return;
            }
            cur = child;
        }
        panic!("octree insertion exceeded depth {MAX_DEPTH}: coincident bodies?");
    }

    fn compute_mass<S: TraceSink>(
        &mut self,
        id: u32,
        bodies: &TracedBuf<Body>,
        sink: &mut S,
    ) -> (f64, [f64; 3]) {
        sink.instructions(COM_INSTRUCTIONS);
        let (is_leaf, count, children) = {
            let node = self
                .nodes
                .read_field(id as usize, META_OFFSET, META_BYTES, sink);
            (node.leaf == 1, node.count, node.children)
        };
        let _ = self
            .nodes
            .read_field(id as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
        let mut mass = 0.0;
        let mut weighted = [0.0f64; 3];
        if is_leaf {
            for body in children.iter().take(count as usize) {
                let (bpos, bmass) = {
                    let b = bodies.read_field(*body as usize, 0, BODY_POS_MASS_BYTES, sink);
                    (b.pos, b.mass)
                };
                mass += bmass;
                for d in 0..3 {
                    weighted[d] += bmass * bpos[d];
                }
                sink.instructions(8);
            }
        } else {
            for child in children {
                if child == NIL {
                    continue;
                }
                let (cmass, ccom) = self.compute_mass(child, bodies, sink);
                mass += cmass;
                for d in 0..3 {
                    weighted[d] += cmass * ccom[d];
                }
            }
        }
        let com = if mass > 0.0 {
            [weighted[0] / mass, weighted[1] / mass, weighted[2] / mass]
        } else {
            [0.0; 3]
        };
        {
            let node = self
                .nodes
                .write_field(id as usize, COM_MASS_OFFSET, COM_MASS_BYTES, sink);
            node.mass = mass;
            node.com = com;
        }
        (mass, com)
    }

    /// Computes the gravitational acceleration on `body` by traversing
    /// the tree with opening angle `theta` and Plummer softening `eps`,
    /// and stores it into the body's `acc` field (traced).
    pub fn accelerate<S: TraceSink>(
        &self,
        body: usize,
        bodies: &mut TracedBuf<Body>,
        theta: f64,
        eps: f64,
        sink: &mut S,
    ) {
        let (pos, _mass) = {
            let b = bodies.read_field(body, 0, BODY_POS_MASS_BYTES, sink);
            (b.pos, b.mass)
        };
        sink.instructions(10);
        let mut acc = [0.0f64; 3];
        let mut stack: Vec<u32> = vec![0];
        while let Some(id) = stack.pop() {
            sink.instructions(OPEN_TEST_INSTRUCTIONS);
            let (com, mass, half, is_leaf, count, children) = {
                let node =
                    self.nodes
                        .read_field(id as usize, COM_MASS_OFFSET, COM_MASS_BYTES, sink);
                (
                    node.com,
                    node.mass,
                    node.half,
                    node.leaf == 1,
                    node.count,
                    node.children,
                )
            };
            let _ = self
                .nodes
                .read_field(id as usize, GEOM_OFFSET + 24, 8, sink); // half
            if mass <= 0.0 {
                continue;
            }
            let dx = com[0] - pos[0];
            let dy = com[1] - pos[1];
            let dz = com[2] - pos[2];
            let dist2 = dx * dx + dy * dy + dz * dz;
            if is_leaf {
                let _ = self
                    .nodes
                    .read_field(id as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                for other in children.iter().take(count as usize) {
                    if *other as usize == body {
                        continue;
                    }
                    let (opos, omass) = {
                        let b = bodies.read_field(*other as usize, 0, BODY_POS_MASS_BYTES, sink);
                        (b.pos, b.mass)
                    };
                    accumulate(&mut acc, pos, opos, omass, eps);
                    sink.instructions(INTERACTION_INSTRUCTIONS);
                }
            } else if (2.0 * half) * (2.0 * half) < theta * theta * dist2 {
                // Accept: interact with the aggregate.
                accumulate(&mut acc, pos, com, mass, eps);
                sink.instructions(INTERACTION_INSTRUCTIONS);
            } else {
                let _ = self
                    .nodes
                    .read_field(id as usize, CHILDREN_OFFSET, CHILDREN_BYTES, sink);
                for child in children {
                    if child != NIL {
                        stack.push(child);
                    }
                }
            }
        }
        {
            let b = bodies.write_field(body, ACC_OFFSET, 24, sink);
            b.acc = acc;
        }
        sink.instructions(6);
    }

    /// Collects every body id stored in leaves (test/verification
    /// helper; untraced).
    pub fn collect_bodies(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let node = self.nodes.at(id as usize);
            if node.leaf == 1 {
                out.extend_from_slice(&node.children[..node.count as usize]);
            } else {
                for child in node.children {
                    if child != NIL {
                        stack.push(child);
                    }
                }
            }
        }
        out
    }

    /// Root subtree mass (untraced test helper).
    pub fn total_mass(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nodes.at(0).mass
        }
    }

    /// Root centre of mass (untraced test helper).
    pub fn root_com(&self) -> [f64; 3] {
        self.nodes.at(0).com
    }
}

/// Newtonian attraction of `pos` toward a point mass at `other`.
#[inline]
fn accumulate(acc: &mut [f64; 3], pos: [f64; 3], other: [f64; 3], mass: f64, eps: f64) {
    let dx = other[0] - pos[0];
    let dy = other[1] - pos[1];
    let dz = other[2] - pos[2];
    let dist2 = dx * dx + dy * dy + dz * dz + eps * eps;
    let inv = 1.0 / (dist2 * dist2.sqrt());
    acc[0] += mass * dx * inv;
    acc[1] += mass * dy * inv;
    acc[2] += mass * dz * inv;
}

#[inline]
fn octant_of(center: [f64; 3], pos: [f64; 3]) -> usize {
    usize::from(pos[0] >= center[0])
        | (usize::from(pos[1] >= center[1]) << 1)
        | (usize::from(pos[2] >= center[2]) << 2)
}

#[inline]
fn child_cell(center: [f64; 3], half: f64, octant: usize) -> ([f64; 3], f64) {
    let q = half / 2.0;
    (
        [
            center[0] + if octant & 1 != 0 { q } else { -q },
            center[1] + if octant & 2 != 0 { q } else { -q },
            center[2] + if octant & 4 != 0 { q } else { -q },
        ],
        q,
    )
}

//! The N-body benchmark, §4.4 of the paper: a three-dimensional
//! Barnes–Hut simulation. "Unlike the dense linear algebra programs,
//! N-body is an irregular and dynamic program … Since no memory
//! reference information is available at compile time, automatic tiling
//! is not feasible" — the case the thread package exists for.
//!
//! Each timestep rebuilds the Barnes–Hut octree, computes every body's
//! acceleration by θ-opening traversal (>88 % of the run time in the
//! paper's profile), and integrates with leapfrog. The two versions of
//! Table 8:
//!
//! * [`unthreaded`] — bodies processed in storage order, which is
//!   random in space, so consecutive force computations share little of
//!   the tree beyond its top levels.
//! * [`threaded`] — "the threaded version computes the new positions by
//!   forking one thread per body with three hints: the x, y, and z
//!   coordinates of the body. We normalized the positions to the unit
//!   cube and then scaled them to the dimensions of the scheduling
//!   plane. Thus, threads in the same scheduling block were computing
//!   the new positions of bodies that \[are\] near each other in space."
//!
//! Both versions compute identical forces from the same tree, so their
//! trajectories agree bitwise (asserted in tests).

mod tree;

pub use tree::{BhTree, LEAF_CAPACITY};

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use crate::WorkloadReport;
use locality_sched::{
    Addr, BinPolicy, Hints, PaperBlockHash, RunMode, Scheduler, SchedulerConfig, SchedulerStats,
};
use memtrace::{AddressSpace, TraceSink, TracedBuf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One body. Layout is fixed (`repr(C)`) because traced accesses name
/// byte offsets.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Mass.
    pub mass: f64,
    /// Velocity.
    pub vel: [f64; 3],
    /// Acceleration (written by the force phase).
    pub acc: [f64; 3],
}

/// Bytes covering `pos` + `mass` (the fields force evaluation reads).
pub(crate) const BODY_POS_MASS_BYTES: u32 = 32;
/// Byte offset of `vel`.
pub(crate) const VEL_OFFSET: u64 = 32;
/// Byte offset of `acc`.
pub(crate) const ACC_OFFSET: u64 = 56;

/// Instructions per body for the leapfrog integration step.
pub const INTEGRATE_INSTRUCTIONS: u64 = 30;

/// Simulation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NBodyParams {
    /// Opening angle θ of the Barnes–Hut acceptance test (0 = exact).
    pub theta: f64,
    /// Plummer softening length.
    pub eps: f64,
    /// Leapfrog timestep.
    pub dt: f64,
    /// Extent, in hint-address bytes per dimension, of the scheduling
    /// plane the unit cube is scaled onto (paper §4.4: "we normalized
    /// the positions to the unit cube and then scaled them to the
    /// dimensions of the scheduling plane"). The plane is a property of
    /// the experiment, fixed independently of the scheduler's block
    /// size, so that sweeping the block size (Figure 4) coarsens or
    /// refines the binning. A good choice is ~4/3 of the L2 size: the
    /// package-default block (L2/3) then cuts each dimension into 4.
    pub plane_extent: u64,
    /// How many position coordinates become scheduling hints (1–3).
    /// The paper uses all three; lower dimensionalities exist for the
    /// hint-dimensionality ablation (its §6 notes experiments were
    /// "limited to 3 address hints").
    pub hint_dims: usize,
}

impl Default for NBodyParams {
    fn default() -> Self {
        NBodyParams {
            theta: 0.8,
            eps: 1e-3,
            dt: 1e-3,
            // 4 blocks per side at the package's default block size
            // (2 MB L2 / 3 dims).
            plane_extent: 4 * ((2 << 20) / 3),
            hint_dims: 3,
        }
    }
}

/// Bodies plus the reusable tree arena.
#[derive(Clone, Debug)]
pub struct NBodyData {
    /// The body vector, in random (spatially unsorted) storage order.
    pub bodies: TracedBuf<Body>,
    tree: BhTree,
}

impl NBodyData {
    /// Creates `n` bodies drawn from a Plummer-like clustered
    /// distribution inside the unit cube (centre-heavy, like the
    /// paper's astrophysical input — "the distribution of threads per
    /// bin was much less uniform than in the other examples. This
    /// corresponds to the distribution of the bodies in the three
    /// dimensional space").
    ///
    /// Storage order is random *within* top-level octants but grouped
    /// *by* octant, the coarse spatial correlation astrophysical
    /// initial-condition generators produce (and that the paper's
    /// modest unthreaded-vs-threaded gap implies its input had). For a
    /// fully random storage order — the worst case for the unthreaded
    /// version — use [`shuffle_storage_order`](Self::shuffle_storage_order).
    pub fn new(space: &mut AddressSpace, n: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bodies = Vec::with_capacity(n);
        for _ in 0..n {
            // Plummer radial profile, truncated, mapped into [0,1]^3.
            let u: f64 = rng.gen_range(1e-6..1.0 - 1e-6);
            let r = 0.15 / (u.powf(-2.0 / 3.0) - 1.0).sqrt().max(0.05);
            let r = r.min(0.49);
            let cos_t: f64 = rng.gen_range(-1.0..1.0);
            let sin_t = (1.0 - cos_t * cos_t).sqrt();
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let pos = [
                0.5 + r * sin_t * phi.cos(),
                0.5 + r * sin_t * phi.sin(),
                0.5 + r * cos_t,
            ];
            let vel = [
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
                rng.gen_range(-0.01..0.01),
            ];
            bodies.push(Body {
                pos,
                mass: 1.0 / n as f64,
                vel,
                acc: [0.0; 3],
            });
        }
        // Group by top-level octant (coarse spatial correlation), keep
        // generation order (random) within each octant.
        bodies.sort_by_key(|b| {
            usize::from(b.pos[0] >= 0.5)
                | (usize::from(b.pos[1] >= 0.5) << 1)
                | (usize::from(b.pos[2] >= 0.5) << 2)
        });
        let bodies = TracedBuf::from_vec(space, bodies);
        let tree = BhTree::with_capacity(space, n);
        NBodyData { bodies, tree }
    }

    /// Randomly permutes the storage order of the bodies (untraced) —
    /// the fully uncorrelated worst case for the unthreaded version,
    /// used by the input-order ablation bench.
    pub fn shuffle_storage_order(&mut self, seed: u64) {
        use rand::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut all = self.snapshot();
        all.shuffle(&mut rng);
        self.restore(&all);
    }

    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Returns `true` if there are no bodies.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Snapshot of all body states (untraced), for version comparison.
    pub fn snapshot(&self) -> Vec<Body> {
        self.bodies.as_slice().to_vec()
    }

    /// Restores body states from a snapshot (untraced).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has the wrong length.
    pub fn restore(&mut self, snapshot: &[Body]) {
        assert_eq!(snapshot.len(), self.len(), "snapshot length mismatch");
        for (i, body) in snapshot.iter().enumerate() {
            *self.bodies.at_mut(i) = *body;
        }
    }

    /// Sum of all position coordinates — a cheap checksum.
    pub fn checksum(&self) -> f64 {
        self.bodies
            .as_slice()
            .iter()
            .map(|b| b.pos[0] + b.pos[1] + b.pos[2])
            .sum()
    }

    /// The most recently built tree (for tests).
    pub fn tree(&self) -> &BhTree {
        &self.tree
    }

    /// Bounding cube of all bodies (untraced; the real code tracks this
    /// incrementally during integration, a negligible cost).
    fn bounding_cube(&self) -> ([f64; 3], f64) {
        if self.bodies.is_empty() {
            return ([0.5; 3], 0.5);
        }
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in self.bodies.as_slice() {
            for d in 0..3 {
                lo[d] = lo[d].min(b.pos[d]);
                hi[d] = hi[d].max(b.pos[d]);
            }
        }
        let center = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let half = (0..3)
            .map(|d| (hi[d] - lo[d]) / 2.0)
            .fold(0.0f64, f64::max)
            .max(1e-9)
            * 1.0001;
        (center, half)
    }

    /// Rebuilds the Barnes–Hut tree over the current positions
    /// (traced).
    pub fn build_tree<S: TraceSink>(&mut self, sink: &mut S) {
        let (center, half) = self.bounding_cube();
        let NBodyData { bodies, tree } = self;
        tree.build(bodies, center, half, sink);
    }

    /// Leapfrog kick-and-drift for every body (traced).
    fn integrate<S: TraceSink>(&mut self, dt: f64, sink: &mut S) {
        for i in 0..self.bodies.len() {
            let (pos, vel, acc) = {
                let b = self.bodies.read_field(i, 0, 80, sink);
                (b.pos, b.vel, b.acc)
            };
            let vel = [
                vel[0] + acc[0] * dt,
                vel[1] + acc[1] * dt,
                vel[2] + acc[2] * dt,
            ];
            let pos = [
                pos[0] + vel[0] * dt,
                pos[1] + vel[1] * dt,
                pos[2] + vel[2] * dt,
            ];
            {
                let b = self.bodies.write_field(i, 0, VEL_OFFSET as u32 + 24, sink);
                b.pos = pos;
                b.vel = vel;
            }
            sink.instructions(INTEGRATE_INSTRUCTIONS);
        }
    }
}

/// Runs `iterations` timesteps with bodies processed in storage order.
pub fn unthreaded<S: TraceSink>(
    data: &mut NBodyData,
    iterations: usize,
    params: NBodyParams,
    sink: &mut S,
) -> WorkloadReport {
    for _ in 0..iterations {
        data.build_tree(sink);
        {
            let NBodyData { bodies, tree } = data;
            for i in 0..bodies.len() {
                tree.accelerate(i, bodies, params.theta, params.eps, sink);
            }
        }
        data.integrate(params.dt, sink);
    }
    WorkloadReport::unthreaded("nbody/unthreaded", data.checksum())
}

struct ForceCtx<'a, S> {
    tree: &'a BhTree,
    bodies: &'a mut TracedBuf<Body>,
    params: NBodyParams,
    sink: &'a mut S,
}

fn force_thread<S: TraceSink>(ctx: &mut ForceCtx<'_, S>, body: usize, _unused: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    ctx.tree
        .accelerate(body, ctx.bodies, ctx.params.theta, ctx.params.eps, ctx.sink);
}

/// Runs `iterations` timesteps, forking one force thread per body per
/// iteration, hinted by the body's position scaled into the scheduling
/// space (3-D hints).
pub fn threaded<S: TraceSink>(
    data: &mut NBodyData,
    iterations: usize,
    params: NBodyParams,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let policy = PaperBlockHash::from_config(&config);
    threaded_with(data, iterations, params, config, policy, sink)
}

/// [`threaded`] under an arbitrary [`BinPolicy`] — force threads within
/// a timestep are independent, so any drain order computes identical
/// accelerations; only the cache behaviour changes.
pub fn threaded_with<S: TraceSink, P: BinPolicy>(
    data: &mut NBodyData,
    iterations: usize,
    params: NBodyParams,
    config: SchedulerConfig,
    policy: P,
    sink: &mut S,
) -> WorkloadReport {
    let mut threads = 0u64;
    let mut last_stats: Option<SchedulerStats> = None;
    for it in 0..iterations {
        data.build_tree(sink);
        let (lo, extent) = {
            let (center, half) = data.bounding_cube();
            (
                [center[0] - half, center[1] - half, center[2] - half],
                2.0 * half,
            )
        };
        // Scale the unit cube onto the fixed scheduling plane; the
        // scheduler's block size then decides how finely the plane is
        // cut into bins.
        let scale = params.plane_extent as f64 / extent;
        let stats = {
            let mut sched: Scheduler<ForceCtx<'_, S>, P> =
                Scheduler::with_policy(config, policy.clone());
            sched.trace_package_memory();
            for i in 0..data.bodies.len() {
                let pos = data.bodies.at(i).pos;
                let hint = |d: usize| {
                    // A null address means "no hint", so offset by one
                    // plane extent to keep coordinate 0 distinct from
                    // "none".
                    let base = params.plane_extent as f64;
                    Addr::new((base + (pos[d] - lo[d]) * scale) as u64)
                };
                let hints = match params.hint_dims {
                    1 => Hints::one(hint(0)),
                    2 => Hints::two(hint(0), hint(1)),
                    _ => Hints::three(hint(0), hint(1), hint(2)),
                };
                sched.fork_traced(force_thread::<S>, i, 0, hints, sink);
                sink.instructions(FORK_INSTRUCTIONS);
            }
            let stats = sched.stats();
            let NBodyData { bodies, tree } = &mut *data;
            let mut ctx = ForceCtx {
                tree,
                bodies,
                params,
                sink,
            };
            sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
            stats
        };
        threads += stats.threads();
        if it + 1 == iterations {
            last_stats = Some(stats);
        }
        data.integrate(params.dt, sink);
    }
    let mut report = WorkloadReport::threaded(
        "nbody/threaded",
        data.checksum(),
        last_stats.unwrap_or_default(),
    );
    report.threads = threads;
    report
}

/// Direct O(n²) force summation (untraced reference for tests).
pub fn direct_accelerations(data: &NBodyData, eps: f64) -> Vec<[f64; 3]> {
    let bodies = data.bodies.as_slice();
    let mut out = vec![[0.0f64; 3]; bodies.len()];
    for (i, acc) in out.iter_mut().enumerate() {
        for (j, other) in bodies.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = other.pos[0] - bodies[i].pos[0];
            let dy = other.pos[1] - bodies[i].pos[1];
            let dz = other.pos[2] - bodies[i].pos[2];
            let dist2 = dx * dx + dy * dy + dz * dz + eps * eps;
            let inv = 1.0 / (dist2 * dist2.sqrt());
            acc[0] += other.mass * dx * inv;
            acc[1] += other.mass * dy * inv;
            acc[2] += other.mass * dz * inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CountingSink, NullSink};

    fn data(n: usize) -> NBodyData {
        let mut space = AddressSpace::new();
        NBodyData::new(&mut space, n, 2024)
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(1 << 16)
            .build()
            .unwrap()
    }

    #[test]
    fn body_layout_matches_offsets() {
        assert_eq!(std::mem::size_of::<Body>(), 80);
        assert_eq!(std::mem::offset_of!(Body, pos), 0);
        assert_eq!(std::mem::offset_of!(Body, mass), 24);
        assert_eq!(std::mem::offset_of!(Body, vel), VEL_OFFSET as usize);
        assert_eq!(std::mem::offset_of!(Body, acc), ACC_OFFSET as usize);
    }

    #[test]
    fn tree_contains_every_body_once() {
        let mut d = data(500);
        d.build_tree(&mut NullSink);
        let mut ids = d.tree().collect_bodies();
        ids.sort_unstable();
        assert_eq!(ids, (0..500u32).collect::<Vec<_>>());
    }

    #[test]
    fn tree_conserves_mass_and_com() {
        let mut d = data(300);
        d.build_tree(&mut NullSink);
        let total: f64 = d.bodies.as_slice().iter().map(|b| b.mass).sum();
        assert!((d.tree().total_mass() - total).abs() < 1e-12);
        let mut com = [0.0f64; 3];
        for b in d.bodies.as_slice() {
            for (c, p) in com.iter_mut().zip(b.pos) {
                *c += b.mass * p;
            }
        }
        for (dim, c) in com.iter().enumerate() {
            assert!((d.tree().root_com()[dim] - c / total).abs() < 1e-9);
        }
    }

    #[test]
    fn theta_zero_matches_direct_sum() {
        let mut d = data(120);
        let eps = 1e-3;
        d.build_tree(&mut NullSink);
        let direct = direct_accelerations(&d, eps);
        {
            let NBodyData { bodies, tree } = &mut d;
            for i in 0..bodies.len() {
                tree.accelerate(i, bodies, 0.0, eps, &mut NullSink);
            }
        }
        for (i, expect) in direct.iter().enumerate() {
            let got = d.bodies.at(i).acc;
            for dim in 0..3 {
                let scale = expect[dim].abs().max(1.0);
                assert!(
                    (got[dim] - expect[dim]).abs() < 1e-9 * scale,
                    "body {i} dim {dim}: {} vs {}",
                    got[dim],
                    expect[dim]
                );
            }
        }
    }

    #[test]
    fn positive_theta_approximates_direct_sum() {
        let mut d = data(200);
        let eps = 1e-3;
        d.build_tree(&mut NullSink);
        let direct = direct_accelerations(&d, eps);
        {
            let NBodyData { bodies, tree } = &mut d;
            for i in 0..bodies.len() {
                tree.accelerate(i, bodies, 0.5, eps, &mut NullSink);
            }
        }
        // Aggregate relative error should be small at theta = 0.5.
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, expect) in direct.iter().enumerate() {
            let got = d.bodies.at(i).acc;
            for dim in 0..3 {
                num += (got[dim] - expect[dim]).abs();
                den += expect[dim].abs();
            }
        }
        let rel = num / den;
        assert!(rel < 0.05, "theta=0.5 relative error {rel}");
    }

    #[test]
    fn threaded_matches_unthreaded_bitwise() {
        let mut d = data(400);
        let initial = d.snapshot();
        let params = NBodyParams::default();
        unthreaded(&mut d, 3, params, &mut NullSink);
        let reference = d.snapshot();
        d.restore(&initial);
        let report = threaded(&mut d, 3, params, config(), &mut NullSink);
        assert_eq!(d.snapshot(), reference);
        assert_eq!(report.threads, 3 * 400);
    }

    #[test]
    fn threaded_bins_are_nonuniform_for_clustered_bodies() {
        let mut d = data(2000);
        // 4x4x4 scheduling grid: plane extent of four blocks per side.
        let block = 1u64 << 19;
        let params = NBodyParams {
            plane_extent: 4 * block,
            ..NBodyParams::default()
        };
        let cfg = SchedulerConfig::builder()
            .block_size(block)
            .build()
            .unwrap();
        let report = threaded(&mut d, 1, params, cfg, &mut NullSink);
        let sched = report.sched.unwrap();
        assert!(
            sched.bins() > 4,
            "clustered bodies should span several bins"
        );
        assert!(
            sched.bin_size_cv() > 0.5,
            "Plummer clustering must look nonuniform, cv = {}",
            sched.bin_size_cv()
        );
    }

    #[test]
    fn motion_follows_gravity() {
        // Two bodies attract: after a few steps their separation
        // shrinks.
        let mut space = AddressSpace::new();
        let mut d = NBodyData::new(&mut space, 2, 5);
        *d.bodies.at_mut(0) = Body {
            pos: [0.25, 0.5, 0.5],
            mass: 0.5,
            vel: [0.0; 3],
            acc: [0.0; 3],
        };
        *d.bodies.at_mut(1) = Body {
            pos: [0.75, 0.5, 0.5],
            mass: 0.5,
            vel: [0.0; 3],
            acc: [0.0; 3],
        };
        let before = (d.bodies.at(1).pos[0] - d.bodies.at(0).pos[0]).abs();
        unthreaded(
            &mut d,
            5,
            NBodyParams {
                theta: 0.0,
                eps: 1e-4,
                dt: 1e-2,
                ..NBodyParams::default()
            },
            &mut NullSink,
        );
        let after = (d.bodies.at(1).pos[0] - d.bodies.at(0).pos[0]).abs();
        assert!(after < before, "bodies must fall toward each other");
    }

    #[test]
    fn traced_run_emits_references() {
        let mut d = data(100);
        let mut sink = CountingSink::new();
        unthreaded(&mut d, 1, NBodyParams::default(), &mut sink);
        assert!(
            sink.data_references() > 100 * 10,
            "tree walks must be traced"
        );
        assert!(sink.instructions_executed() > sink.data_references());
    }
}

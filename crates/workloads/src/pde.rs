//! The PDE kernel of §4.3: red-black Gauss–Seidel relaxation on a
//! uniform 2-D mesh (the smoother of a multigrid Laplace solver), with
//! the residual computed after the final iteration.
//!
//! Three versions, as in Table 4:
//!
//! * [`regular`] — one red sweep over the whole grid, then one black
//!   sweep, per iteration; residual in a separate final pass. The data
//!   streams through the cache `2·iters + 1` times.
//! * [`cache_conscious`] — Douglas's line-fused variant: relaxing red
//!   points on line `i3` and black points on the trailing line
//!   `i3 − 1` in a single pass (residual fused where possible), so the
//!   data passes through the cache `iters` times. Neither KAP nor the
//!   SGI compiler can derive this transformation.
//! * [`threaded`] — the fused line pair becomes a thread: "there are
//!   ny + 1 threads to do the work each iteration", forked with a 1-D
//!   hint (the line's base address) and run per iteration.
//!
//! All three versions perform each point update with exactly the same
//! operand values (the fusion is dependence-preserving), so their
//! results agree bitwise; the unit tests assert this.

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use crate::WorkloadReport;
use locality_sched::{
    BinPolicy, Hints, PaperBlockHash, PhasedScheduler, RunMode, Scheduler, SchedulerConfig,
    SchedulerStats,
};
use memtrace::{AddressSpace, MatrixLayout, TraceSink, TracedMatrix};

/// Instructions per point relaxation in the regular version's sweeps.
pub const RELAX_INSTRUCTIONS: u64 = 14;
/// Instructions per point relaxation in the fused versions (tighter
/// loop structure; the paper measures the cache-conscious version at
/// ~9% fewer instruction fetches).
pub const RELAX_INSTRUCTIONS_FUSED: u64 = 13;
/// Instructions per residual point.
pub const RESIDUAL_INSTRUCTIONS: u64 = 16;

/// Grid state for the PDE kernel: solution `u`, right-hand side `b`,
/// and residual `r`, all `n × n` column-major with a fixed zero
/// boundary.
#[derive(Clone, Debug)]
pub struct PdeData {
    /// Current solution estimate (zero-initialized).
    pub u: TracedMatrix,
    /// Right-hand side.
    pub b: TracedMatrix,
    /// Residual, written by the final pass.
    pub r: TracedMatrix,
    n: usize,
}

impl PdeData {
    /// Allocates an `n × n` problem with a deterministic pseudo-random
    /// right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (no interior points).
    pub fn new(space: &mut AddressSpace, n: usize, seed: u64) -> Self {
        assert!(n >= 3, "grid must have interior points");
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2048) as f64 / 2048.0 - 0.5
        };
        let u = TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor);
        let b = TracedMatrix::from_fn(space, n, n, MatrixLayout::ColMajor, |_, _| next());
        let r = TracedMatrix::zeros(space, n, n, MatrixLayout::ColMajor);
        PdeData { u, b, r, n }
    }

    /// Grid dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Zeroes `u` and `r` (untraced) so another version can rerun.
    pub fn reset(&mut self) {
        for i in 0..self.n {
            for j in 0..self.n {
                self.u.set_untraced(i, j, 0.0);
                self.r.set_untraced(i, j, 0.0);
            }
        }
    }

    /// Result checksum over `u` and `r`.
    pub fn checksum(&self) -> f64 {
        self.u.checksum() + self.r.checksum()
    }

    /// Maximum absolute residual over the interior (untraced); a
    /// convergence measure for tests.
    pub fn residual_inf_norm(&self) -> f64 {
        let mut max = 0.0f64;
        for i3 in 1..self.n - 1 {
            for i2 in 1..self.n - 1 {
                max = max.max(self.r.at(i2, i3).abs());
            }
        }
        max
    }
}

/// Is the point (i2, i3) red? (Checkerboard colouring by coordinate
/// parity.)
#[inline]
fn is_red(i2: usize, i3: usize) -> bool {
    (i2 + i3).is_multiple_of(2)
}

/// Relaxes one point:
/// `u[i2,i3] = ¼ (b[i2,i3] − u[i2−1,i3] − u[i2+1,i3] − u[i2,i3−1] − u[i2,i3+1])`.
#[inline]
fn relax_point<S: TraceSink>(data: &mut PdeData, i2: usize, i3: usize, instr: u64, sink: &mut S) {
    let b = data.b.get(i2, i3, sink);
    // One batched emission for the four-point stencil (same trace, one
    // sink call instead of four).
    let [up, down, left, right] = data.u.get_batch(
        [(i2 - 1, i3), (i2 + 1, i3), (i2, i3 - 1), (i2, i3 + 1)],
        sink,
    );
    data.u
        .set(i2, i3, 0.25 * (b - up - down - left - right), sink);
    sink.instructions(instr);
}

/// Relaxes all points of the given colour on line (column) `i3`.
#[inline]
fn relax_line<S: TraceSink>(data: &mut PdeData, i3: usize, red: bool, instr: u64, sink: &mut S) {
    let n = data.n;
    let start = 1 + usize::from(is_red(1, i3) != red);
    let mut i2 = start;
    while i2 < n - 1 {
        relax_point(data, i2, i3, instr, sink);
        i2 += 2;
    }
}

/// Computes the residual
/// `r = b − 4u − u[↑] − u[↓] − u[←] − u[→]` for every interior point of
/// line `i3`.
#[inline]
fn residual_line<S: TraceSink>(data: &mut PdeData, i3: usize, sink: &mut S) {
    let n = data.n;
    for i2 in 1..n - 1 {
        let b = data.b.get(i2, i3, sink);
        let [c, up, down, left, right] = data.u.get_batch(
            [
                (i2, i3),
                (i2 - 1, i3),
                (i2 + 1, i3),
                (i2, i3 - 1),
                (i2, i3 + 1),
            ],
            sink,
        );
        data.r
            .set(i2, i3, b - 4.0 * c - up - down - left - right, sink);
        sink.instructions(RESIDUAL_INSTRUCTIONS);
    }
}

/// The regular version: full red sweep, full black sweep, per
/// iteration; residual afterwards.
pub fn regular<S: TraceSink>(data: &mut PdeData, iters: usize, sink: &mut S) -> WorkloadReport {
    let n = data.n;
    for _ in 0..iters {
        for red in [true, false] {
            for i3 in 1..n - 1 {
                relax_line(data, i3, red, RELAX_INSTRUCTIONS, sink);
            }
        }
    }
    for i3 in 1..n - 1 {
        residual_line(data, i3, sink);
    }
    WorkloadReport::unthreaded("pde/regular", data.checksum())
}

/// One step of the fused schedule: red on line `i3`, black on the
/// trailing line `i3 − 1`, and (on the last iteration) the residual on
/// line `i3 − 2`, whose neighbours are final by then.
#[inline]
fn fused_step<S: TraceSink>(data: &mut PdeData, i3: usize, with_residual: bool, sink: &mut S) {
    let n = data.n;
    if (1..n - 1).contains(&i3) {
        relax_line(data, i3, true, RELAX_INSTRUCTIONS_FUSED, sink);
    }
    if i3 >= 2 && i3 - 1 < n - 1 {
        relax_line(data, i3 - 1, false, RELAX_INSTRUCTIONS_FUSED, sink);
    }
    if with_residual && i3 >= 3 && i3 - 2 < n - 1 {
        residual_line(data, i3 - 2, sink);
    }
}

/// The cache-conscious version (Douglas): line-fused red/black sweeps
/// so the data passes through the cache once per iteration, with the
/// residual fused into the last iteration.
pub fn cache_conscious<S: TraceSink>(
    data: &mut PdeData,
    iters: usize,
    sink: &mut S,
) -> WorkloadReport {
    let n = data.n;
    for it in 0..iters {
        let last = it + 1 == iters;
        for i3 in 1..=n {
            fused_step(data, i3, last, sink);
        }
    }
    WorkloadReport::unthreaded("pde/cache-conscious", data.checksum())
}

struct PdeCtx<'a, S> {
    data: &'a mut PdeData,
    sink: &'a mut S,
}

fn pde_thread<S: TraceSink>(ctx: &mut PdeCtx<'_, S>, i3: usize, with_residual: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    fused_step(ctx.data, i3, with_residual != 0, ctx.sink);
}

/// The threaded version: one thread per fused line pair (`n` threads
/// per iteration), hinted by the line's base address, forked and run
/// once per iteration.
///
/// The paper notes this version "is programmed with a specific
/// ordering (red-black) which determines when an element of u is
/// updated": correctness relies on bins being visited in allocation
/// order (the package default), which for monotonically increasing
/// line addresses reproduces the fused sequential order exactly.
pub fn threaded<S: TraceSink>(
    data: &mut PdeData,
    iters: usize,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let policy = PaperBlockHash::from_config(&config);
    threaded_with(data, iters, config, policy, sink)
}

/// [`threaded`] under an arbitrary [`BinPolicy`]. The red-black
/// ordering constraint carries over: a policy is only correct here if,
/// combined with the allocation-order tour, it drains threads in
/// ascending line order (true for the flat paper policy and for
/// [`Hierarchical`](locality_sched::Hierarchical) nesting, both of
/// which are monotone in the single line-address hint).
pub fn threaded_with<S: TraceSink, P: BinPolicy>(
    data: &mut PdeData,
    iters: usize,
    config: SchedulerConfig,
    policy: P,
    sink: &mut S,
) -> WorkloadReport {
    let n = data.n;
    let mut threads = 0u64;
    let mut last_stats: Option<SchedulerStats> = None;
    for it in 0..iters {
        let last = it + 1 == iters;
        let mut sched: Scheduler<PdeCtx<'_, S>, P> = Scheduler::with_policy(config, policy.clone());
        sched.trace_package_memory();
        for i3 in 1..=n {
            let hint_line = i3.min(n - 1);
            sched.fork_traced(
                pde_thread::<S>,
                i3,
                usize::from(last),
                Hints::one(data.u.col_addr(hint_line)),
                sink,
            );
            sink.instructions(FORK_INSTRUCTIONS);
        }
        let stats = sched.stats();
        threads += stats.threads();
        if last {
            last_stats = Some(stats);
        }
        let mut ctx = PdeCtx { data, sink };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
    }
    let mut report = WorkloadReport::threaded(
        "pde/threaded",
        data.checksum(),
        last_stats.unwrap_or_default(),
    );
    report.threads = threads;
    report
}

/// A variant of [`threaded`] that forks *all* iterations up front into
/// a [`PhasedScheduler`], one phase per iteration — the dependency
/// extension (phase barriers) carrying the dependence the per-iteration
/// `th_run` otherwise enforces by construction. Numerically identical
/// to the other versions.
pub fn threaded_phased<S: TraceSink>(
    data: &mut PdeData,
    iters: usize,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let n = data.n;
    let mut sched: PhasedScheduler<PdeCtx<'_, S>> = PhasedScheduler::new(config);
    for it in 0..iters {
        let last = it + 1 == iters;
        for i3 in 1..=n {
            let hint_line = i3.min(n - 1);
            sched.fork(
                it as u32,
                pde_thread::<S>,
                i3,
                usize::from(last),
                Hints::one(data.u.col_addr(hint_line)),
            );
            sink.instructions(FORK_INSTRUCTIONS);
        }
    }
    let threads = sched.pending();
    let last_stats = sched.phase_stats(iters.saturating_sub(1) as u32);
    {
        let mut ctx = PdeCtx { data, sink };
        sched.run(&mut ctx, RunMode::Consume);
    }
    let mut report = WorkloadReport::threaded(
        "pde/threaded-phased",
        data.checksum(),
        last_stats.unwrap_or_default(),
    );
    report.threads = threads;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CountingSink, NullSink};

    fn data(n: usize) -> PdeData {
        let mut space = AddressSpace::new();
        PdeData::new(&mut space, n, 7)
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(1 << 12)
            .build()
            .unwrap()
    }

    fn collect_u(d: &PdeData) -> Vec<f64> {
        let n = d.n();
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| d.u.at(i, j))
            .collect()
    }

    fn collect_r(d: &PdeData) -> Vec<f64> {
        let n = d.n();
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| d.r.at(i, j))
            .collect()
    }

    #[test]
    fn all_versions_agree_bitwise() {
        let mut d = data(33);
        regular(&mut d, 5, &mut NullSink);
        let u_ref = collect_u(&d);
        let r_ref = collect_r(&d);

        d.reset();
        cache_conscious(&mut d, 5, &mut NullSink);
        assert_eq!(collect_u(&d), u_ref, "cache-conscious u differs");
        assert_eq!(collect_r(&d), r_ref, "cache-conscious r differs");

        d.reset();
        threaded(&mut d, 5, config(), &mut NullSink);
        assert_eq!(collect_u(&d), u_ref, "threaded u differs");
        assert_eq!(collect_r(&d), r_ref, "threaded r differs");

        d.reset();
        let report = threaded_phased(&mut d, 5, config(), &mut NullSink);
        assert_eq!(collect_u(&d), u_ref, "threaded-phased u differs");
        assert_eq!(collect_r(&d), r_ref, "threaded-phased r differs");
        assert_eq!(report.threads, 5 * 33);
    }

    #[test]
    fn even_grid_sizes_also_agree() {
        let mut d = data(20);
        regular(&mut d, 3, &mut NullSink);
        let u_ref = collect_u(&d);
        d.reset();
        threaded(&mut d, 3, config(), &mut NullSink);
        assert_eq!(collect_u(&d), u_ref);
    }

    #[test]
    fn relaxation_reduces_residual() {
        let mut d = data(17);
        regular(&mut d, 1, &mut NullSink);
        let after_1 = d.residual_inf_norm();
        d.reset();
        regular(&mut d, 20, &mut NullSink);
        let after_20 = d.residual_inf_norm();
        assert!(
            after_20 < after_1 * 0.5,
            "Gauss-Seidel must converge: {after_1} -> {after_20}"
        );
    }

    #[test]
    fn reference_counts_match_formulas() {
        let n = 19usize;
        let iters = 3;
        let interior = ((n - 2) * (n - 2)) as u64;
        let mut d = data(n);
        let mut sink = CountingSink::new();
        regular(&mut d, iters, &mut sink);
        // 6 refs per relaxation x interior points x iters + 7 per
        // residual point.
        assert_eq!(
            sink.data_references(),
            6 * interior * iters as u64 + 7 * interior
        );
        assert_eq!(
            sink.instructions_executed(),
            RELAX_INSTRUCTIONS * interior * iters as u64 + RESIDUAL_INSTRUCTIONS * interior
        );
    }

    #[test]
    fn fused_versions_do_the_same_data_references() {
        let n = 19usize;
        let mut d = data(n);
        let mut regular_sink = CountingSink::new();
        regular(&mut d, 2, &mut regular_sink);
        d.reset();
        let mut cc_sink = CountingSink::new();
        cache_conscious(&mut d, 2, &mut cc_sink);
        assert_eq!(
            regular_sink.data_references(),
            cc_sink.data_references(),
            "fusion reorders but does not add references"
        );
        assert!(cc_sink.instructions_executed() < regular_sink.instructions_executed());
    }

    #[test]
    fn threaded_counts_threads_per_iteration() {
        let n = 17;
        let iters = 4;
        let mut d = data(n);
        let report = threaded(&mut d, iters, config(), &mut NullSink);
        assert_eq!(report.threads, (n as u64) * iters as u64);
        assert!(report.sched.is_some());
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn tiny_grid_is_rejected() {
        let mut space = AddressSpace::new();
        let _ = PdeData::new(&mut space, 2, 1);
    }
}

//! The four applications of the paper's evaluation (§4), each in every
//! version the paper measures, written once and generic over a
//! [`TraceSink`](memtrace::TraceSink).
//!
//! | Paper section | Module | Versions |
//! |---|---|---|
//! | §4.2 Matrix multiply | [`matmul`] | interchanged, transposed, tiled ×2, threaded |
//! | §4.3 PDE (red-black Gauss–Seidel) | [`pde`] | regular, cache-conscious, threaded |
//! | §4.3 SOR | [`sor`] | untiled, hand-tiled (skewed), threaded |
//! | §4.4 N-body (Barnes–Hut) | [`nbody`] | unthreaded, threaded |
//! | (extension) sparse matrix–vector | [`spmv`] | work-list order, threaded |
//! | (extension) multigrid V-cycle | [`multigrid`] | the solver the PDE kernel nests in, any smoother |
//!
//! Every version of a workload computes the same mathematical result
//! (bitwise-identical where the paper's transformation is
//! order-preserving; convergence-equivalent for threaded SOR, whose
//! reordering the paper itself notes changes the iteration order but
//! "works fine because the goal is to reach convergence").
//!
//! Instantiate with [`memtrace::NullSink`] for native speed, or with
//! `cachesim::SimSink` to reproduce the paper's trace-driven cache
//! simulations.

pub mod geometry;
pub mod matmul;
pub mod multigrid;
pub mod nbody;
pub mod overhead;
pub mod pde;
pub mod report;
pub mod sor;
pub mod spmv;

pub use geometry::{BinGeometry, HintKind, Kernel, OrderSemantics};
pub use report::WorkloadReport;

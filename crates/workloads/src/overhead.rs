//! Instruction-accounting constants for the thread package itself.
//!
//! Pixie instrumented the whole binary, thread package included; our
//! analytic accounting must therefore charge the package's instructions
//! too. The constants below are calibrated so that the threaded matmul
//! total instruction count lands where the paper's Table 3 puts it
//! (inner loops 3,758M of 3,930M total; the ~170M remainder is
//! transposes, fork loops, and package code for 1,048,576 threads).
//!
//! The paper's measured per-thread *time* overhead (Table 1: 1.60 µs on
//! the R8000 ≈ 120 cycles at 75 MHz, part of which is cache effects) is
//! charged separately by the timing model via
//! `MachineModel::thread_overhead_ns`.

/// Instructions charged per `th_fork`: hint hashing, bin lookup, and
/// appending a three-word thread record to a thread group.
pub const FORK_INSTRUCTIONS: u64 = 80;

/// Instructions charged per thread dispatched by `th_run`: ready-list
/// walking and the indirect call/return.
pub const RUN_INSTRUCTIONS: u64 = 20;

/// Total package instructions for forking and running `threads`
/// threads.
pub fn package_instructions(threads: u64) -> u64 {
    threads * (FORK_INSTRUCTIONS + RUN_INSTRUCTIONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_cost_is_linear() {
        assert_eq!(package_instructions(0), 0);
        assert_eq!(
            package_instructions(10),
            10 * (FORK_INSTRUCTIONS + RUN_INSTRUCTIONS)
        );
    }

    #[test]
    fn calibration_matches_table_3_remainder() {
        // 1,048,576 threads should cost on the order of 100M
        // instructions — the slack between the paper's inner-loop
        // accounting (3,758M) and its measured total (3,930M).
        let cost = package_instructions(1 << 20);
        assert!(cost > 50_000_000 && cost < 170_000_000, "{cost}");
    }
}

//! Sparse matrix–vector product (CSR) — an *extension* workload beyond
//! the paper's four, exercising the scheduler on the data-dependent
//! access pattern the paper's introduction motivates ("data might be
//! allocated dynamically or accessed indirectly"): which entries of
//! `x` a row reads is known only at run time, from the column indices.
//!
//! The setup mirrors a common reality for banded/clustered sparse
//! systems: the matrix is banded, but the rows arrive in an arbitrary
//! work-list order (mesh renumbering, queue of refinement tasks, …).
//! Processing rows in that order touches `x` all over; hinting each
//! row-thread with the address of the `x` segment it will read lets
//! the scheduler restore the band structure — no inspection of the
//! matrix required beyond the first column index per row.

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use crate::WorkloadReport;
use locality_sched::{Hints, RunMode, Scheduler, SchedulerConfig};
use memtrace::{AddressSpace, TraceSink, TracedBuf};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Instructions per nonzero of the inner product.
pub const NNZ_INSTRUCTIONS: u64 = 5;
/// Instructions per row (pointer fetches, store of `y`).
pub const ROW_INSTRUCTIONS: u64 = 8;

/// A CSR sparse matrix with its operand and result vectors, plus the
/// (shuffled) row work list.
#[derive(Clone, Debug)]
pub struct SpmvData {
    row_ptr: TracedBuf<u32>,
    col_idx: TracedBuf<u32>,
    values: TracedBuf<f64>,
    /// Operand vector.
    pub x: TracedBuf<f64>,
    /// Result vector.
    pub y: TracedBuf<f64>,
    /// Row processing order (shuffled, as an irregular work list).
    order: Vec<u32>,
    n: usize,
}

impl SpmvData {
    /// Builds an `n × n` banded matrix with `per_row` nonzeros per row
    /// spread over a band of half-width `band`, rows listed in random
    /// work-list order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `per_row` is zero.
    pub fn banded(
        space: &mut AddressSpace,
        n: usize,
        band: usize,
        per_row: usize,
        seed: u64,
    ) -> Self {
        assert!(n > 0 && per_row > 0, "matrix must be nonempty");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for i in 0..n {
            let lo = i.saturating_sub(band);
            let hi = (i + band).min(n - 1);
            let mut cols: Vec<u32> = (0..per_row)
                .map(|_| rng.gen_range(lo..=hi) as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            for &c in &cols {
                col_idx.push(c);
                values.push(rng.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rng);
        let x_init: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        SpmvData {
            row_ptr: TracedBuf::from_vec(space, row_ptr),
            col_idx: TracedBuf::from_vec(space, col_idx),
            values: TracedBuf::from_vec(space, values),
            x: TracedBuf::from_vec(space, x_init),
            y: TracedBuf::new(space, n),
            order,
            n,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Zeroes `y` (untraced).
    pub fn reset(&mut self) {
        for i in 0..self.n {
            *self.y.at_mut(i) = 0.0;
        }
    }

    /// Dense reference product (untraced), for verification.
    pub fn reference(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.n];
        for (i, slot) in out.iter_mut().enumerate() {
            let start = *self.row_ptr.at(i) as usize;
            let end = *self.row_ptr.at(i + 1) as usize;
            for k in start..end {
                *slot += self.values.at(k) * self.x.at(*self.col_idx.at(k) as usize);
            }
        }
        out
    }

    /// Result checksum.
    pub fn checksum(&self) -> f64 {
        self.y.as_slice().iter().sum()
    }

    /// Computes one row's inner product (traced) and stores it.
    fn row_product<S: TraceSink>(&mut self, row: usize, sink: &mut S) {
        let start = self.row_ptr.get(row, sink) as usize;
        let end = self.row_ptr.get(row + 1, sink) as usize;
        let mut acc = 0.0;
        for k in start..end {
            let col = self.col_idx.get(k, sink) as usize;
            let v = self.values.get(k, sink);
            let xv = self.x.get(col, sink);
            acc += v * xv;
            sink.instructions(NNZ_INSTRUCTIONS);
        }
        self.y.set(row, acc, sink);
        sink.instructions(ROW_INSTRUCTIONS);
    }

    /// Address of the `x` segment row `row` reads (its first column) —
    /// the natural scheduling hint, available without inspecting the
    /// whole row.
    fn row_hint(&self, row: usize) -> Hints {
        let start = *self.row_ptr.at(row) as usize;
        let end = *self.row_ptr.at(row + 1) as usize;
        if start == end {
            return Hints::none();
        }
        Hints::one(self.x.addr_of(*self.col_idx.at(start) as usize))
    }
}

/// Processes rows in work-list order — the irregular baseline.
pub fn worklist<S: TraceSink>(data: &mut SpmvData, sink: &mut S) -> WorkloadReport {
    let order = data.order.clone();
    for &row in &order {
        data.row_product(row as usize, sink);
    }
    WorkloadReport::unthreaded("spmv/worklist", data.checksum())
}

struct SpmvCtx<'a, S> {
    data: &'a mut SpmvData,
    sink: &'a mut S,
}

fn spmv_thread<S: TraceSink>(ctx: &mut SpmvCtx<'_, S>, row: usize, _unused: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    ctx.data.row_product(row, ctx.sink);
}

/// Forks one thread per row (in work-list order) hinted by the row's
/// `x` segment; the scheduler restores the band structure.
pub fn threaded<S: TraceSink>(
    data: &mut SpmvData,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let order = data.order.clone();
    let stats = {
        let mut sched: Scheduler<SpmvCtx<'_, S>> = Scheduler::new(config);
        sched.trace_package_memory();
        for &row in &order {
            sched.fork_traced(
                spmv_thread::<S>,
                row as usize,
                0,
                data.row_hint(row as usize),
                sink,
            );
            sink.instructions(FORK_INSTRUCTIONS);
        }
        let stats = sched.stats();
        let mut ctx = SpmvCtx { data, sink };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
        stats
    };
    WorkloadReport::threaded("spmv/threaded", data.checksum(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CountingSink, NullSink};

    fn data(n: usize) -> SpmvData {
        let mut space = AddressSpace::new();
        SpmvData::banded(&mut space, n, 8, 6, 77)
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder().block_size(1024).build().unwrap()
    }

    #[test]
    fn worklist_matches_dense_reference() {
        let mut d = data(200);
        let expect = d.reference();
        worklist(&mut d, &mut NullSink);
        for (i, want) in expect.iter().enumerate() {
            assert!((d.y.at(i) - want).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn threaded_matches_worklist_bitwise() {
        let mut d = data(300);
        worklist(&mut d, &mut NullSink);
        let reference: Vec<f64> = d.y.as_slice().to_vec();
        d.reset();
        let report = threaded(&mut d, config(), &mut NullSink);
        assert_eq!(d.y.as_slice(), reference.as_slice());
        assert_eq!(report.threads, 300);
        assert!(report.sched.unwrap().bins() > 1);
    }

    #[test]
    fn rows_touch_only_their_band() {
        let n = 100;
        let band = 5;
        let mut space = AddressSpace::new();
        let d = SpmvData::banded(&mut space, n, band, 4, 3);
        for i in 0..n {
            let start = *d.row_ptr.at(i) as usize;
            let end = *d.row_ptr.at(i + 1) as usize;
            assert!(end > start, "row {i} empty");
            for k in start..end {
                let c = *d.col_idx.at(k) as usize;
                assert!(c + band >= i && c <= i + band, "row {i} col {c}");
            }
        }
    }

    #[test]
    fn traced_reference_counts_are_linear_in_nnz() {
        let mut d = data(150);
        let nnz = d.nnz() as u64;
        let mut sink = CountingSink::new();
        worklist(&mut d, &mut sink);
        // 3 refs per nonzero + 2 row_ptr reads + 1 y write per row.
        assert_eq!(sink.data_references(), 3 * nnz + 3 * 150);
        assert_eq!(
            sink.instructions_executed(),
            NNZ_INSTRUCTIONS * nnz + ROW_INSTRUCTIONS * 150
        );
    }

    #[test]
    fn binning_recovers_locality_in_simulation() {
        use cachesim::{MachineModel, SimSink};
        // x is 8x the scaled L2, banded structure, shuffled work list.
        let n = 32_768; // x = 256 KiB
        let machine = MachineModel::r8000()
            .scaled_split(1.0, 1.0 / 64.0)
            .expect("valid scaled machine"); // L2 32 KiB
        let mut space = AddressSpace::new();
        let mut d = SpmvData::banded(&mut space, n, 64, 6, 9);

        let mut sim = SimSink::new(machine.hierarchy());
        worklist(&mut d, &mut sim);
        let baseline = sim.finish();

        let mut space = AddressSpace::new();
        let mut d = SpmvData::banded(&mut space, n, 64, 6, 9);
        let mut sim = SimSink::new(machine.hierarchy());
        // Block = L2/4: the hinted x segment must stay resident while
        // the CSR arrays *stream past it* — unhinted streaming traffic
        // means the hinted working set has to be a fraction of the
        // cache, not all of it.
        let cfg = SchedulerConfig::builder()
            .block_size(machine.l2_config().size() / 4)
            .build()
            .unwrap();
        let report = threaded(&mut d, cfg, &mut sim);
        sim.add_threads(report.threads);
        let binned = sim.finish();

        assert!(
            baseline.l2.misses() as f64 > 1.5 * binned.l2.misses() as f64,
            "binning must recover the band: {} vs {}",
            baseline.l2.misses(),
            binned.l2.misses()
        );
    }
}

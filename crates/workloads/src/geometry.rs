//! Machine-derived bin geometry: the single place that turns a
//! [`MachineModel`]'s cache sizes into scheduler block sizes.
//!
//! The paper sizes bins so a bin's working set fits the second-level
//! cache (§3.2): with k hint dimensions, the block dimensions sum to
//! (at most) the cache size. Each kernel divides the L2 budget by its
//! hint arity — matmul and the PDE read two structures per thread but
//! hint one or two addresses, SOR reads four lines per thread, the
//! N-body reads a 3-D neighbourhood — so the per-dimension block is the
//! largest power of two not exceeding the kernel's share:
//!
//! | Kernel | L2 block | Rationale (paper §4) |
//! |---|---|---|
//! | [`MatMul`](Kernel::MatMul) | L2 / 2 | two column working sets per bin (§4.2) |
//! | [`Pde`](Kernel::Pde) | L2 / 2 | red/black line pair per thread |
//! | [`Sor`](Kernel::Sor) | L2 / 4 | 63 bins over a 32 MB array ≈ L2/4 blocks |
//! | [`NBody`](Kernel::NBody) | L2 / 3 | three hint dimensions summing to L2 (§3.2) |
//!
//! The same rules applied to every other level of the machine's
//! [`MachineTopology`](cachesim::MachineTopology) give the block sizes
//! for hierarchical binning at arbitrary depth: level-0 sub-bins whose
//! working sets fit the first-level cache, nested in L2-sized bins,
//! nested in L3- or NUMA-node-sized groups, drained back-to-back
//! inside their parents at every depth.

use cachesim::{MachineModel, MAX_TOPOLOGY_LEVELS};
use locality_sched::{ConfigError, Hierarchical, SchedulerConfig, TopologyPolicy};

/// The four threaded kernels whose bin sizes derive from the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Blocked matrix multiply (§4.2): 2-D column-address hints.
    MatMul,
    /// Red-black Gauss–Seidel relaxation (§4.3): 1-D line hints.
    Pde,
    /// Successive over-relaxation (§4.3): 1-D column hints.
    Sor,
    /// Barnes–Hut N-body (§4.4): 3-D position hints.
    NBody,
}

/// How strictly a threaded kernel's result depends on intra-phase
/// execution order — the ground truth schedule analyzers check
/// policies against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderSemantics {
    /// Conflicting threads within a phase must execute in fork order
    /// for the result to be bitwise-identical to the sequential
    /// version (threaded PDE relies on its monotone hints for this).
    Exact,
    /// Reordering conflicting threads changes intermediate values but
    /// not the fixed point the kernel iterates towards — the paper's
    /// threaded SOR, which is convergence-equivalent, not bitwise
    /// equal.
    Convergent,
}

/// What a kernel's hint addresses denote, which decides whether
/// comparing them against the thread's footprint is meaningful.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintKind {
    /// Hints are data addresses the thread reads (matmul columns, PDE
    /// and SOR grid lines): hint-accuracy checks apply.
    Address,
    /// Hints are synthetic coordinates in a scaled plane (the N-body's
    /// 3-D position hints, §4.4): spatially meaningful to the binning
    /// policy, but not addresses the thread touches.
    Spatial,
}

impl Kernel {
    /// Every paper kernel, in the order the bench tables report them.
    pub const ALL: [Kernel; 4] = [Kernel::MatMul, Kernel::Pde, Kernel::Sor, Kernel::NBody];

    /// The workload name the bench tables use.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MatMul => "matmul",
            Kernel::Pde => "pde",
            Kernel::Sor => "sor",
            Kernel::NBody => "nbody",
        }
    }

    /// The kernel's intra-phase ordering contract.
    pub fn order_semantics(self) -> OrderSemantics {
        match self {
            // Matmul and N-body threads are conflict-free; the PDE's
            // conflicting neighbours are kept in fork order by every
            // shipped policy (monotone hints ⇒ allocation-order tour
            // = fork order). All three reproduce bitwise.
            Kernel::MatMul | Kernel::Pde | Kernel::NBody => OrderSemantics::Exact,
            Kernel::Sor => OrderSemantics::Convergent,
        }
    }

    /// What the kernel's hints denote.
    pub fn hint_kind(self) -> HintKind {
        match self {
            Kernel::MatMul | Kernel::Pde | Kernel::Sor => HintKind::Address,
            Kernel::NBody => HintKind::Spatial,
        }
    }

    /// Parses the workload names the bench tables use.
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name {
            "matmul" => Some(Kernel::MatMul),
            "pde" => Some(Kernel::Pde),
            "sor" => Some(Kernel::Sor),
            "nbody" => Some(Kernel::NBody),
            _ => None,
        }
    }

    /// The kernel's share of a cache capacity: the divisor applied to
    /// the cache size before rounding down to a power of two.
    fn capacity_share(self, capacity: u64) -> u64 {
        match self {
            Kernel::MatMul | Kernel::Pde => capacity / 2,
            Kernel::Sor => capacity / 4,
            Kernel::NBody => capacity / 3,
        }
        .max(1)
    }
}

/// Largest power of two ≤ `x` (with `x ≥ 1`).
fn prev_power_of_two(x: u64) -> u64 {
    debug_assert!(x > 0);
    1 << (63 - x.leading_zeros())
}

/// The per-level cache capacities a machine offers each bin level,
/// extracted once from a [`MachineModel`]'s topology tree so every
/// workload and bench derives its block sizes from the same ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinGeometry {
    /// Per-level capacities in bytes, finest first; entries past
    /// `depth` are unused.
    capacities: [u64; MAX_TOPOLOGY_LEVELS],
    depth: usize,
}

impl BinGeometry {
    /// Reads the bin-level budgets off a machine model's topology.
    pub fn for_machine(machine: &MachineModel) -> Self {
        let caps = machine.topology().capacities();
        let mut capacities = [0u64; MAX_TOPOLOGY_LEVELS];
        capacities[..caps.len()].copy_from_slice(&caps);
        BinGeometry {
            capacities,
            depth: caps.len(),
        }
    }

    /// A two-level (L1-in-L2) geometry from explicit capacities — the
    /// pre-topology constructor, kept for tests and callers that do
    /// not have a machine model at hand.
    pub fn two_level(l1_capacity: u64, l2_capacity: u64) -> Self {
        let mut capacities = [0u64; MAX_TOPOLOGY_LEVELS];
        capacities[0] = l1_capacity;
        capacities[1] = l2_capacity;
        BinGeometry {
            capacities,
            depth: 2,
        }
    }

    /// Number of hierarchy levels the geometry carries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Per-level block budgets: each level gets its own capacity,
    /// capped at 1/8 of the next-coarser level's *budget* so every
    /// level stays strictly finer than its parent. Real machines keep
    /// adjacent levels ≫ 8× apart (R8000 L1:L2 is 1:256 — the cap
    /// never binds), but the ratio-preserving bench machines scale
    /// coarse levels down while leaving L1 untouched, which used to
    /// collapse the sub-bin block onto the parent block and made
    /// [`hierarchical`](Self::hierarchical) byte-identical to
    /// [`flat_config`](Self::flat_config) at bench scale.
    fn budgets(&self) -> [u64; MAX_TOPOLOGY_LEVELS] {
        let mut budgets = [0u64; MAX_TOPOLOGY_LEVELS];
        budgets[self.depth - 1] = self.capacities[self.depth - 1];
        for level in (0..self.depth - 1).rev() {
            budgets[level] = self.capacities[level].min((budgets[level + 1] / 8).max(1));
        }
        budgets
    }

    /// The block sizes for `kernel` at every level, finest first: the
    /// kernel's capacity share of each level's budget, rounded down to
    /// a power of two and clamped monotone non-decreasing up the
    /// ladder (so the resulting [`TopologyPolicy`] always validates,
    /// even on degenerate test hierarchies).
    pub fn level_blocks(&self, kernel: Kernel) -> Vec<u64> {
        let budgets = self.budgets();
        let mut blocks = vec![0u64; self.depth];
        for level in (0..self.depth).rev() {
            let block = prev_power_of_two(kernel.capacity_share(budgets[level]));
            blocks[level] = if level + 1 < self.depth {
                block.min(blocks[level + 1])
            } else {
                block
            };
        }
        blocks
    }

    /// The L2-sized (flat / paper) block for `kernel` — the block at
    /// ladder level 1, the second-level cache the paper sizes bins to.
    pub fn l2_block(&self, kernel: Kernel) -> u64 {
        self.level_blocks(kernel)[1.min(self.depth - 1)]
    }

    /// The L1-sized (finest sub-bin) block for `kernel`.
    pub fn l1_block(&self, kernel: Kernel) -> u64 {
        self.level_blocks(kernel)[0]
    }

    /// The flat (paper §3.2) scheduler configuration for `kernel`:
    /// uniform L2-sized blocks, package defaults otherwise.
    pub fn flat_config(&self, kernel: Kernel) -> SchedulerConfig {
        SchedulerConfig::builder()
            .block_size(self.l2_block(kernel))
            .build()
            .expect("power-of-two block")
    }

    /// The hierarchical (L1-in-L2) policy for `kernel`: L1-sized
    /// sub-bins nested in L2-sized bins — the first two rungs of the
    /// ladder, whatever the machine's full depth.
    pub fn hierarchical(&self, kernel: Kernel) -> Result<Hierarchical, ConfigError> {
        Hierarchical::uniform(self.l1_block(kernel), self.l2_block(kernel), false)
    }

    /// The full-depth topology policy for `kernel`: one nesting level
    /// per machine-hierarchy level. At depth 2 this is bit-identical
    /// to [`hierarchical`](Self::hierarchical).
    pub fn topology_policy(&self, kernel: Kernel) -> Result<TopologyPolicy, ConfigError> {
        TopologyPolicy::uniform(&self.level_blocks(kernel), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r8000_like() -> BinGeometry {
        // The paper's R8000 model: 16 KB L1d, 4 MB unified L2.
        BinGeometry::two_level(16 << 10, 4 << 20)
    }

    #[test]
    fn l2_blocks_match_the_paper_rules() {
        let g = r8000_like();
        assert_eq!(g.l2_block(Kernel::MatMul), 1 << 21); // 4M/2
        assert_eq!(g.l2_block(Kernel::Pde), 1 << 21);
        assert_eq!(g.l2_block(Kernel::Sor), 1 << 20); // 4M/4
        assert_eq!(g.l2_block(Kernel::NBody), 1 << 20); // ⌊4M/3⌋ → 1M
    }

    #[test]
    fn l1_blocks_apply_the_same_shares_to_l1() {
        let g = r8000_like();
        assert_eq!(g.l1_block(Kernel::MatMul), 1 << 13); // 16K/2
        assert_eq!(g.l1_block(Kernel::Sor), 1 << 12); // 16K/4
        assert_eq!(g.l1_block(Kernel::NBody), 1 << 12); // ⌊16K/3⌋ → 4K
    }

    #[test]
    fn l1_block_never_exceeds_l2_block() {
        // Degenerate machine: L1 as large as L2.
        let g = BinGeometry::two_level(1 << 20, 1 << 20);
        for k in [Kernel::MatMul, Kernel::Pde, Kernel::Sor, Kernel::NBody] {
            assert!(g.l1_block(k) <= g.l2_block(k), "{k:?}");
        }
    }

    #[test]
    fn scaled_machines_keep_the_levels_apart() {
        // The bench's ratio-preserving scaling shrinks L2 only; at
        // smoke scale (matmul factor 1/128) a scaled R8000 has a 16 KB
        // L2 under its full-size 16 KB L1. The 1/8 budget cap must keep
        // sub-bins strictly finer than parents on every such geometry.
        for l2_capacity in [16u64 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20] {
            for l1_capacity in [16u64 << 10, 32 << 10] {
                let g = BinGeometry::two_level(l1_capacity, l2_capacity);
                for k in Kernel::ALL {
                    assert!(
                        g.l1_block(k) < g.l2_block(k),
                        "{k:?} on l1={l1_capacity} l2={l2_capacity}: \
                         {} !< {}",
                        g.l1_block(k),
                        g.l2_block(k)
                    );
                }
            }
        }
    }

    #[test]
    fn budget_cap_never_binds_on_real_machines() {
        // R8000 (16 KB : 4 MB) and R10000-like (32 KB : 1 MB) ratios
        // are far beyond 1:8 — the cap must leave their blocks exactly
        // where the paper's shares put them.
        let g = r8000_like();
        assert_eq!(g.l1_block(Kernel::MatMul), 1 << 13); // 16K/2
        let r10000 = BinGeometry::two_level(32 << 10, 1 << 20);
        assert_eq!(r10000.l1_block(Kernel::MatMul), 1 << 14); // 32K/2
    }

    #[test]
    fn flat_config_uses_the_l2_block() {
        let g = r8000_like();
        let config = g.flat_config(Kernel::Sor);
        assert_eq!(config.block_size(0), 1 << 20);
    }

    #[test]
    fn hierarchical_builds_for_every_kernel() {
        let g = r8000_like();
        for k in [Kernel::MatMul, Kernel::Pde, Kernel::Sor, Kernel::NBody] {
            let policy = g.hierarchical(k).expect("valid geometry");
            assert!(!format!("{policy:?}").is_empty());
        }
    }

    #[test]
    fn level_blocks_follow_the_machine_topology() {
        // numa2: 32K L1, 256K L2, 8M L3, 64M node — four ladder rungs.
        let g = BinGeometry::for_machine(&cachesim::MachineModel::numa2());
        assert_eq!(g.depth(), 4);
        let blocks = g.level_blocks(Kernel::MatMul);
        // Budgets chain coarse → fine: 64M, 8M, min(256K, 1M) = 256K,
        // min(32K, 32K) = 32K; each block is budget/2 rounded down.
        assert_eq!(blocks, vec![16 << 10, 128 << 10, 4 << 20, 32 << 20]);
        assert_eq!(g.l1_block(Kernel::MatMul), 16 << 10);
        assert_eq!(g.l2_block(Kernel::MatMul), 128 << 10);
        for k in Kernel::ALL {
            let blocks = g.level_blocks(k);
            assert!(
                blocks.windows(2).all(|w| w[0] <= w[1]),
                "{k:?}: {blocks:?} not monotone"
            );
            let policy = g.topology_policy(k).expect("valid ladder");
            assert_eq!(locality_sched::BinPolicy::depth(&policy), 4);
        }
    }

    #[test]
    fn topology_policy_at_depth_2_matches_hierarchical_blocks() {
        let g = r8000_like();
        for k in Kernel::ALL {
            assert_eq!(
                g.level_blocks(k),
                vec![g.l1_block(k), g.l2_block(k)],
                "{k:?}"
            );
            g.topology_policy(k).expect("valid depth-2 ladder");
        }
    }

    #[test]
    fn ground_truth_marks_sor_convergent_and_nbody_spatial() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
            assert_eq!(
                k.order_semantics() == OrderSemantics::Convergent,
                k == Kernel::Sor
            );
            assert_eq!(k.hint_kind() == HintKind::Spatial, k == Kernel::NBody);
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for (name, kernel) in [
            ("matmul", Kernel::MatMul),
            ("pde", Kernel::Pde),
            ("sor", Kernel::Sor),
            ("nbody", Kernel::NBody),
        ] {
            assert_eq!(Kernel::from_name(name), Some(kernel));
        }
        assert_eq!(Kernel::from_name("spmv"), None);
    }
}

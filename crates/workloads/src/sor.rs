//! Successive over-relaxation, §4.3 of the paper: the Lam/Rothberg/Wolf
//! compiler-community test case — `t` in-place sweeps of a 5-point
//! stencil over an `n × n` array.
//!
//! ```text
//! for i1 = 1 to t
//!   for i2 = 1 to n-1
//!     for i3 = 1 to n-1
//!       A[i2,i3] = 0.2 (A[i2,i3] + A[i2+1,i3] + A[i2−1,i3]
//!                        + A[i2,i3+1] + A[i2,i3−1])
//! ```
//!
//! Three versions, as in Table 6:
//!
//! * [`untiled`] — the best sequential loop order for column-major
//!   storage (sweep columns, walk each column contiguously), with the
//!   register chaining the paper's reference counts imply: 3 loads and
//!   1 store per update.
//! * [`hand_tiled`] — Lam/Rothberg/Wolf skewed tiling over all three
//!   loops (time included): both spatial loops are skewed by the sweep
//!   index and tiled `s × s` (the paper uses `s = 18`), so a tile's
//!   working set stays cache-resident across all `t` sweeps. The
//!   transformation is dependence-preserving: results are bitwise
//!   identical to [`untiled`] (asserted by tests). "The KAP and SGI
//!   compilers simply unroll the inner-most loop instead of performing
//!   tiling transformations, so we have included a hand tiled version."
//! * [`threaded`] — one thread per column *per sweep*, `t·(n−1)`
//!   threads forked up front with a 1-D hint (the column address) and
//!   run in a single `th_run`. Binning groups *all sweeps* of a column
//!   block together, so each block is swept `t` times while resident —
//!   this reorders across sweeps ("although there are data dependencies
//!   among threads, the algorithm works fine because the goal is to
//!   reach convergence"), so the result is convergence-equivalent, not
//!   bitwise equal.

use crate::overhead::{FORK_INSTRUCTIONS, RUN_INSTRUCTIONS};
use crate::WorkloadReport;
use locality_sched::{BinPolicy, Hints, PaperBlockHash, RunMode, Scheduler, SchedulerConfig};
use memtrace::{AddressSpace, MatrixLayout, TraceSink, TracedMatrix};

/// Instructions per update in the untiled (register-chained) loop.
pub const UNTILED_INSTRUCTIONS: u64 = 10;
/// Instructions per update in the tiled loop (skew bookkeeping, no
/// register chaining; the paper measures ~60% more instruction fetches
/// for the hand-tiled version).
pub const TILED_INSTRUCTIONS: u64 = 16;
/// The paper's tile size.
pub const PAPER_TILE: usize = 18;

/// The SOR array: `n × n` column-major, relaxed in place on the
/// interior `1..n−1` with fixed boundary values.
#[derive(Clone, Debug)]
pub struct SorData {
    /// The array being relaxed.
    pub a: TracedMatrix,
    n: usize,
}

impl SorData {
    /// Allocates an `n × n` array with deterministic pseudo-random
    /// contents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(space: &mut AddressSpace, n: usize, seed: u64) -> Self {
        assert!(n >= 3, "array must have interior points");
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 4096) as f64 / 4096.0
        };
        let a = TracedMatrix::from_fn(space, n, n, MatrixLayout::ColMajor, |_, _| next());
        SorData { a, n }
    }

    /// Array dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Snapshot of the full array (untraced), for version comparison.
    pub fn snapshot(&self) -> Vec<f64> {
        let n = self.n;
        (0..n)
            .flat_map(|j| (0..n).map(move |i| (i, j)))
            .map(|(i, j)| self.a.at(i, j))
            .collect()
    }

    /// Restores the array from a snapshot (untraced).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has the wrong length.
    pub fn restore(&mut self, snapshot: &[f64]) {
        let n = self.n;
        assert_eq!(snapshot.len(), n * n, "snapshot length mismatch");
        let mut it = snapshot.iter();
        for j in 0..n {
            for i in 0..n {
                self.a
                    .set_untraced(i, j, *it.next().expect("length checked"));
            }
        }
    }

    /// Result checksum.
    pub fn checksum(&self) -> f64 {
        self.a.checksum()
    }

    /// Maximum absolute stencil defect `|A − 0.2·(A + 4 neighbours)|`
    /// over the interior (untraced); decreases as SOR converges, used
    /// to compare convergence quality across versions.
    pub fn defect_inf_norm(&self) -> f64 {
        let n = self.n;
        let mut max = 0.0f64;
        for i3 in 1..n - 1 {
            for i2 in 1..n - 1 {
                let c = self.a.at(i2, i3);
                let relaxed = 0.2
                    * (c + self.a.at(i2 + 1, i3)
                        + self.a.at(i2 - 1, i3)
                        + self.a.at(i2, i3 + 1)
                        + self.a.at(i2, i3 - 1));
                max = max.max((c - relaxed).abs());
            }
        }
        max
    }
}

/// Relaxes one full column with register chaining: the previous result
/// (`A[i2−1,i3]`) and the previously-read below-neighbour (`A[i2,i3]`'s
/// old value) stay in registers, so each update costs 3 loads + 1
/// store, the minimum the paper's reference counts reflect.
fn relax_column_chained<S: TraceSink>(data: &mut SorData, i3: usize, sink: &mut S) {
    let n = data.n;
    let mut above = data.a.get(0, i3, sink); // A[0,i3]: boundary, old
    let mut center = data.a.get(1, i3, sink); // A[1,i3]: old value
    for i2 in 1..n - 1 {
        let below = data.a.get(i2 + 1, i3, sink);
        let left = data.a.get(i2, i3 - 1, sink);
        let right = data.a.get(i2, i3 + 1, sink);
        let new = 0.2 * (center + below + above + right + left);
        data.a.set(i2, i3, new, sink);
        sink.instructions(UNTILED_INSTRUCTIONS);
        above = new; // becomes A[i2−1,i3] (updated) for the next row
        center = below; // the old A[i2+1,i3] becomes the next centre
    }
}

/// The untiled version: `t` sweeps, each walking columns
/// left-to-right and rows top-to-bottom within a column.
pub fn untiled<S: TraceSink>(data: &mut SorData, t: usize, sink: &mut S) -> WorkloadReport {
    let n = data.n;
    for _ in 0..t {
        for i3 in 1..n - 1 {
            relax_column_chained(data, i3, sink);
        }
    }
    WorkloadReport::unthreaded("sor/untiled", data.checksum())
}

/// One un-chained update (the tiled loop cannot chain registers across
/// its skewed iteration space): 5 loads + 1 store.
#[inline]
fn relax_point<S: TraceSink>(data: &mut SorData, i2: usize, i3: usize, sink: &mut S) {
    let c = data.a.get(i2, i3, sink);
    let below = data.a.get(i2 + 1, i3, sink);
    let above = data.a.get(i2 - 1, i3, sink);
    let right = data.a.get(i2, i3 + 1, sink);
    let left = data.a.get(i2, i3 - 1, sink);
    data.a
        .set(i2, i3, 0.2 * (c + below + above + right + left), sink);
    sink.instructions(TILED_INSTRUCTIONS);
}

/// The hand-tiled version: skew both spatial loops by the sweep index
/// (`i2' = i2 + i1`, `i3' = i3 + i1`), tile the skewed space `s × s`,
/// and run all `t` sweeps inside each tile. After skewing, every
/// dependence vector is lexicographically non-negative, so the nest is
/// fully permutable and the tiling is legal — results are bitwise
/// identical to [`untiled`].
pub fn hand_tiled<S: TraceSink>(
    data: &mut SorData,
    t: usize,
    s: usize,
    sink: &mut S,
) -> WorkloadReport {
    assert!(s >= 1, "tile size must be positive");
    let n = data.n;
    // Skewed coordinates range over [1 + i1, n - 2 + i1] for each sweep
    // i1 in 1..=t; globally [2, n - 2 + t].
    let lo = 2usize;
    let hi = n - 2 + t;
    let mut i2t = lo;
    while i2t <= hi {
        let mut i3t = lo;
        while i3t <= hi {
            for i1 in 1..=t {
                let i2_lo = i2t.max(1 + i1);
                let i2_hi = (i2t + s - 1).min(n - 2 + i1);
                let i3_lo = i3t.max(1 + i1);
                let i3_hi = (i3t + s - 1).min(n - 2 + i1);
                if i2_lo > i2_hi || i3_lo > i3_hi {
                    continue;
                }
                for i3p in i3_lo..=i3_hi {
                    for i2p in i2_lo..=i2_hi {
                        relax_point(data, i2p - i1, i3p - i1, sink);
                    }
                }
            }
            i3t += s;
        }
        i2t += s;
    }
    WorkloadReport::unthreaded("sor/hand-tiled", data.checksum())
}

struct SorCtx<'a, S> {
    data: &'a mut SorData,
    sink: &'a mut S,
}

fn sor_thread<S: TraceSink>(ctx: &mut SorCtx<'_, S>, i3: usize, _unused: usize) {
    ctx.sink.instructions(RUN_INSTRUCTIONS);
    relax_column_chained(ctx.data, i3, ctx.sink);
}

/// The threaded version: `t·(n−2)` column-relaxation threads forked up
/// front — `th_fork(Compute, i3, 0, A(0,i3−1), …)` — and run in a
/// single `th_run`. Each bin holds every sweep of a block of columns,
/// so the block stays L2-resident for all `t` sweeps.
pub fn threaded<S: TraceSink>(
    data: &mut SorData,
    t: usize,
    config: SchedulerConfig,
    sink: &mut S,
) -> WorkloadReport {
    let policy = PaperBlockHash::from_config(&config);
    threaded_with(data, t, config, policy, sink)
}

/// [`threaded`] under an arbitrary [`BinPolicy`]: same hints, different
/// hints→bin mapping. Like the flat version, convergence tolerates any
/// drain order (the paper's own observation about threaded SOR).
pub fn threaded_with<S: TraceSink, P: BinPolicy>(
    data: &mut SorData,
    t: usize,
    config: SchedulerConfig,
    policy: P,
    sink: &mut S,
) -> WorkloadReport {
    let n = data.n;
    let sched_stats = {
        let mut sched: Scheduler<SorCtx<'_, S>, P> = Scheduler::with_policy(config, policy);
        sched.trace_package_memory();
        for _i1 in 1..=t {
            for i3 in 1..n - 1 {
                sched.fork_traced(
                    sor_thread::<S>,
                    i3,
                    0,
                    Hints::one(data.a.col_addr(i3)),
                    sink,
                );
                sink.instructions(FORK_INSTRUCTIONS);
            }
        }
        let stats = sched.stats();
        let mut ctx = SorCtx { data, sink };
        sched.run_traced(&mut ctx, RunMode::Consume, |c| &mut *c.sink);
        stats
    };
    WorkloadReport::threaded("sor/threaded", data.checksum(), sched_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::{CountingSink, NullSink};

    fn data(n: usize) -> SorData {
        let mut space = AddressSpace::new();
        SorData::new(&mut space, n, 99)
    }

    #[test]
    fn hand_tiled_is_bitwise_identical_to_untiled() {
        for (n, t, s) in [(21, 4, 3), (32, 7, 5), (17, 1, 18), (19, 10, 4)] {
            let mut d = data(n);
            let initial = d.snapshot();
            untiled(&mut d, t, &mut NullSink);
            let reference = d.snapshot();
            d.restore(&initial);
            hand_tiled(&mut d, t, s, &mut NullSink);
            assert_eq!(d.snapshot(), reference, "n={n} t={t} s={s}");
        }
    }

    #[test]
    fn threaded_converges_like_untiled() {
        let n = 33;
        let t = 12;
        let mut d = data(n);
        let initial = d.snapshot();
        let start_defect = d.defect_inf_norm();
        untiled(&mut d, t, &mut NullSink);
        let untiled_defect = d.defect_inf_norm();

        d.restore(&initial);
        let config = SchedulerConfig::builder().block_size(512).build().unwrap();
        threaded(&mut d, t, config, &mut NullSink);
        let threaded_defect = d.defect_inf_norm();

        assert!(untiled_defect < start_defect * 0.2);
        // The paper: reordering is fine "because the goal is to reach
        // convergence". Accept the same order of magnitude.
        assert!(
            threaded_defect < start_defect * 0.2,
            "threaded failed to converge: start {start_defect}, threaded {threaded_defect}"
        );
    }

    #[test]
    fn threaded_with_one_bin_is_bitwise_identical() {
        // If every column lands in a single bin, the threaded execution
        // order degenerates to fork order = the untiled order.
        let n = 17;
        let t = 3;
        let mut d = data(n);
        let initial = d.snapshot();
        untiled(&mut d, t, &mut NullSink);
        let reference = d.snapshot();
        d.restore(&initial);
        let config = SchedulerConfig::builder()
            .block_size(1 << 40)
            .build()
            .unwrap();
        threaded(&mut d, t, config, &mut NullSink);
        assert_eq!(d.snapshot(), reference);
    }

    #[test]
    fn untiled_reference_counts_match_paper() {
        // 4 references (3 loads + 1 store) and 10 instructions per
        // update, plus 2 loads per column prologue.
        let n = 20usize;
        let t = 3;
        let mut d = data(n);
        let mut sink = CountingSink::new();
        untiled(&mut d, t, &mut sink);
        let cols = (n - 2) as u64;
        let updates = cols * cols * t as u64;
        assert_eq!(sink.data_references(), 4 * updates + 2 * cols * t as u64);
        assert_eq!(sink.writes(), updates);
        assert_eq!(sink.instructions_executed(), UNTILED_INSTRUCTIONS * updates);
    }

    #[test]
    fn tiled_does_more_references_and_instructions() {
        let n = 20usize;
        let t = 3;
        let mut d = data(n);
        let mut untiled_sink = CountingSink::new();
        let initial = d.snapshot();
        untiled(&mut d, t, &mut untiled_sink);
        d.restore(&initial);
        let mut tiled_sink = CountingSink::new();
        hand_tiled(&mut d, t, 6, &mut tiled_sink);
        assert!(tiled_sink.data_references() > untiled_sink.data_references());
        assert!(tiled_sink.instructions_executed() > untiled_sink.instructions_executed());
        // Same number of updates either way.
        assert_eq!(tiled_sink.writes(), untiled_sink.writes());
    }

    #[test]
    fn threaded_thread_count_matches_paper_formula() {
        // t (n-2) threads — the paper's t(n-1) with its 1-based
        // convention.
        let n = 12;
        let t = 5;
        let mut d = data(n);
        let config = SchedulerConfig::builder().block_size(256).build().unwrap();
        let report = threaded(&mut d, t, config, &mut NullSink);
        assert_eq!(report.threads, (t * (n - 2)) as u64);
        let sched = report.sched.unwrap();
        assert!(sched.bins() > 1, "small blocks must yield several bins");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut d = data(8);
        let snap = d.snapshot();
        untiled(&mut d, 2, &mut NullSink);
        assert_ne!(d.snapshot(), snap);
        d.restore(&snap);
        assert_eq!(d.snapshot(), snap);
    }
}

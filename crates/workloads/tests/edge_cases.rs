//! Edge-case and failure-injection tests for the workloads.

use locality_sched::SchedulerConfig;
use memtrace::{AddressSpace, CountingSink, NullSink};
use workloads::{matmul, nbody, pde, sor};

fn sched() -> SchedulerConfig {
    SchedulerConfig::builder().block_size(4096).build().unwrap()
}

#[test]
fn matmul_n1_works_in_every_version() {
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, 1, 1);
    let expected = data.a.at(0, 0) * data.b.at(0, 0);
    matmul::interchanged(&mut data, &mut NullSink);
    assert_eq!(data.c.at(0, 0), expected);
    data.reset();
    matmul::transposed(&mut data, &mut NullSink);
    assert_eq!(data.c.at(0, 0), expected);
    data.reset();
    matmul::tiled_interchanged(
        &mut data,
        matmul::TileConfig::default(),
        &mut space,
        &mut NullSink,
    );
    assert_eq!(data.c.at(0, 0), expected);
    data.reset();
    let report = matmul::threaded(&mut data, sched(), &mut NullSink);
    assert_eq!(data.c.at(0, 0), expected);
    assert_eq!(report.threads, 1);
}

#[test]
fn matmul_odd_sizes_agree() {
    // Odd n exercises the dot-product unroll remainder and microkernel
    // edge blocks simultaneously.
    for n in [3, 7, 13] {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, n, 5);
        matmul::transposed(&mut data, &mut NullSink);
        assert!(data.max_error_vs_naive() < 1e-12, "n = {n}");
    }
}

#[test]
fn sor_minimum_grid() {
    let mut space = AddressSpace::new();
    let mut data = sor::SorData::new(&mut space, 3, 1);
    let before = data.a.at(1, 1);
    sor::untiled(&mut data, 1, &mut NullSink);
    assert_ne!(data.a.at(1, 1), before, "the single interior point relaxed");
    // Tiled with a tile larger than the problem still matches.
    let mut space = AddressSpace::new();
    let mut a = sor::SorData::new(&mut space, 3, 1);
    let mut b = sor::SorData::new(&mut space, 3, 1);
    b.restore(&a.snapshot());
    sor::untiled(&mut a, 4, &mut NullSink);
    sor::hand_tiled(&mut b, 4, 100, &mut NullSink);
    assert_eq!(a.snapshot(), b.snapshot());
}

#[test]
fn sor_zero_sweeps_is_identity() {
    let mut space = AddressSpace::new();
    let mut data = sor::SorData::new(&mut space, 9, 1);
    let before = data.snapshot();
    let mut sink = CountingSink::new();
    sor::untiled(&mut data, 0, &mut sink);
    assert_eq!(data.snapshot(), before);
    assert_eq!(sink.data_references(), 0);
    // Threaded with zero sweeps forks zero threads.
    let report = sor::threaded(&mut data, 0, sched(), &mut NullSink);
    assert_eq!(report.threads, 0);
}

#[test]
fn pde_zero_iterations_still_computes_residual() {
    let mut space = AddressSpace::new();
    let mut data = pde::PdeData::new(&mut space, 9, 1);
    pde::regular(&mut data, 0, &mut NullSink);
    // u untouched (zero), r = b at interior points.
    for i in 1..8 {
        for j in 1..8 {
            assert_eq!(data.u.at(i, j), 0.0);
            assert_eq!(data.r.at(i, j), data.b.at(i, j));
        }
    }
}

#[test]
fn nbody_zero_and_one_body() {
    let mut space = AddressSpace::new();
    let mut empty = nbody::NBodyData::new(&mut space, 0, 1);
    let report = nbody::unthreaded(&mut empty, 2, nbody::NBodyParams::default(), &mut NullSink);
    assert_eq!(report.checksum, 0.0);

    let mut single = nbody::NBodyData::new(&mut space, 1, 1);
    let params = nbody::NBodyParams::default();
    let pos_before = single.bodies.at(0).pos;
    let vel = single.bodies.at(0).vel;
    nbody::unthreaded(&mut single, 1, params, &mut NullSink);
    let pos_after = single.bodies.at(0).pos;
    // No other bodies: acceleration 0, pure drift.
    for d in 0..3 {
        assert!((pos_after[d] - (pos_before[d] + vel[d] * params.dt)).abs() < 1e-15);
    }
}

#[test]
#[should_panic(expected = "arena exhausted")]
fn tree_arena_exhaustion_is_detected() {
    let mut space = AddressSpace::new();
    // Tiny arena, many maximally-clustered bodies: the octree runs out
    // of nodes and must fail loudly, not corrupt memory.
    let mut tree = nbody::BhTree::with_capacity(&mut space, 1);
    let bodies: Vec<nbody::Body> = (0..4096)
        .map(|i| nbody::Body {
            pos: [
                0.5 + (i % 64) as f64 / 1e3,
                0.5 + (i / 64) as f64 / 1e3,
                0.5,
            ],
            mass: 1.0,
            vel: [0.0; 3],
            acc: [0.0; 3],
        })
        .collect();
    let buf = memtrace::TracedBuf::from_vec(&mut space, bodies);
    tree.build(&buf, [0.5; 3], 0.5, &mut NullSink);
}

#[test]
fn threaded_pde_handles_single_iteration() {
    let mut space = AddressSpace::new();
    let mut a = pde::PdeData::new(&mut space, 17, 3);
    let mut b = pde::PdeData::new(&mut space, 17, 3);
    pde::regular(&mut a, 1, &mut NullSink);
    pde::threaded(&mut b, 1, sched(), &mut NullSink);
    for i in 0..17 {
        for j in 0..17 {
            assert_eq!(a.u.at(i, j), b.u.at(i, j));
            assert_eq!(a.r.at(i, j), b.r.at(i, j));
        }
    }
}

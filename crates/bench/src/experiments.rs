//! One function per paper table/figure, returning structured results.

use crate::ExpScale;
use cachesim::{MachineModel, SimReport, SimSink, TimeBreakdown};
use locality_sched::{
    BinPolicy, Hints, PaperBlockHash, ParRunReport, ParScheduler, RunMode, Scheduler,
    SchedulerConfig, StealPolicy,
};
use memtrace::AddressSpace;
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use workloads::{matmul, nbody, pde, sor, BinGeometry, Kernel};

/// Largest power of two ≤ `x`.
fn prev_power_of_two(x: u64) -> u64 {
    assert!(x > 0);
    1 << (63 - x.leading_zeros())
}

/// The scheduler configuration a workload's threaded version uses on a
/// given machine, following the paper's choices:
///
/// * matmul: 2-D hints, block = L2/2 (§4.2);
/// * PDE: 1-D hints over line addresses, block = L2/2;
/// * SOR: 1-D hints over column addresses, block = L2/4 (the paper's
///   63 bins over a 32 MB array imply ~512 KB blocks on the 2 MB L2);
/// * N-body: 3-D hints, the package default of dimensions summing to
///   the L2 size (§3.2).
pub fn sched_config_for(workload: &str, machine: &MachineModel) -> SchedulerConfig {
    let kernel =
        Kernel::from_name(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    BinGeometry::for_machine(machine).flat_config(kernel)
}

// ---------------------------------------------------------------------
// Parallel experiment driver: every (workload version × machine)
// combination of the paper tables is an independent simulation, so the
// suites build self-contained cells that a scoped-thread driver can fan
// out — with a join-in-spawn-order reduce that keeps the output
// identical to the sequential driver's.
// ---------------------------------------------------------------------

/// One independent simulation cell: a (workload version × machine)
/// combination owning all of its state, returning its table entry.
pub type Cell = Box<dyn FnOnce() -> (String, SimReport) + Send>;

/// How a batch of independent [`Cell`]s executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Driver {
    /// One after another on the calling thread (the reference order).
    Sequential,
    /// One OS thread per cell via [`std::thread::scope`], results
    /// collected by joining handles in spawn order.
    #[default]
    Parallel,
}

/// Driver-level probe state: per-cell wall time and the number of
/// cells executed, accumulated across every [`run_cells`] call in the
/// process. Process-global (const constructors make the static free)
/// because cells run on driver-owned threads with no natural place to
/// thread a handle through.
struct DriverObs {
    cells: probe::Counter,
    cell_wall_ns: probe::Histogram,
}

static DRIVER_OBS: DriverObs = DriverObs {
    cells: probe::Counter::new(),
    cell_wall_ns: probe::Histogram::new(),
};

/// The driver's probe section (`"driver"`): cells executed so far and
/// the per-cell wall-time distribution.
pub fn driver_profile() -> probe::Section {
    let mut section = probe::Section::new("driver");
    section
        .counter("cells", DRIVER_OBS.cells.get())
        .histogram("cell_wall_ns", &DRIVER_OBS.cell_wall_ns);
    section
}

/// Runs `work` as one driver cell: counted in the `"driver"` probe
/// section and timed into its wall-clock histogram.
///
/// This is the accounting entry point for *every* independent
/// simulation the process runs — [`run_cells`] batches route through it
/// per cell, and benchmark mains that time runs directly (simbench's
/// slow/fast/sharded repetitions) must wrap each timed run in it, or
/// the published `"driver":{"cells":…}` counter silently reads zero.
pub fn drive<T>(work: impl FnOnce() -> T) -> T {
    let _span = DRIVER_OBS.cell_wall_ns.span();
    DRIVER_OBS.cells.incr();
    work()
}

/// Runs one cell under the driver's probes.
fn timed_cell(cell: Cell) -> (String, SimReport) {
    drive(cell)
}

/// Runs `cells` under `driver`, returning results in cell order.
///
/// Determinism: each cell owns its address space, workload data and
/// [`SimSink`], shares nothing mutable with its siblings, and the
/// reduce joins handles in spawn order — so the result vector is
/// *identical* to the sequential driver's regardless of how the OS
/// interleaves cell completion (see DESIGN.md).
pub fn run_cells(cells: Vec<Cell>, driver: Driver) -> Vec<(String, SimReport)> {
    match driver {
        Driver::Sequential => cells.into_iter().map(timed_cell).collect(),
        Driver::Parallel => std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .into_iter()
                .map(|cell| scope.spawn(move || timed_cell(cell)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("simulation cell panicked"))
                .collect()
        }),
    }
}

/// Wraps one workload run as a [`Cell`]: fresh address space and sink
/// over a clone of `machine`, report collected on completion.
fn cell<F>(machine: &MachineModel, run: F) -> Cell
where
    F: FnOnce(&mut AddressSpace, &mut SimSink) -> workloads::WorkloadReport + Send + 'static,
{
    let machine = machine.clone();
    Box::new(move || {
        let mut space = AddressSpace::new();
        let mut sim = SimSink::new(machine.hierarchy());
        let report = run(&mut space, &mut sim);
        sim.add_threads(report.threads);
        (report.name.clone(), sim.finish())
    })
}

// ---------------------------------------------------------------------
// Workload suites: one cell per version of one workload on one machine.
// ---------------------------------------------------------------------

/// The five matmul versions of Table 2 on `machine`, as cells.
pub fn matmul_cells(scale: &ExpScale, machine: &MachineModel) -> Vec<Cell> {
    let n = scale.matmul_n;
    let tiles =
        matmul::TileConfig::for_caches(machine.l1_config().size(), machine.l2_config().size());
    let sched = sched_config_for("matmul", machine);
    let data = move |space: &mut AddressSpace| matmul::MatMulData::new(space, n, 42);
    vec![
        cell(machine, move |sp, s| matmul::interchanged(&mut data(sp), s)),
        cell(machine, move |sp, s| matmul::transposed(&mut data(sp), s)),
        cell(machine, move |sp, s| {
            matmul::tiled_interchanged(&mut data(sp), tiles, sp, s)
        }),
        cell(machine, move |sp, s| {
            matmul::tiled_transposed(&mut data(sp), tiles, sp, s)
        }),
        cell(machine, move |sp, s| {
            matmul::threaded(&mut data(sp), sched, s)
        }),
    ]
}

/// The three PDE versions of Table 4 on `machine`, as cells.
pub fn pde_cells(scale: &ExpScale, machine: &MachineModel) -> Vec<Cell> {
    let n = scale.pde_n;
    let iters = scale.pde_iters;
    let sched = sched_config_for("pde", machine);
    let data = move |space: &mut AddressSpace| pde::PdeData::new(space, n, 7);
    vec![
        cell(machine, move |sp, s| pde::regular(&mut data(sp), iters, s)),
        cell(machine, move |sp, s| {
            pde::cache_conscious(&mut data(sp), iters, s)
        }),
        cell(machine, move |sp, s| {
            pde::threaded(&mut data(sp), iters, sched, s)
        }),
    ]
}

/// The three SOR versions of Table 6 on `machine`, as cells.
pub fn sor_cells(scale: &ExpScale, machine: &MachineModel) -> Vec<Cell> {
    let n = scale.sor_n;
    let t = scale.sor_t;
    let tile = scale.sor_tile;
    let sched = sched_config_for("sor", machine);
    let data = move |space: &mut AddressSpace| sor::SorData::new(space, n, 99);
    vec![
        cell(machine, move |sp, s| sor::untiled(&mut data(sp), t, s)),
        cell(machine, move |sp, s| {
            sor::hand_tiled(&mut data(sp), t, tile, s)
        }),
        cell(machine, move |sp, s| {
            sor::threaded(&mut data(sp), t, sched, s)
        }),
    ]
}

/// The two N-body versions of Table 8 on `machine`, as cells.
pub fn nbody_cells(scale: &ExpScale, machine: &MachineModel, iterations: usize) -> Vec<Cell> {
    let n = scale.nbody_n;
    let params = nbody::NBodyParams {
        // Fix the scheduling plane so the default block (L2/3) cuts
        // each dimension into 4, as on the full-size machine.
        plane_extent: 4 * (machine.l2_config().size() / 3),
        ..nbody::NBodyParams::default()
    };
    let sched = sched_config_for("nbody", machine);
    let data = move |space: &mut AddressSpace| nbody::NBodyData::new(space, n, 2024);
    vec![
        cell(machine, move |sp, s| {
            nbody::unthreaded(&mut data(sp), iterations, params, s)
        }),
        cell(machine, move |sp, s| {
            nbody::threaded(&mut data(sp), iterations, params, sched, s)
        }),
    ]
}

/// Runs the five matmul versions of Table 2 on `machine`.
pub fn matmul_suite(scale: &ExpScale, machine: &MachineModel) -> Vec<(String, SimReport)> {
    run_cells(matmul_cells(scale, machine), Driver::default())
}

/// Runs the three PDE versions of Table 4 on `machine`.
pub fn pde_suite(scale: &ExpScale, machine: &MachineModel) -> Vec<(String, SimReport)> {
    run_cells(pde_cells(scale, machine), Driver::default())
}

/// Runs the three SOR versions of Table 6 on `machine`.
pub fn sor_suite(scale: &ExpScale, machine: &MachineModel) -> Vec<(String, SimReport)> {
    run_cells(sor_cells(scale, machine), Driver::default())
}

/// Runs the two N-body versions of Table 8 on `machine`.
pub fn nbody_suite(
    scale: &ExpScale,
    machine: &MachineModel,
    iterations: usize,
) -> Vec<(String, SimReport)> {
    run_cells(nbody_cells(scale, machine, iterations), Driver::default())
}

// ---------------------------------------------------------------------
// Table results
// ---------------------------------------------------------------------

/// Host-measured thread-package overhead (Table 1's methodology: fork
/// and run ~1M null threads evenly distributed across the scheduling
/// plane).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Result {
    /// Threads forked and run.
    pub threads: u64,
    /// Nanoseconds per fork.
    pub fork_ns: f64,
    /// Nanoseconds per run dispatch.
    pub run_ns: f64,
}

impl Table1Result {
    /// Total per-thread overhead in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.fork_ns + self.run_ns
    }
}

fn null_thread(_ctx: &mut (), _a: usize, _b: usize) {}

/// Table 1: measures this implementation's fork/run overhead on the
/// host, with the paper's micro-benchmark shape (uniformly distributed
/// 2-D hints).
pub fn table1(threads: u64) -> Table1Result {
    let config = SchedulerConfig::builder()
        .block_size(1 << 20)
        .build()
        .expect("static config");
    let block = 1u64 << 20;
    let mut best_fork = f64::INFINITY;
    let mut best_run = f64::INFINITY;
    for _rep in 0..3 {
        let mut sched: Scheduler<()> = Scheduler::new(config);
        let start = Instant::now();
        for i in 0..threads {
            let h1 = (i % 16) * block;
            let h2 = ((i / 16) % 16) * block;
            sched.fork(null_thread, i as usize, 0, Hints::two(h1.into(), h2.into()));
        }
        let fork_ns = start.elapsed().as_nanos() as f64 / threads as f64;
        let start = Instant::now();
        let stats = sched.run(&mut (), RunMode::Consume);
        let run_ns = start.elapsed().as_nanos() as f64 / threads as f64;
        assert_eq!(stats.threads_run, threads);
        best_fork = best_fork.min(fork_ns);
        best_run = best_run.min(run_ns);
    }
    Table1Result {
        threads,
        fork_ns: best_fork,
        run_ns: best_run,
    }
}

/// One row of a timing table: modeled seconds per machine.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeRow {
    /// Version name.
    pub version: String,
    /// Modeled time on the (scaled) R8000.
    pub r8000: TimeBreakdown,
    /// Modeled time on the (scaled) R10000.
    pub r10000: TimeBreakdown,
}

/// One row of a cache-miss table.
#[derive(Clone, Debug, PartialEq)]
pub struct MissRow {
    /// Version name.
    pub version: String,
    /// Simulation report on the (scaled) R8000.
    pub report: SimReport,
}

fn time_rows(
    cells_on: impl Fn(&MachineModel) -> Vec<Cell>,
    r8000: &MachineModel,
    r10000: &MachineModel,
    driver: Driver,
) -> Vec<TimeRow> {
    // Both machines' cells go into one batch, so a parallel driver
    // overlaps all (version × machine) combinations at once.
    let mut cells = cells_on(r8000);
    let split = cells.len();
    cells.extend(cells_on(r10000));
    let mut on_r8000 = run_cells(cells, driver);
    let on_r10000 = on_r8000.split_off(split);
    on_r8000
        .into_iter()
        .zip(on_r10000)
        .map(|((name, rep8), (name10, rep10))| {
            debug_assert_eq!(name, name10);
            TimeRow {
                version: name,
                r8000: rep8.time_on(r8000),
                r10000: rep10.time_on(r10000),
            }
        })
        .collect()
}

/// The two machine models at a workload's scale factor: the L2 scales
/// by `factor` — whole-array working sets shrink with the problem
/// *area*, so this preserves the paper's data : L2 ratios — while the
/// L1 keeps its full size, because L1-level working sets (a few matrix
/// columns, a register tile) shrink only with the problem *side* and
/// already sit at the same order as the real L1. Shrinking the L1 too
/// would fabricate conflict thrashing the paper's machines never saw.
pub fn machines(factor: f64) -> (MachineModel, MachineModel) {
    (
        MachineModel::r8000()
            .scaled_split(1.0, factor)
            .expect("valid scaled machine"),
        MachineModel::r10000()
            .scaled_split(1.0, factor)
            .expect("valid scaled machine"),
    )
}

/// Table 2: matmul modeled seconds, five versions × two machines.
pub fn table2(scale: &ExpScale) -> Vec<TimeRow> {
    table2_with(scale, Driver::default())
}

/// [`table2`] under an explicit [`Driver`] (the parallel and sequential
/// drivers produce identical rows; see `tests/fastpath_equivalence.rs`).
pub fn table2_with(scale: &ExpScale, driver: Driver) -> Vec<TimeRow> {
    let (r8000, r10000) = machines(scale.matmul_factor);
    time_rows(|m| matmul_cells(scale, m), &r8000, &r10000, driver)
}

/// Table 3: matmul reference/miss simulation on the scaled R8000
/// (untiled interchanged, tiled interchanged, threaded — the paper's
/// three columns).
pub fn table3(scale: &ExpScale) -> Vec<MissRow> {
    let (r8000, _) = machines(scale.matmul_factor);
    matmul_suite(scale, &r8000)
        .into_iter()
        .filter(|(name, _)| {
            name == "matmul/interchanged"
                || name == "matmul/tiled-interchanged"
                || name == "matmul/threaded"
        })
        .map(|(version, report)| MissRow { version, report })
        .collect()
}

/// Table 4: PDE modeled seconds.
pub fn table4(scale: &ExpScale) -> Vec<TimeRow> {
    table4_with(scale, Driver::default())
}

/// [`table4`] under an explicit [`Driver`].
pub fn table4_with(scale: &ExpScale, driver: Driver) -> Vec<TimeRow> {
    let (r8000, r10000) = machines(scale.pde_factor);
    time_rows(|m| pde_cells(scale, m), &r8000, &r10000, driver)
}

/// Table 5: PDE simulation on the scaled R8000.
pub fn table5(scale: &ExpScale) -> Vec<MissRow> {
    let (r8000, _) = machines(scale.pde_factor);
    pde_suite(scale, &r8000)
        .into_iter()
        .map(|(version, report)| MissRow { version, report })
        .collect()
}

/// Table 6: SOR modeled seconds.
pub fn table6(scale: &ExpScale) -> Vec<TimeRow> {
    table6_with(scale, Driver::default())
}

/// [`table6`] under an explicit [`Driver`].
pub fn table6_with(scale: &ExpScale, driver: Driver) -> Vec<TimeRow> {
    let (r8000, r10000) = machines(scale.sor_factor);
    time_rows(|m| sor_cells(scale, m), &r8000, &r10000, driver)
}

/// Table 7: SOR simulation on the scaled R8000.
pub fn table7(scale: &ExpScale) -> Vec<MissRow> {
    let (r8000, _) = machines(scale.sor_factor);
    sor_suite(scale, &r8000)
        .into_iter()
        .map(|(version, report)| MissRow { version, report })
        .collect()
}

/// Table 8: N-body modeled seconds over the full iteration count.
pub fn table8(scale: &ExpScale) -> Vec<TimeRow> {
    table8_with(scale, Driver::default())
}

/// [`table8`] under an explicit [`Driver`].
pub fn table8_with(scale: &ExpScale, driver: Driver) -> Vec<TimeRow> {
    let (r8000, r10000) = machines(scale.nbody_factor);
    time_rows(
        |m| nbody_cells(scale, m, scale.nbody_iters),
        &r8000,
        &r10000,
        driver,
    )
}

/// Table 9: N-body simulation on the scaled R8000 — one iteration, as
/// in the paper.
pub fn table9(scale: &ExpScale) -> Vec<MissRow> {
    let (r8000, _) = machines(scale.nbody_factor);
    nbody_suite(scale, &r8000, 1)
        .into_iter()
        .map(|(version, report)| MissRow { version, report })
        .collect()
}

// ---------------------------------------------------------------------
// Steal-policy ablation (host wall-clock)
// ---------------------------------------------------------------------

/// Scheduling-space block size used by the steal ablation's hints: one
/// bin per 4 KB block.
const STEAL_BLOCK: u64 = 4096;

/// Doubles per bin window (4 KB — cache-resident, so the workload is
/// compute-bound and worker *balance*, not memory bandwidth, decides
/// the critical path).
const STEAL_WINDOW: usize = 512;

/// Context for the steal ablation's workload: every thread of bin b
/// makes `passes[b]` summing passes over the bin's window of `data`
/// (the bin's working set); results land in per-thread `out` cells,
/// and each bin records which OS thread executed it in `owner` so the
/// run's critical path can be recomputed from known per-bin costs.
pub struct StealCtx {
    data: Vec<f64>,
    passes: Vec<usize>,
    out: Vec<AtomicU64>,
    owner: Vec<AtomicU64>,
}

fn windowed_sum(ctx: &StealCtx, thread: usize, bin: usize) {
    let window = &ctx.data[bin * STEAL_WINDOW..(bin + 1) * STEAL_WINDOW];
    let mut acc = 0.0f64;
    for _ in 0..ctx.passes[bin] {
        for &x in window {
            acc += x;
        }
    }
    ctx.out[thread].store(acc.to_bits(), Ordering::Relaxed);
    // A bin never splits across workers, so one store per thread of the
    // bin is enough — they all write the same worker's id.
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    ctx.owner[bin].store(h.finish() | 1, Ordering::Relaxed);
}

fn steal_ctx(bins: usize, threads_per_bin: usize, passes_scale: usize) -> StealCtx {
    StealCtx {
        data: (0..bins * STEAL_WINDOW)
            .map(|i| (i % 97) as f64 * 0.5)
            .collect(),
        // Triangular cost profile: every thread of bin b costs
        // (b + 1) × a thread of bin 0. A partition balanced by
        // *thread count* — the ParScheduler's static handout —
        // therefore misjudges *work* by up to 2×, which is exactly
        // the imbalance stealing exists to absorb.
        passes: (0..bins).map(|b| (b + 1) * passes_scale).collect(),
        out: (0..bins * threads_per_bin)
            .map(|_| AtomicU64::new(0))
            .collect(),
        owner: (0..bins).map(|_| AtomicU64::new(0)).collect(),
    }
}

/// Critical path of the run just recorded in `ctx.owner`, in *work
/// units* (window-passes): groups bins by the OS thread that executed
/// them and returns (max per-thread unit sum, total units). Work units
/// are exact — each thread of bin b costs `passes[b]` passes by
/// construction — so unlike wall-clock busy time the result is
/// unaffected by how the host time-slices workers onto cores.
fn critical_path_units(ctx: &StealCtx, threads_per_bin: usize) -> (u64, u64) {
    let mut per_owner: Vec<(u64, u64)> = Vec::new();
    let mut total = 0u64;
    for (bin, owner) in ctx.owner.iter().enumerate() {
        let owner = owner.load(Ordering::Relaxed);
        assert_ne!(owner, 0, "bin {bin} never executed");
        let units = (ctx.passes[bin] * threads_per_bin) as u64;
        total += units;
        match per_owner.iter_mut().find(|(id, _)| *id == owner) {
            Some((_, sum)) => *sum += units,
            None => per_owner.push((owner, units)),
        }
    }
    let max = per_owner.iter().map(|&(_, sum)| sum).max().unwrap_or(0);
    (max, total)
}

fn fork_windowed(sched: &mut ParScheduler<StealCtx>, bins: usize, threads_per_bin: usize) {
    let mut thread = 0usize;
    for bin in 0..bins {
        for _ in 0..threads_per_bin {
            sched.fork(
                windowed_sum,
                thread,
                bin,
                Hints::one((bin as u64 * STEAL_BLOCK).into()),
            );
            thread += 1;
        }
    }
}

/// One measured cell of the steal ablation: one (policy, workers)
/// combination, best of three runs.
///
/// The headline metric is the *makespan* in deterministic work units —
/// the maximum per-worker sum of known per-bin costs, i.e. the run's
/// critical path under ideal parallel execution. Wall-clock (and the
/// `Instant`-based per-worker busy times inside `report`) conflate
/// scheduling quality with how many physical cores the host happens to
/// have: on a 1-core host every multi-worker wall-clock is just the
/// serialized total, and a worker's busy window absorbs time-slice
/// preemption from its peers. Work units do not.
#[derive(Clone, Debug)]
pub struct StealRow {
    /// Steal policy under test.
    pub policy: StealPolicy,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock nanoseconds of the best repetition.
    pub wall_ns: u64,
    /// Critical path of the best repetition, in work units
    /// (window-passes): max per-worker sum of executed bins' costs.
    pub makespan_units: u64,
    /// Critical path converted to nanoseconds via the single-worker
    /// calibration rate (units per ns with no scheduling overlap).
    pub modeled_ns: u64,
    /// Threads per second along the modeled critical path.
    pub threads_per_sec: f64,
    /// Full per-worker report of the best repetition.
    pub report: ParRunReport,
}

/// The steal-policy ablation: every [`StealPolicy`] at each worker
/// count, on a workload whose per-thread cost the static partition
/// cannot predict.
#[derive(Clone, Debug)]
pub struct StealAblationResult {
    /// Bins in the schedule.
    pub bins: usize,
    /// Threads per run.
    pub threads: u64,
    /// Worker counts measured.
    pub worker_counts: Vec<usize>,
    /// One row per (workers, policy), grouped by worker count.
    pub rows: Vec<StealRow>,
}

impl StealAblationResult {
    /// The measured cell for one (policy, workers) combination.
    pub fn row(&self, policy: StealPolicy, workers: usize) -> Option<&StealRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.workers == workers)
    }

    /// Critical-path speedup of `policy` over [`StealPolicy::None`] at
    /// `workers` (1.0 when either cell is missing).
    pub fn speedup_vs_none(&self, policy: StealPolicy, workers: usize) -> f64 {
        match (
            self.row(StealPolicy::None, workers),
            self.row(policy, workers),
        ) {
            (Some(none), Some(row)) if row.makespan_units > 0 => {
                none.makespan_units as f64 / row.makespan_units as f64
            }
            _ => 1.0,
        }
    }

    /// Serializes the ablation — including each cell's full
    /// [`ParRunReport`] with per-worker steal counters — as one JSON
    /// object (the `BENCH_steal.json` payload).
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"experiment\":\"steal_ablation\",\"workload\":\"windowed-sum\",\
             \"bins\":{},\"threads\":{},\"rows\":[",
            self.bins, self.threads
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"policy\":\"{}\",\"workers\":{},\"wall_ns\":{},\"makespan_units\":{},\
                 \"modeled_ns\":{},\"threads_per_sec\":{:.1},\"speedup_vs_none\":{:.3},\
                 \"report\":{}}}",
                row.policy,
                row.workers,
                row.wall_ns,
                row.makespan_units,
                row.modeled_ns,
                row.threads_per_sec,
                self.speedup_vs_none(row.policy, row.workers),
                row.report.to_json(),
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("]}");
        json
    }
}

/// Measures every steal policy at each worker count on the windowed-sum
/// workload (`bins` bins × `threads_per_bin` threads, triangular pass
/// counts scaled by `passes_scale`), best of three repetitions per
/// cell (best by critical-path work units).
///
/// A dedicated single-worker calibration run (best-of-three wall-clock)
/// establishes the units→nanoseconds rate used for `modeled_ns`: with
/// one worker there is no overlap to mismeasure, so `wall / total
/// units` is the true per-unit cost on this host.
pub fn steal_ablation(
    bins: usize,
    threads_per_bin: usize,
    passes_scale: usize,
    worker_counts: &[usize],
) -> StealAblationResult {
    let ctx = steal_ctx(bins, threads_per_bin, passes_scale);
    let threads = (bins * threads_per_bin) as u64;
    let calib_config = SchedulerConfig::builder()
        .block_size(STEAL_BLOCK)
        .steal_policy(StealPolicy::None)
        .build()
        .expect("power-of-two block");
    let mut calib_wall_ns = u64::MAX;
    let mut total_units = 0u64;
    for _rep in 0..3 {
        let mut sched: ParScheduler<StealCtx> = ParScheduler::new(calib_config);
        fork_windowed(&mut sched, bins, threads_per_bin);
        let start = Instant::now();
        let report = sched.run_report(&ctx, 1);
        calib_wall_ns = calib_wall_ns.min((start.elapsed().as_nanos() as u64).max(1));
        assert_eq!(report.run.threads_run, threads);
        total_units = critical_path_units(&ctx, threads_per_bin).1;
    }
    let ns_per_unit = calib_wall_ns as f64 / total_units as f64;
    let mut rows = Vec::new();
    for &workers in worker_counts {
        for policy in [
            StealPolicy::None,
            StealPolicy::Random,
            StealPolicy::LocalityAware,
        ] {
            let config = SchedulerConfig::builder()
                .block_size(STEAL_BLOCK)
                .steal_policy(policy)
                .build()
                .expect("power-of-two block");
            let mut best: Option<StealRow> = None;
            for _rep in 0..3 {
                let mut sched: ParScheduler<StealCtx> = ParScheduler::new(config);
                fork_windowed(&mut sched, bins, threads_per_bin);
                let start = Instant::now();
                let report = sched.run_report(&ctx, workers);
                let wall_ns = (start.elapsed().as_nanos() as u64).max(1);
                assert_eq!(report.run.threads_run, threads);
                let (makespan_units, total) = critical_path_units(&ctx, threads_per_bin);
                assert_eq!(total, total_units);
                if best
                    .as_ref()
                    .is_none_or(|b| makespan_units < b.makespan_units)
                {
                    let modeled_ns = ((makespan_units as f64 * ns_per_unit) as u64).max(1);
                    best = Some(StealRow {
                        policy,
                        workers,
                        wall_ns,
                        makespan_units,
                        modeled_ns,
                        threads_per_sec: threads as f64 / (modeled_ns as f64 / 1e9),
                        report,
                    });
                }
            }
            rows.push(best.expect("three repetitions measured"));
        }
    }
    StealAblationResult {
        bins,
        threads,
        worker_counts: worker_counts.to_vec(),
        rows,
    }
}

/// The steal ablation at a table scale: the pass scale tracks
/// `matmul_n` so `--smoke`/`--full` shrink/grow the work as for the
/// tables. Each run must span many OS timeslices (tens of milliseconds
/// and up): the kernel's fair scheduler then advances oversubscribed
/// workers at near-equal rates, which is what makes the recorded
/// bin-to-worker assignment representative of truly parallel execution
/// even on hosts with fewer cores than workers.
pub fn steal(scale: &ExpScale) -> StealAblationResult {
    steal_ablation(48, 8, (scale.matmul_n / 4).max(2), &[1, 2, 4, 8])
}

// ---------------------------------------------------------------------
// Bin-policy ablation: flat (paper §3.2) vs hierarchical (L1-in-L2)
// ---------------------------------------------------------------------

/// One measured cell of the bin-policy ablation: one threaded workload
/// under one hints→bin policy on one machine, fully simulated.
#[derive(Clone, Debug)]
pub struct BinPolicyRow {
    /// Unique row label `"<kernel>.<machine>.<policy>"` — the benchdiff
    /// row key, so baselines match rows by identity, not position.
    pub workload: String,
    /// Kernel name (`"matmul"`, `"pde"`, `"sor"`, `"nbody"`).
    pub kernel: String,
    /// Machine name (`"r8000"` / `"r10000"`).
    pub machine: String,
    /// Policy name (`"flat"` / `"hierarchical"`).
    pub policy: String,
    /// Finest bin block in bytes: the L1-derived sub-bin size for the
    /// hierarchical policy, the L2-derived block for flat.
    pub l1_block: u64,
    /// L2-derived (parent) block size in bytes.
    pub l2_block: u64,
    /// Threads forked and run.
    pub threads: u64,
    /// Simulated data references (deterministic).
    pub accesses: u64,
    /// Full simulation report for this cell.
    pub report: SimReport,
    /// Modeled nanoseconds on this row's machine.
    pub modeled_ns: u64,
}

/// The bin-policy ablation: each threaded kernel under the flat paper
/// policy and the hierarchical (L1-in-L2) policy, on both machine
/// models at the kernel's table scale.
#[derive(Clone, Debug)]
pub struct BinPolicyResult {
    /// One row per (kernel × machine × policy).
    pub rows: Vec<BinPolicyRow>,
}

impl BinPolicyResult {
    /// The measured cell for one (kernel, machine, policy).
    pub fn row(&self, kernel: &str, machine: &str, policy: &str) -> Option<&BinPolicyRow> {
        self.rows
            .iter()
            .find(|r| r.kernel == kernel && r.machine == machine && r.policy == policy)
    }

    fn delta_pct(flat: u64, hier: u64) -> f64 {
        if flat == 0 {
            0.0
        } else {
            100.0 * (hier as f64 - flat as f64) / flat as f64
        }
    }

    /// Hierarchical-vs-flat L1 miss delta in percent (negative =
    /// hierarchical misses less).
    pub fn l1_miss_delta_pct(&self, kernel: &str, machine: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, "hierarchical"),
        ) {
            (Some(f), Some(h)) => Self::delta_pct(f.report.l1.misses(), h.report.l1.misses()),
            _ => 0.0,
        }
    }

    /// Hierarchical-vs-flat L2 miss delta in percent.
    pub fn l2_miss_delta_pct(&self, kernel: &str, machine: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, "hierarchical"),
        ) {
            (Some(f), Some(h)) => Self::delta_pct(f.report.l2.misses(), h.report.l2.misses()),
            _ => 0.0,
        }
    }

    /// Hierarchical-vs-flat modeled-time delta in percent.
    pub fn modeled_delta_pct(&self, kernel: &str, machine: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, "hierarchical"),
        ) {
            (Some(f), Some(h)) => Self::delta_pct(f.modeled_ns, h.modeled_ns),
            _ => 0.0,
        }
    }

    /// The (kernel, machine) pairs present, in row order.
    pub fn pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for row in &self.rows {
            let pair = (row.kernel.clone(), row.machine.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }

    /// Serializes the ablation as the `BENCH_binpolicy.json` payload:
    /// per-cell simulated miss counts/rates (deterministic, gated by
    /// benchdiff) plus per-(kernel, machine) hierarchical-vs-flat
    /// deltas.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\"experiment\":\"binpolicy\",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"workload\":\"{}\",\"kernel\":\"{}\",\"machine\":\"{}\",\
                 \"policy\":\"{}\",\"l1_block\":{},\"l2_block\":{},\"threads\":{},\
                 \"accesses\":{},\"l1_misses\":{},\"l2_misses\":{},\
                 \"l1_miss_rate_pct\":{:.4},\"l2_miss_rate_pct\":{:.4},\"modeled_ns\":{}}}",
                row.workload,
                row.kernel,
                row.machine,
                row.policy,
                row.l1_block,
                row.l2_block,
                row.threads,
                row.accesses,
                row.report.l1.misses(),
                row.report.l2.misses(),
                row.report.l1_miss_rate_percent(),
                row.report.l2_miss_rate_percent(),
                row.modeled_ns,
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("],\"deltas\":[");
        for (i, (kernel, machine)) in self.pairs().iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"workload\":\"{kernel}.{machine}\",\
                 \"l1_miss_delta_pct\":{:.4},\"l2_miss_delta_pct\":{:.4},\
                 \"modeled_delta_pct\":{:.4}}}",
                self.l1_miss_delta_pct(kernel, machine),
                self.l2_miss_delta_pct(kernel, machine),
                self.modeled_delta_pct(kernel, machine),
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("]}");
        json
    }
}

/// Builds the simulation cell for one (kernel, machine, policy)
/// combination: the kernel's threaded version under `policy`, with the
/// same problem sizes, seeds and hints as its paper table.
fn binpolicy_cell<P: BinPolicy + Send + 'static>(
    scale: &ExpScale,
    kernel: Kernel,
    machine: &MachineModel,
    config: SchedulerConfig,
    policy: P,
) -> Cell {
    let scale = *scale;
    match kernel {
        Kernel::MatMul => {
            let n = scale.matmul_n;
            cell(machine, move |sp, s| {
                matmul::threaded_with(&mut matmul::MatMulData::new(sp, n, 42), config, policy, s)
            })
        }
        Kernel::Pde => {
            let (n, iters) = (scale.pde_n, scale.pde_iters);
            cell(machine, move |sp, s| {
                pde::threaded_with(&mut pde::PdeData::new(sp, n, 7), iters, config, policy, s)
            })
        }
        Kernel::Sor => {
            let (n, t) = (scale.sor_n, scale.sor_t);
            cell(machine, move |sp, s| {
                sor::threaded_with(&mut sor::SorData::new(sp, n, 99), t, config, policy, s)
            })
        }
        Kernel::NBody => {
            let n = scale.nbody_n;
            let params = nbody::NBodyParams {
                plane_extent: 4 * (machine.l2_config().size() / 3),
                ..nbody::NBodyParams::default()
            };
            cell(machine, move |sp, s| {
                nbody::threaded_with(
                    &mut nbody::NBodyData::new(sp, n, 2024),
                    1,
                    params,
                    config,
                    policy,
                    s,
                )
            })
        }
    }
}

/// The bin-policy ablation at `scale`: flat vs hierarchical binning for
/// every threaded kernel on both machine models.
pub fn binpolicy(scale: &ExpScale) -> BinPolicyResult {
    binpolicy_with(scale, Driver::default())
}

/// [`binpolicy`] under an explicit [`Driver`].
pub fn binpolicy_with(scale: &ExpScale, driver: Driver) -> BinPolicyResult {
    let kernels = [
        ("matmul", Kernel::MatMul, scale.matmul_factor),
        ("pde", Kernel::Pde, scale.pde_factor),
        ("sor", Kernel::Sor, scale.sor_factor),
        ("nbody", Kernel::NBody, scale.nbody_factor),
    ];
    struct Meta {
        kernel: &'static str,
        machine_name: &'static str,
        policy: &'static str,
        l1_block: u64,
        l2_block: u64,
        machine: MachineModel,
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut meta: Vec<Meta> = Vec::new();
    for (kname, kernel, factor) in kernels {
        let (r8000, r10000) = machines(factor);
        for (mname, machine) in [("r8000", &r8000), ("r10000", &r10000)] {
            let geo = BinGeometry::for_machine(machine);
            let config = geo.flat_config(kernel);
            let (l1_block, l2_block) = (geo.l1_block(kernel), geo.l2_block(kernel));
            cells.push(binpolicy_cell(
                scale,
                kernel,
                machine,
                config,
                PaperBlockHash::from_config(&config),
            ));
            meta.push(Meta {
                kernel: kname,
                machine_name: mname,
                policy: "flat",
                l1_block: l2_block,
                l2_block,
                machine: machine.clone(),
            });
            let hier = geo
                .hierarchical(kernel)
                .expect("machine-derived geometry is valid");
            cells.push(binpolicy_cell(scale, kernel, machine, config, hier));
            meta.push(Meta {
                kernel: kname,
                machine_name: mname,
                policy: "hierarchical",
                l1_block,
                l2_block,
                machine: machine.clone(),
            });
        }
    }
    let results = run_cells(cells, driver);
    let rows = meta
        .into_iter()
        .zip(results)
        .map(|(m, (_name, report))| {
            let modeled_ns = (report.time_on(&m.machine).total() * 1e9).round() as u64;
            BinPolicyRow {
                workload: format!("{}.{}.{}", m.kernel, m.machine_name, m.policy),
                kernel: m.kernel.to_owned(),
                machine: m.machine_name.to_owned(),
                policy: m.policy.to_owned(),
                l1_block: m.l1_block,
                l2_block: m.l2_block,
                threads: report.threads,
                accesses: report.data_references(),
                report,
                modeled_ns,
            }
        })
        .collect();
    BinPolicyResult { rows }
}

// ---------------------------------------------------------------------
// Topology ablation: flat vs 2-level vs full machine-tree binning
// ---------------------------------------------------------------------

/// One measured cell of the topology ablation: one threaded workload
/// under one binning depth on one machine, fully simulated.
#[derive(Clone, Debug)]
pub struct TopologyRow {
    /// Unique row label `"<kernel>.<machine>.<policy>"` — the benchdiff
    /// row key.
    pub workload: String,
    /// Kernel name (`"matmul"`, `"pde"`, `"sor"`, `"nbody"`).
    pub kernel: String,
    /// Machine name (`"r8000"` / `"numa2"`).
    pub machine: String,
    /// Policy name (`"flat"` / `"hierarchical"` / `"topology"`).
    pub policy: String,
    /// Block-size ladder the policy bins with, finest first. One entry
    /// for flat, two for hierarchical, one per machine-tree level for
    /// the full topology policy.
    pub blocks: Vec<u64>,
    /// Threads forked and run.
    pub threads: u64,
    /// Simulated data references (deterministic).
    pub accesses: u64,
    /// Full simulation report for this cell.
    pub report: SimReport,
    /// Modeled nanoseconds on this row's machine.
    pub modeled_ns: u64,
}

/// The topology ablation: each threaded kernel binned flat (paper
/// §3.2), two-level (L1-in-L2), and at the machine tree's full depth —
/// on a two-level paper machine (where the tree policy must collapse
/// to hierarchical) and on the four-level NUMA bench machine (where
/// the extra rungs group bins under L3 and socket subtrees).
#[derive(Clone, Debug)]
pub struct TopologyResult {
    /// One row per (kernel × machine × policy).
    pub rows: Vec<TopologyRow>,
}

impl TopologyResult {
    /// The measured cell for one (kernel, machine, policy).
    pub fn row(&self, kernel: &str, machine: &str, policy: &str) -> Option<&TopologyRow> {
        self.rows
            .iter()
            .find(|r| r.kernel == kernel && r.machine == machine && r.policy == policy)
    }

    fn delta_pct(flat: u64, other: u64) -> f64 {
        if flat == 0 {
            0.0
        } else {
            100.0 * (other as f64 - flat as f64) / flat as f64
        }
    }

    /// `policy`-vs-flat L1 miss delta in percent (negative = the
    /// deeper policy misses less).
    pub fn l1_miss_delta_pct(&self, kernel: &str, machine: &str, policy: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, policy),
        ) {
            (Some(f), Some(p)) => Self::delta_pct(f.report.l1.misses(), p.report.l1.misses()),
            _ => 0.0,
        }
    }

    /// `policy`-vs-flat L2 miss delta in percent.
    pub fn l2_miss_delta_pct(&self, kernel: &str, machine: &str, policy: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, policy),
        ) {
            (Some(f), Some(p)) => Self::delta_pct(f.report.l2.misses(), p.report.l2.misses()),
            _ => 0.0,
        }
    }

    /// `policy`-vs-flat modeled-time delta in percent.
    pub fn modeled_delta_pct(&self, kernel: &str, machine: &str, policy: &str) -> f64 {
        match (
            self.row(kernel, machine, "flat"),
            self.row(kernel, machine, policy),
        ) {
            (Some(f), Some(p)) => Self::delta_pct(f.modeled_ns, p.modeled_ns),
            _ => 0.0,
        }
    }

    /// The (kernel, machine) pairs present, in row order.
    pub fn pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for row in &self.rows {
            let pair = (row.kernel.clone(), row.machine.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }

    /// Serializes the ablation as the `BENCH_topology.json` payload:
    /// per-cell deterministic miss counts/rates (benchdiff-gated) plus
    /// per-(kernel, machine) deltas of each deeper policy vs flat.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\"experiment\":\"topology\",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let blocks = row
                .blocks
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            write!(
                json,
                "{{\"workload\":\"{}\",\"kernel\":\"{}\",\"machine\":\"{}\",\
                 \"policy\":\"{}\",\"depth\":{},\"blocks\":[{}],\"threads\":{},\
                 \"accesses\":{},\"l1_misses\":{},\"l2_misses\":{},\
                 \"l1_miss_rate_pct\":{:.4},\"l2_miss_rate_pct\":{:.4},\"modeled_ns\":{}}}",
                row.workload,
                row.kernel,
                row.machine,
                row.policy,
                row.blocks.len(),
                blocks,
                row.threads,
                row.accesses,
                row.report.l1.misses(),
                row.report.l2.misses(),
                row.report.l1_miss_rate_percent(),
                row.report.l2_miss_rate_percent(),
                row.modeled_ns,
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("],\"deltas\":[");
        let mut first = true;
        for (kernel, machine) in self.pairs() {
            for policy in ["hierarchical", "topology"] {
                if !first {
                    json.push(',');
                }
                first = false;
                write!(
                    json,
                    "{{\"workload\":\"{kernel}.{machine}.{policy}\",\
                     \"l1_miss_delta_pct\":{:.4},\"l2_miss_delta_pct\":{:.4},\
                     \"modeled_delta_pct\":{:.4}}}",
                    self.l1_miss_delta_pct(&kernel, &machine, policy),
                    self.l2_miss_delta_pct(&kernel, &machine, policy),
                    self.modeled_delta_pct(&kernel, &machine, policy),
                )
                .expect("writing to String cannot fail");
            }
        }
        json.push_str("]}");
        json
    }
}

/// The topology ablation at `scale`: flat vs two-level vs full-tree
/// binning for every threaded kernel, on the scaled two-level R8000
/// and the scaled four-level NUMA machine.
pub fn topology(scale: &ExpScale) -> TopologyResult {
    topology_with(scale, Driver::default())
}

/// [`topology`] under an explicit [`Driver`].
pub fn topology_with(scale: &ExpScale, driver: Driver) -> TopologyResult {
    let kernels = [
        ("matmul", Kernel::MatMul, scale.matmul_factor),
        ("pde", Kernel::Pde, scale.pde_factor),
        ("sor", Kernel::Sor, scale.sor_factor),
        ("nbody", Kernel::NBody, scale.nbody_factor),
    ];
    struct Meta {
        kernel: &'static str,
        machine_name: &'static str,
        policy: &'static str,
        blocks: Vec<u64>,
        machine: MachineModel,
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut meta: Vec<Meta> = Vec::new();
    for (kname, kernel, factor) in kernels {
        // Same ratio-preserving scaling as the paper tables: coarse
        // levels shrink with the problem area, the L1 stays full-size.
        let r8000 = MachineModel::r8000()
            .scaled_split(1.0, factor)
            .expect("valid scaled machine");
        let numa2 = MachineModel::numa2()
            .scaled_split(1.0, factor)
            .expect("valid scaled machine");
        for (mname, machine) in [("r8000", &r8000), ("numa2", &numa2)] {
            let geo = BinGeometry::for_machine(machine);
            let config = geo.flat_config(kernel);
            cells.push(binpolicy_cell(
                scale,
                kernel,
                machine,
                config,
                PaperBlockHash::from_config(&config),
            ));
            meta.push(Meta {
                kernel: kname,
                machine_name: mname,
                policy: "flat",
                blocks: vec![geo.l2_block(kernel)],
                machine: machine.clone(),
            });
            let hier = geo
                .hierarchical(kernel)
                .expect("machine-derived geometry is valid");
            cells.push(binpolicy_cell(scale, kernel, machine, config, hier));
            meta.push(Meta {
                kernel: kname,
                machine_name: mname,
                policy: "hierarchical",
                blocks: vec![geo.l1_block(kernel), geo.l2_block(kernel)],
                machine: machine.clone(),
            });
            let tree = geo
                .topology_policy(kernel)
                .expect("machine-derived ladder is valid");
            cells.push(binpolicy_cell(scale, kernel, machine, config, tree));
            meta.push(Meta {
                kernel: kname,
                machine_name: mname,
                policy: "topology",
                blocks: geo.level_blocks(kernel),
                machine: machine.clone(),
            });
        }
    }
    let results = run_cells(cells, driver);
    let rows = meta
        .into_iter()
        .zip(results)
        .map(|(m, (_name, report))| {
            let modeled_ns = (report.time_on(&m.machine).total() * 1e9).round() as u64;
            TopologyRow {
                workload: format!("{}.{}.{}", m.kernel, m.machine_name, m.policy),
                kernel: m.kernel.to_owned(),
                machine: m.machine_name.to_owned(),
                policy: m.policy.to_owned(),
                blocks: m.blocks,
                threads: report.threads,
                accesses: report.data_references(),
                report,
                modeled_ns,
            }
        })
        .collect();
    TopologyResult { rows }
}

/// Figure 4 data: modeled execution time on the scaled R8000 as a
/// function of the block dimension size, for the threaded version of
/// all four applications.
#[derive(Clone, Debug)]
pub struct Figure4Result {
    /// Block sizes in *full-machine-equivalent* bytes (the paper's
    /// x-axis, 64 KB … 8 MB).
    pub block_sizes: Vec<u64>,
    /// Per-application series of modeled seconds, matching
    /// `block_sizes`.
    pub series: Vec<(String, Vec<f64>)>,
}

/// Figure 4: block-size sensitivity sweep.
pub fn figure4(scale: &ExpScale) -> Figure4Result {
    let block_sizes: Vec<u64> = crate::paper::figure4::BLOCK_SIZES.to_vec();
    let mut series = Vec::new();

    let mut sweep =
        |name: &str,
         factor: f64,
         run: &mut dyn FnMut(&MachineModel, SchedulerConfig) -> SimReport| {
            let machine = MachineModel::r8000()
                .scaled_split(1.0, factor)
                .expect("valid scaled machine");
            let mut times = Vec::new();
            for &full_block in &block_sizes {
                let block = prev_power_of_two(((full_block as f64 * factor) as u64).max(64));
                let config = SchedulerConfig::builder()
                    .block_size(block)
                    .build()
                    .expect("power-of-two block");
                let report = run(&machine, config);
                times.push(report.time_on(&machine).total());
            }
            series.push((name.to_owned(), times));
        };

    sweep("matmul", scale.matmul_factor, &mut |machine, config| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, scale.matmul_n, 42);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
        sim.finish()
    });
    sweep("pde", scale.pde_factor, &mut |machine, config| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, scale.pde_n, 7);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = pde::threaded(&mut data, scale.pde_iters, config, &mut sim);
        sim.add_threads(report.threads);
        sim.finish()
    });
    sweep("sor", scale.sor_factor, &mut |machine, config| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, scale.sor_n, 99);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = sor::threaded(&mut data, scale.sor_t, config, &mut sim);
        sim.add_threads(report.threads);
        sim.finish()
    });
    sweep("nbody", scale.nbody_factor, &mut |machine, config| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, scale.nbody_n, 2024);
        let mut sim = SimSink::new(machine.hierarchy());
        let params = nbody::NBodyParams {
            plane_extent: 4 * (machine.l2_config().size() / 3),
            ..nbody::NBodyParams::default()
        };
        let report = nbody::threaded(&mut data, 1, params, config, &mut sim);
        sim.add_threads(report.threads);
        sim.finish()
    });

    Figure4Result {
        block_sizes,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_configs_follow_paper_rules() {
        let machine = MachineModel::r8000();
        assert_eq!(sched_config_for("matmul", &machine).block_size(0), 1 << 20);
        assert_eq!(sched_config_for("sor", &machine).block_size(0), 512 << 10);
        assert_eq!(sched_config_for("nbody", &machine).block_size(0), 512 << 10);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = sched_config_for("quicksort", &MachineModel::r8000());
    }

    #[test]
    fn parallel_driver_matches_sequential_rows() {
        let scale = ExpScale::smoke();
        assert_eq!(
            table4_with(&scale, Driver::Sequential),
            table4_with(&scale, Driver::Parallel),
        );
    }

    #[test]
    fn run_cells_preserves_cell_order() {
        let cells: Vec<Cell> = (0..8)
            .map(|i| {
                let machine = MachineModel::r8000();
                Box::new(move || {
                    // Unequal work so completion order scrambles.
                    let mut sim = SimSink::new(machine.hierarchy());
                    for off in 0..(8 - i) * 500u64 {
                        use memtrace::TraceSink;
                        sim.read((off * 64).into(), 8);
                    }
                    (format!("cell{i}"), sim.finish())
                }) as Cell
            })
            .collect();
        let names: Vec<String> = run_cells(cells, Driver::Parallel)
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        let expect: Vec<String> = (0..8).map(|i| format!("cell{i}")).collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn table1_measures_positive_overhead() {
        let result = table1(10_000);
        assert!(result.fork_ns > 0.0);
        assert!(result.run_ns > 0.0);
        assert!(result.total_ns() < 100_000.0, "null threads cost < 100 µs");
    }

    /// A sub-smoke scale so the ablation's 16 simulated cells stay
    /// unit-test cheap.
    fn tiny_scale() -> ExpScale {
        ExpScale {
            matmul_n: 24,
            matmul_factor: 1.0 / 512.0,
            pde_n: 65,
            pde_iters: 2,
            pde_factor: 1.0 / 256.0,
            sor_n: 65,
            sor_t: 2,
            sor_tile: 8,
            sor_factor: 1.0 / 256.0,
            nbody_n: 128,
            nbody_iters: 1,
            nbody_factor: 1.0 / 256.0,
            serve_requests: 2_000,
        }
    }

    #[test]
    fn binpolicy_reports_all_cells() {
        let result = binpolicy(&tiny_scale());
        assert_eq!(result.rows.len(), 16, "4 kernels × 2 machines × 2 policies");
        for kernel in ["matmul", "pde", "sor", "nbody"] {
            for machine in ["r8000", "r10000"] {
                let flat = result.row(kernel, machine, "flat").expect("flat cell");
                let hier = result
                    .row(kernel, machine, "hierarchical")
                    .expect("hierarchical cell");
                // Same program, same hints: the policy reorders
                // execution but never changes what the application
                // executes. The access totals include traced package
                // memory, and the two-level policy allocates more bin
                // and group records than flat, so hierarchical may add
                // (but never remove) references.
                assert_eq!(flat.threads, hier.threads, "{kernel}.{machine}");
                assert!(hier.accesses >= flat.accesses, "{kernel}.{machine}");
                assert!(flat.threads > 0, "{kernel}.{machine}");
                assert!(flat.report.l1.misses() > 0, "{kernel}.{machine}");
                assert!(hier.l1_block < hier.l2_block, "{kernel}.{machine}");
                assert_eq!(flat.l1_block, flat.l2_block, "flat has one level");
            }
        }
        let json = result.to_json();
        assert!(json.contains("\"experiment\":\"binpolicy\""), "{json}");
        assert!(
            json.contains("\"workload\":\"matmul.r8000.flat\""),
            "{json}"
        );
        assert!(json.contains("\"l2_miss_delta_pct\":"), "{json}");
        // The hierarchical policy must actually schedule differently
        // from flat somewhere (it was a silent no-op when both levels
        // floored to the same block size).
        assert!(
            result.rows.iter().any(|row| {
                row.policy == "hierarchical"
                    && result
                        .row(&row.kernel, &row.machine, "flat")
                        .is_some_and(|flat| {
                            flat.report.l1.misses() != row.report.l1.misses()
                                || flat.report.l2.misses() != row.report.l2.misses()
                        })
            }),
            "hierarchical is a no-op on every cell"
        );
    }

    /// Regression for the hierarchical-binning no-op: every kernel ×
    /// machine cell `BENCH_binpolicy.json` measures — at every shipped
    /// scale preset — must give the hierarchical policy a sub-bin block
    /// strictly finer than its parent block. (Scaled bench machines
    /// shrink only the L2, which used to floor both blocks to the same
    /// value and made `Hierarchical` byte-identical to flat.)
    #[test]
    fn binpolicy_cells_keep_hierarchical_levels_apart() {
        for (preset, scale) in [
            ("smoke", ExpScale::smoke()),
            ("default", ExpScale::default_scaled()),
            ("full", ExpScale::full()),
        ] {
            let kernels = [
                (Kernel::MatMul, scale.matmul_factor),
                (Kernel::Pde, scale.pde_factor),
                (Kernel::Sor, scale.sor_factor),
                (Kernel::NBody, scale.nbody_factor),
            ];
            for (kernel, factor) in kernels {
                let (r8000, r10000) = machines(factor);
                for machine in [&r8000, &r10000] {
                    let geo = BinGeometry::for_machine(machine);
                    assert!(
                        geo.l1_block(kernel) < geo.l2_block(kernel),
                        "{preset}: {kernel:?} on {}: l1_block {} !< l2_block {}",
                        machine.name(),
                        geo.l1_block(kernel),
                        geo.l2_block(kernel)
                    );
                    geo.hierarchical(kernel).expect("two-level geometry");
                }
            }
        }
    }

    #[test]
    fn topology_reports_all_cells() {
        let result = topology(&tiny_scale());
        assert_eq!(result.rows.len(), 24, "4 kernels × 2 machines × 3 policies");
        for kernel in ["matmul", "pde", "sor", "nbody"] {
            for machine in ["r8000", "numa2"] {
                let flat = result.row(kernel, machine, "flat").expect("flat cell");
                let hier = result
                    .row(kernel, machine, "hierarchical")
                    .expect("hierarchical cell");
                let tree = result
                    .row(kernel, machine, "topology")
                    .expect("topology cell");
                assert_eq!(flat.blocks.len(), 1, "{kernel}.{machine}");
                assert_eq!(hier.blocks.len(), 2, "{kernel}.{machine}");
                assert_eq!(flat.threads, hier.threads, "{kernel}.{machine}");
                assert_eq!(flat.threads, tree.threads, "{kernel}.{machine}");
                assert!(flat.report.l1.misses() > 0, "{kernel}.{machine}");
            }
            // On a two-level machine the full-tree policy must be
            // bit-identical to the two-level hierarchical policy — the
            // generalization adds depth, never changes the depth-2 case.
            let hier = result.row(kernel, "r8000", "hierarchical").unwrap();
            let tree = result.row(kernel, "r8000", "topology").unwrap();
            assert_eq!(tree.blocks.len(), 2, "{kernel}: r8000 tree depth");
            assert_eq!(tree.blocks, hier.blocks, "{kernel}");
            assert_eq!(tree.report, hier.report, "{kernel}: depth-2 equivalence");
            // On the NUMA machine the tree has four rungs.
            let deep = result.row(kernel, "numa2", "topology").unwrap();
            assert_eq!(deep.blocks.len(), 4, "{kernel}: numa2 tree depth");
        }
        // The extra rungs must actually change scheduling somewhere:
        // on the four-level machine, flat vs full-tree binning has to
        // move misses or modeled time on at least two kernels.
        let moved = ["matmul", "pde", "sor", "nbody"]
            .iter()
            .filter(|kernel| {
                let flat = result.row(kernel, "numa2", "flat").unwrap();
                let tree = result.row(kernel, "numa2", "topology").unwrap();
                flat.report.l1.misses() != tree.report.l1.misses()
                    || flat.report.l2.misses() != tree.report.l2.misses()
                    || flat.modeled_ns != tree.modeled_ns
            })
            .count();
        assert!(
            moved >= 2,
            "full-depth binning is a no-op on {} of 4 kernels",
            4 - moved
        );
        let json = result.to_json();
        assert!(json.contains("\"experiment\":\"topology\""), "{json}");
        assert!(
            json.contains("\"workload\":\"matmul.numa2.topology\""),
            "{json}"
        );
        assert!(json.contains("\"depth\":4"), "{json}");
        assert!(
            json.contains("\"workload\":\"nbody.numa2.topology\",\"l1_miss_delta_pct\":"),
            "{json}"
        );
    }

    #[test]
    fn topology_parallel_driver_matches_sequential() {
        let scale = tiny_scale();
        let seq = topology_with(&scale, Driver::Sequential);
        let par = topology_with(&scale, Driver::Parallel);
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn binpolicy_parallel_driver_matches_sequential() {
        let scale = tiny_scale();
        let seq = binpolicy_with(&scale, Driver::Sequential);
        let par = binpolicy_with(&scale, Driver::Parallel);
        assert_eq!(seq.to_json(), par.to_json());
    }

    #[test]
    fn steal_ablation_reports_all_cells() {
        let result = steal_ablation(8, 4, 16, &[1, 2]);
        assert_eq!(result.threads, 32);
        assert_eq!(result.rows.len(), 6, "3 policies × 2 worker counts");
        for policy in [
            StealPolicy::None,
            StealPolicy::Random,
            StealPolicy::LocalityAware,
        ] {
            for workers in [1usize, 2] {
                let row = result.row(policy, workers).expect("cell measured");
                assert_eq!(row.report.run.threads_run, 32);
                assert_eq!(row.report.stats.workers().len(), workers);
                assert!(row.makespan_units > 0);
                assert!(row.modeled_ns > 0);
                assert!(row.threads_per_sec > 0.0);
            }
        }
        // Single-worker runs execute everything on one thread, so the
        // critical path is the whole workload regardless of policy.
        let total: u64 = (1..=8u64).map(|b| b * 16 * 4).sum();
        for policy in [
            StealPolicy::None,
            StealPolicy::Random,
            StealPolicy::LocalityAware,
        ] {
            assert_eq!(result.row(policy, 1).unwrap().makespan_units, total);
        }
        // With 2 workers and no stealing the assignment is the static
        // thread-count split, whose critical path is exactly the heavy
        // half of the triangular profile: bins 4..8 at 16 passes × 4
        // threads each. (Stealing policies' unit counts depend on OS
        // interleaving at this tiny scale, so only None is exact.)
        let none = result.row(StealPolicy::None, 2).unwrap();
        assert_eq!(none.report.stats.steals_attempted(), 0);
        assert_eq!(none.makespan_units, (5 + 6 + 7 + 8) * 16 * 4);
        for policy in [StealPolicy::Random, StealPolicy::LocalityAware] {
            let row = result.row(policy, 2).unwrap();
            assert!(row.makespan_units <= total, "critical path within total");
            assert!(row.makespan_units >= total / 2, "max is at least the mean");
        }
        let json = result.to_json();
        assert!(json.contains("\"experiment\":\"steal_ablation\""), "{json}");
        assert!(json.contains("\"per_worker\":["), "{json}");
        assert!(json.contains("\"makespan_units\":"), "{json}");
        assert!(json.contains("\"speedup_vs_none\":"), "{json}");
    }
}

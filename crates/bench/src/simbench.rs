//! `simbench`: throughput benchmark of the fast-path simulation
//! pipeline, with a built-in differential check.
//!
//! For each workload the sequential baseline version runs twice — once
//! with the hierarchy's fast lookup paths disabled (the original,
//! exhaustive code path) and once enabled — and the two [`SimReport`]s
//! are asserted *equal on every field* before any timing is reported.
//! The benchmark therefore doubles as the differential suite's
//! release-mode leg: a fast path that drifts from the reference by a
//! single counter aborts the run instead of publishing numbers.
//!
//! A third cell times the *sharded* pipeline: the workload's trace is
//! captured once (setup, untimed), then replayed through a
//! [`ShardedSimSink`] — partition, compact per-shard queues, private
//! per-shard hierarchies, deterministic merge — and that report too
//! must be bit-identical before its throughput is published. The
//! sharded time is replay-only (trace *generation* is excluded, since a
//! production sharded run would capture once and drain continuously),
//! so `sharded_accesses_per_sec` measures the simulation engine, not
//! the traced workload; `slow`/`fast` times keep the original
//! generate-and-simulate definition for baseline continuity.

use crate::experiments::{drive, machines};
use crate::ExpScale;
use cachesim::{MachineModel, ShardedSimSink, SimReport, SimSink};
use memtrace::{Access, AddressSpace, TraceSink};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::{matmul, nbody, pde, sor};

/// Shard count the benchmark's sharded cell uses by default.
pub const DEFAULT_SHARDS: u32 = 4;

/// Captures a workload's reference stream for later replay: the
/// accesses verbatim plus the analytic instruction count.
#[derive(Default)]
struct CaptureSink {
    accesses: Vec<Access>,
    instructions: u64,
}

impl TraceSink for CaptureSink {
    fn access(&mut self, access: Access) {
        self.accesses.push(access);
    }

    fn access_batch(&mut self, accesses: &[Access]) {
        self.accesses.extend_from_slice(accesses);
    }

    fn instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// Before/after measurement of one workload's trace simulation.
#[derive(Clone, Debug)]
pub struct SimBenchRow {
    /// Workload name (`matmul`, `pde`, `sor`, `nbody`).
    pub workload: String,
    /// Trace accesses per run (reads + writes, identical all ways).
    pub accesses: u64,
    /// Best wall time with the fast paths disabled (nanoseconds).
    pub slow_ns: u64,
    /// Best wall time with the fast paths enabled (nanoseconds).
    pub fast_ns: u64,
    /// Shards the sharded replay cell used (effective count).
    pub shards: u32,
    /// Best wall time replaying the captured trace through the sharded
    /// pipeline (nanoseconds).
    pub sharded_ns: u64,
}

impl SimBenchRow {
    /// Accesses simulated per second with the fast paths disabled.
    pub fn slow_accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / (self.slow_ns as f64 / 1e9)
    }

    /// Accesses simulated per second with the fast paths enabled.
    pub fn fast_accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / (self.fast_ns as f64 / 1e9)
    }

    /// Accesses simulated per second by the sharded replay.
    pub fn sharded_accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / (self.sharded_ns as f64 / 1e9)
    }

    /// Throughput ratio, fast over slow.
    pub fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns as f64
    }

    /// Throughput ratio, sharded replay over slow (the same
    /// denominator convention as [`speedup`](Self::speedup)).
    pub fn sharded_speedup(&self) -> f64 {
        self.slow_ns as f64 / self.sharded_ns as f64
    }

    /// Row identity label: workload plus the shard count its sharded
    /// cell ran at, so baselines from different shard configurations
    /// never silently compare against each other.
    pub fn label(&self) -> String {
        format!("{}@s{}", self.workload, self.shards)
    }
}

/// All four workloads' before/after rows (`BENCH_sim.json` payload).
#[derive(Clone, Debug)]
pub struct SimBenchResult {
    /// Repetitions per (workload, path) cell; best time is kept.
    pub reps: u32,
    /// One row per workload.
    pub rows: Vec<SimBenchRow>,
    /// Probe observations of each workload's fast run (sections
    /// namespaced `"<workload>.<layer>"`) and sharded replay
    /// (`"<workload>.sharding"`, `"<workload>.shard<i>.<layer>"`) plus
    /// the experiment driver's section; empty when the probe layer is
    /// compiled out.
    pub profile: probe::RunProfile,
}

impl SimBenchResult {
    /// Serializes the result as one JSON object.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"experiment\":\"simbench\",\"reps\":{},\"rows\":[",
            self.reps
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"workload\":\"{}\",\"accesses\":{},\"shards\":{},\
                 \"slow_ns\":{},\"fast_ns\":{},\"sharded_ns\":{},\
                 \"slow_accesses_per_sec\":{:.1},\"fast_accesses_per_sec\":{:.1},\
                 \"sharded_accesses_per_sec\":{:.1},\
                 \"speedup\":{:.3},\"sharded_speedup\":{:.3}}}",
                row.label(),
                row.accesses,
                row.shards,
                row.slow_ns,
                row.fast_ns,
                row.sharded_ns,
                row.slow_accesses_per_sec(),
                row.fast_accesses_per_sec(),
                row.sharded_accesses_per_sec(),
                row.speedup(),
                row.sharded_speedup(),
            )
            .expect("writing to String cannot fail");
        }
        json.push(']');
        if probe::enabled() && !self.profile.is_empty() {
            write!(json, ",\"run_profile\":{}", self.profile.to_json())
                .expect("writing to String cannot fail");
        }
        json.push('}');
        json
    }
}

/// Times one workload three ways — slow, fast, sharded replay — best of
/// `reps`, asserting all reports identical before returning the row
/// plus the merged probe profile (the fast run's per-level counters and
/// the sharded run's partition/per-shard sections).
fn bench<D>(
    name: &str,
    machine: &MachineModel,
    reps: u32,
    shards: u32,
    make: impl Fn(&mut AddressSpace) -> D,
    run: impl Fn(&mut D, &mut AddressSpace, &mut dyn TraceSink),
) -> (SimBenchRow, probe::RunProfile) {
    let time = |fast: bool| -> (SimReport, u64, probe::RunProfile) {
        let mut best = u64::MAX;
        let mut report: Option<SimReport> = None;
        let mut profile = probe::RunProfile::new();
        for _ in 0..reps.max(1) {
            let mut space = AddressSpace::new();
            let mut data = make(&mut space);
            let mut sim = SimSink::new(machine.hierarchy());
            sim.set_fast_path(fast);
            let elapsed = drive(|| {
                let start = Instant::now();
                run(&mut data, &mut space, &mut sim);
                start.elapsed()
            });
            best = best.min((elapsed.as_nanos() as u64).max(1));
            // Capture probes before finish() consumes the sink; any
            // repetition works — the trace is deterministic.
            profile = sim.run_profile();
            let this = sim.finish();
            if let Some(prev) = &report {
                assert_eq!(prev, &this, "{name}: repetition not deterministic");
            }
            report = Some(this);
        }
        (report.expect("at least one repetition"), best, profile)
    };
    let (slow_report, slow_ns, _) = time(false);
    let (fast_report, fast_ns, mut profile) = time(true);
    assert_eq!(
        slow_report, fast_report,
        "{name}: fast path diverged from the exhaustive reference"
    );

    // Sharded replay cell. Trace capture is setup, not measurement: run
    // the workload once into a buffer, then time draining that buffer
    // through the sharded pipeline.
    let mut capture = CaptureSink::default();
    {
        let mut space = AddressSpace::new();
        let mut data = make(&mut space);
        run(&mut data, &mut space, &mut capture);
    }
    let mut sharded_best = u64::MAX;
    let mut sharded_profile = probe::RunProfile::new();
    let mut effective_shards = shards;
    for _ in 0..reps.max(1) {
        let mut sim = ShardedSimSink::new(machine.hierarchy(), shards);
        effective_shards = sim.plan().shards();
        let elapsed = drive(|| {
            let start = Instant::now();
            for chunk in capture.accesses.chunks(8192) {
                sim.access_batch(chunk);
            }
            sim.instructions(capture.instructions);
            let report = sim.report();
            (start.elapsed(), report)
        });
        sharded_best = sharded_best.min((elapsed.0.as_nanos() as u64).max(1));
        assert_eq!(
            elapsed.1, fast_report,
            "{name}: sharded replay diverged from the unsharded reference"
        );
        sharded_profile = sim.run_profile();
    }
    for section in sharded_profile.into_sections() {
        // Keep the partition/queue stats and per-shard hierarchies;
        // the unsharded per-level sections are already in `profile`.
        if section.name() == "sharding" || section.name().starts_with("shard") {
            profile.push(section);
        }
    }

    let row = SimBenchRow {
        workload: name.to_owned(),
        accesses: slow_report.reads + slow_report.writes,
        slow_ns,
        fast_ns,
        shards: effective_shards,
        sharded_ns: sharded_best,
    };
    (row, profile)
}

/// Runs the benchmark: each workload's sequential baseline version on
/// its table's scaled R8000 — fast vs slow vs sharded replay, best of
/// `reps`.
pub fn simbench(scale: &ExpScale, reps: u32, shards: u32) -> SimBenchResult {
    let mut rows = Vec::new();
    let mut profile = probe::RunProfile::new();
    // Namespaces one workload's sections into the merged profile
    // (`"l1"` → `"matmul.l1"`) and keeps its row.
    fn keep(
        rows: &mut Vec<SimBenchRow>,
        profile: &mut probe::RunProfile,
        (row, run_profile): (SimBenchRow, probe::RunProfile),
    ) {
        for section in run_profile.into_sections() {
            let name = format!("{}.{}", row.workload, section.name());
            profile.push(section.renamed(name));
        }
        rows.push(row);
    }
    let n = scale.matmul_n;
    keep(
        &mut rows,
        &mut profile,
        bench(
            "matmul",
            &machines(scale.matmul_factor).0,
            reps,
            shards,
            |space| matmul::MatMulData::new(space, n, 42),
            |data, _sp, mut sim| {
                matmul::interchanged(data, &mut sim);
            },
        ),
    );
    let (pn, iters) = (scale.pde_n, scale.pde_iters);
    keep(
        &mut rows,
        &mut profile,
        bench(
            "pde",
            &machines(scale.pde_factor).0,
            reps,
            shards,
            |space| pde::PdeData::new(space, pn, 7),
            |data, _sp, mut sim| {
                pde::regular(data, iters, &mut sim);
            },
        ),
    );
    let (sn, t) = (scale.sor_n, scale.sor_t);
    keep(
        &mut rows,
        &mut profile,
        bench(
            "sor",
            &machines(scale.sor_factor).0,
            reps,
            shards,
            |space| sor::SorData::new(space, sn, 99),
            |data, _sp, mut sim| {
                sor::untiled(data, t, &mut sim);
            },
        ),
    );
    let bn = scale.nbody_n;
    let nbody_machine = machines(scale.nbody_factor).0;
    let params = nbody::NBodyParams {
        plane_extent: 4 * (nbody_machine.l2_config().size() / 3),
        ..nbody::NBodyParams::default()
    };
    keep(
        &mut rows,
        &mut profile,
        bench(
            "nbody",
            &nbody_machine,
            reps,
            shards,
            |space| nbody::NBodyData::new(space, bn, 2024),
            |data, _sp, mut sim| {
                nbody::unthreaded(data, 1, params, &mut sim);
            },
        ),
    );
    profile.push(crate::experiments::driver_profile());
    SimBenchResult {
        reps,
        rows,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simbench_smoke_checks_identity_and_reports_json() {
        let result = simbench(&ExpScale::smoke(), 1, DEFAULT_SHARDS);
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert!(row.accesses > 0, "{}", row.workload);
            assert!(row.speedup() > 0.0);
            assert!(row.fast_accesses_per_sec() > 0.0);
            assert!(row.sharded_speedup() > 0.0);
            assert_eq!(row.shards, DEFAULT_SHARDS, "{}", row.workload);
            assert_eq!(row.label(), format!("{}@s4", row.workload));
        }
        let json = result.to_json();
        assert!(json.contains("\"experiment\":\"simbench\""), "{json}");
        assert!(json.contains("\"workload\":\"nbody@s4\""), "{json}");
        assert!(json.contains("\"speedup\":"), "{json}");
        assert!(json.contains("\"sharded_speedup\":"), "{json}");
        assert!(json.contains("\"shards\":4"), "{json}");
        if probe::enabled() {
            assert!(json.contains("\"run_profile\":"), "{json}");
            assert!(json.contains("\"matmul.l1\":"), "{json}");
            assert!(json.contains("\"nbody.classifier\":"), "{json}");
            assert!(json.contains("\"matmul.sharding\":"), "{json}");
            assert!(json.contains("\"sor.shard0.l1\":"), "{json}");
            // The driver cell counter must reflect the benchmark's
            // timed runs — 4 workloads × (slow + fast + sharded) — not
            // the zero it silently published before the runs were
            // routed through the driver's accounting.
            let driver = json
                .split("\"driver\":{\"cells\":")
                .nth(1)
                .expect("driver section present");
            let cells: u64 = driver
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse().ok())
                .expect("cells count");
            assert!(cells >= 12, "driver cells = {cells}");
        } else {
            assert!(!json.contains("run_profile"), "{json}");
        }
    }
}

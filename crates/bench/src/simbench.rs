//! `simbench`: throughput benchmark of the fast-path simulation
//! pipeline, with a built-in differential check.
//!
//! For each workload the sequential baseline version runs twice — once
//! with the hierarchy's fast lookup paths disabled (the original,
//! exhaustive code path) and once enabled — and the two [`SimReport`]s
//! are asserted *equal on every field* before any timing is reported.
//! The benchmark therefore doubles as the differential suite's
//! release-mode leg: a fast path that drifts from the reference by a
//! single counter aborts the run instead of publishing numbers.

use crate::experiments::machines;
use crate::ExpScale;
use cachesim::{MachineModel, SimReport, SimSink};
use memtrace::AddressSpace;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::{matmul, nbody, pde, sor};

/// Before/after measurement of one workload's trace simulation.
#[derive(Clone, Debug)]
pub struct SimBenchRow {
    /// Workload name (`matmul`, `pde`, `sor`, `nbody`).
    pub workload: String,
    /// Trace accesses per run (reads + writes, identical both ways).
    pub accesses: u64,
    /// Best wall time with the fast paths disabled (nanoseconds).
    pub slow_ns: u64,
    /// Best wall time with the fast paths enabled (nanoseconds).
    pub fast_ns: u64,
}

impl SimBenchRow {
    /// Accesses simulated per second with the fast paths disabled.
    pub fn slow_accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / (self.slow_ns as f64 / 1e9)
    }

    /// Accesses simulated per second with the fast paths enabled.
    pub fn fast_accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / (self.fast_ns as f64 / 1e9)
    }

    /// Throughput ratio, fast over slow.
    pub fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns as f64
    }
}

/// All four workloads' before/after rows (`BENCH_sim.json` payload).
#[derive(Clone, Debug)]
pub struct SimBenchResult {
    /// Repetitions per (workload, path) cell; best time is kept.
    pub reps: u32,
    /// One row per workload.
    pub rows: Vec<SimBenchRow>,
    /// Probe observations of each workload's fast run (sections
    /// namespaced `"<workload>.<layer>"`) plus the experiment driver's
    /// section; empty when the probe layer is compiled out.
    pub profile: probe::RunProfile,
}

impl SimBenchResult {
    /// Serializes the result as one JSON object.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"experiment\":\"simbench\",\"reps\":{},\"rows\":[",
            self.reps
        );
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            write!(
                json,
                "{{\"workload\":\"{}\",\"accesses\":{},\"slow_ns\":{},\"fast_ns\":{},\
                 \"slow_accesses_per_sec\":{:.1},\"fast_accesses_per_sec\":{:.1},\
                 \"speedup\":{:.3}}}",
                row.workload,
                row.accesses,
                row.slow_ns,
                row.fast_ns,
                row.slow_accesses_per_sec(),
                row.fast_accesses_per_sec(),
                row.speedup(),
            )
            .expect("writing to String cannot fail");
        }
        json.push(']');
        if probe::enabled() && !self.profile.is_empty() {
            write!(json, ",\"run_profile\":{}", self.profile.to_json())
                .expect("writing to String cannot fail");
        }
        json.push('}');
        json
    }
}

/// Times one workload both ways, best of `reps`, asserting the reports
/// identical before returning the row plus the fast run's probe
/// profile (per-level hit/rehit counts, miss-latency histogram,
/// classifier verdicts).
fn bench<D>(
    name: &str,
    machine: &MachineModel,
    reps: u32,
    make: impl Fn(&mut AddressSpace) -> D,
    run: impl Fn(&mut D, &mut AddressSpace, &mut SimSink),
) -> (SimBenchRow, probe::RunProfile) {
    let time = |fast: bool| -> (SimReport, u64, probe::RunProfile) {
        let mut best = u64::MAX;
        let mut report: Option<SimReport> = None;
        let mut profile = probe::RunProfile::new();
        for _ in 0..reps.max(1) {
            let mut space = AddressSpace::new();
            let mut data = make(&mut space);
            let mut sim = SimSink::new(machine.hierarchy());
            sim.set_fast_path(fast);
            let start = Instant::now();
            run(&mut data, &mut space, &mut sim);
            best = best.min((start.elapsed().as_nanos() as u64).max(1));
            // Capture probes before finish() consumes the sink; any
            // repetition works — the trace is deterministic.
            profile = sim.run_profile();
            let this = sim.finish();
            if let Some(prev) = &report {
                assert_eq!(prev, &this, "{name}: repetition not deterministic");
            }
            report = Some(this);
        }
        (report.expect("at least one repetition"), best, profile)
    };
    let (slow_report, slow_ns, _) = time(false);
    let (fast_report, fast_ns, profile) = time(true);
    assert_eq!(
        slow_report, fast_report,
        "{name}: fast path diverged from the exhaustive reference"
    );
    let row = SimBenchRow {
        workload: name.to_owned(),
        accesses: slow_report.reads + slow_report.writes,
        slow_ns,
        fast_ns,
    };
    (row, profile)
}

/// Runs the benchmark: each workload's sequential baseline version on
/// its table's scaled R8000, fast vs slow, best of `reps`.
pub fn simbench(scale: &ExpScale, reps: u32) -> SimBenchResult {
    let mut rows = Vec::new();
    let mut profile = probe::RunProfile::new();
    // Namespaces one workload's sections into the merged profile
    // (`"l1"` → `"matmul.l1"`) and keeps its row.
    fn keep(
        rows: &mut Vec<SimBenchRow>,
        profile: &mut probe::RunProfile,
        (row, run_profile): (SimBenchRow, probe::RunProfile),
    ) {
        for section in run_profile.into_sections() {
            let name = format!("{}.{}", row.workload, section.name());
            profile.push(section.renamed(name));
        }
        rows.push(row);
    }
    let n = scale.matmul_n;
    keep(
        &mut rows,
        &mut profile,
        bench(
            "matmul",
            &machines(scale.matmul_factor).0,
            reps,
            |space| matmul::MatMulData::new(space, n, 42),
            |data, _sp, sim| {
                matmul::interchanged(data, sim);
            },
        ),
    );
    let (pn, iters) = (scale.pde_n, scale.pde_iters);
    keep(
        &mut rows,
        &mut profile,
        bench(
            "pde",
            &machines(scale.pde_factor).0,
            reps,
            |space| pde::PdeData::new(space, pn, 7),
            |data, _sp, sim| {
                pde::regular(data, iters, sim);
            },
        ),
    );
    let (sn, t) = (scale.sor_n, scale.sor_t);
    keep(
        &mut rows,
        &mut profile,
        bench(
            "sor",
            &machines(scale.sor_factor).0,
            reps,
            |space| sor::SorData::new(space, sn, 99),
            |data, _sp, sim| {
                sor::untiled(data, t, sim);
            },
        ),
    );
    let bn = scale.nbody_n;
    let nbody_machine = machines(scale.nbody_factor).0;
    let params = nbody::NBodyParams {
        plane_extent: 4 * (nbody_machine.l2_config().size() / 3),
        ..nbody::NBodyParams::default()
    };
    keep(
        &mut rows,
        &mut profile,
        bench(
            "nbody",
            &nbody_machine,
            reps,
            |space| nbody::NBodyData::new(space, bn, 2024),
            |data, _sp, sim| {
                nbody::unthreaded(data, 1, params, sim);
            },
        ),
    );
    profile.push(crate::experiments::driver_profile());
    SimBenchResult {
        reps,
        rows,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simbench_smoke_checks_identity_and_reports_json() {
        let result = simbench(&ExpScale::smoke(), 1);
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert!(row.accesses > 0, "{}", row.workload);
            assert!(row.speedup() > 0.0);
            assert!(row.fast_accesses_per_sec() > 0.0);
        }
        let json = result.to_json();
        assert!(json.contains("\"experiment\":\"simbench\""), "{json}");
        assert!(json.contains("\"workload\":\"nbody\""), "{json}");
        assert!(json.contains("\"speedup\":"), "{json}");
        if probe::enabled() {
            assert!(json.contains("\"run_profile\":"), "{json}");
            assert!(json.contains("\"matmul.l1\":"), "{json}");
            assert!(json.contains("\"nbody.classifier\":"), "{json}");
        } else {
            assert!(!json.contains("run_profile"), "{json}");
        }
    }
}

//! The online serving experiment: stream an Azure-style synthetic
//! trace through the continuously-draining engine under each bin
//! policy and score the serving-side metrics the batch tables cannot
//! see — cold/warm hit rate, modeled latency percentiles, queue depth,
//! and mean slowdown.
//!
//! Every number in the emitted `BENCH_serve.json` derives from the
//! virtual clock and the deterministic cache simulation, so the file
//! is byte-reproducible across runs and hosts; CI runs the experiment
//! twice and diffs the bytes.

use crate::scale::ExpScale;
use cachesim::MachineModel;
use serve::{run_serve, ServeConfig, ServeOutcome, ServePolicy, TraceConfig, TraceGen};
use std::fmt::Write as _;

/// Trace seed committed alongside the baselines.
const TRACE_SEED: u64 = 1996;

/// One policy's serving scoreboard.
#[derive(Clone, Debug)]
pub struct ServeBenchRow {
    /// Policy identifier (`flat`, `hierarchical`, `single_bin`,
    /// `unique_bin`).
    pub policy: &'static str,
    /// The run's full outcome (report + final cache stats).
    pub outcome: ServeOutcome,
}

/// The whole experiment: one row per policy over one shared trace.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Machine the service was modeled on.
    pub machine: String,
    /// Trace the policies shared.
    pub trace: TraceConfig,
    /// Serving knobs the policies shared.
    pub lanes: u64,
    /// Admission bound.
    pub queue_bound: u64,
    /// Per-policy rows, in [`ServePolicy::all`] order.
    pub rows: Vec<ServeBenchRow>,
}

/// The trace `servebench` streams: Zipf-hot objects a few KiB each —
/// a working set far larger than the L2, with a hot set that fits —
/// under 8× bursts. `requests` comes from the scale preset.
pub fn serve_trace(requests: u64) -> TraceConfig {
    TraceConfig {
        seed: TRACE_SEED,
        requests,
        objects: 1 << 14,
        zipf_s: 0.9,
        object_bytes: 32 << 10,
        mean_interarrival_ns: 50_000,
        burst_factor: 8,
        burst_len: 512,
        calm_len: 1536,
    }
}

/// Runs the serving experiment at `scale` on the unscaled R8000.
pub fn servebench(scale: &ExpScale) -> ServeBenchResult {
    let machine = MachineModel::r8000();
    let trace = serve_trace(scale.serve_requests);
    let config = ServeConfig::default_bench();
    let rows = ServePolicy::all()
        .into_iter()
        .map(|policy| ServeBenchRow {
            policy: policy.name(),
            outcome: run_serve(TraceGen::new(trace), &machine, &config, policy),
        })
        .collect();
    ServeBenchResult {
        machine: machine.name().to_owned(),
        trace,
        lanes: config.lanes as u64,
        queue_bound: config.queue_bound,
        rows,
    }
}

impl ServeBenchResult {
    /// The row for `policy`, if measured.
    pub fn row(&self, policy: &str) -> Option<&ServeBenchRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// Benchdiff-compatible JSON. Deliberately omits anything
    /// wall-clock (probe spans, run profiles): the committed baseline
    /// and the CI byte-reproducibility check require every field to be
    /// a pure function of (trace, machine, policy).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        write!(
            json,
            "{{\"experiment\":\"serve\",\"machine\":\"{}\",\"seed\":{},\"requests\":{},\
             \"objects\":{},\"zipf_s\":{:.4},\"object_bytes\":{},\"burst_factor\":{},\
             \"lanes\":{},\"queue_bound\":{},\"rows\":[",
            self.machine,
            self.trace.seed,
            self.trace.requests,
            self.trace.objects,
            self.trace.zipf_s,
            self.trace.object_bytes,
            self.trace.burst_factor,
            self.lanes,
            self.queue_bound,
        )
        .expect("writing to String cannot fail");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let report = &row.outcome.report;
            let sim = &row.outcome.sim;
            write!(
                json,
                "{{\"workload\":\"{}\",\"offered\":{},\"admitted\":{},\"rejected\":{},\
                 \"completed\":{},\"warm_hits\":{},\"cold_misses\":{},\
                 \"warm_hit_rate_pct\":{:.4},\"drains\":{},\"max_queue_depth\":{},\
                 \"mean_queue_depth_x1000\":{},\"p50_latency_ns\":{},\"p99_latency_ns\":{},\
                 \"mean_latency_ns\":{},\"mean_slowdown_x1000\":{},\"makespan_ns\":{},\
                 \"accesses\":{},\"l1_misses\":{},\"l2_misses\":{}}}",
                row.policy,
                report.offered,
                report.admitted,
                report.rejected,
                report.completed,
                report.warm_hits,
                report.cold_misses,
                report.warm_hit_rate_pct(),
                report.drains,
                report.max_queue_depth,
                report.mean_queue_depth_x1000,
                report.p50_latency_ns,
                report.p99_latency_ns,
                report.mean_latency_ns,
                report.mean_slowdown_x1000,
                report.makespan_ns,
                sim.data_references(),
                sim.l1.misses(),
                sim.l2.misses(),
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("]}");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpScale {
        ExpScale {
            serve_requests: 3_000,
            ..ExpScale::smoke()
        }
    }

    #[test]
    fn reports_all_policies_and_is_deterministic() {
        let a = servebench(&tiny());
        assert_eq!(a.rows.len(), 4);
        for policy in ["flat", "hierarchical", "single_bin", "unique_bin"] {
            let row = a.row(policy).expect("policy measured");
            let report = &row.outcome.report;
            assert_eq!(report.offered, 3_000, "{policy}");
            assert_eq!(
                report.admitted + report.rejected,
                report.offered,
                "{policy}"
            );
            assert_eq!(report.completed, report.admitted, "{policy}");
            assert!(report.p99_latency_ns >= report.p50_latency_ns, "{policy}");
            assert!(report.makespan_ns > 0, "{policy}");
        }
        let b = servebench(&tiny());
        assert_eq!(a.to_json(), b.to_json(), "servebench must be byte-stable");
    }

    #[test]
    fn json_has_benchdiff_shape_and_no_wall_clock() {
        let json = servebench(&tiny()).to_json();
        assert!(json.contains("\"experiment\":\"serve\""), "{json}");
        assert!(json.contains("\"workload\":\"flat\""), "{json}");
        assert!(json.contains("\"warm_hit_rate_pct\":"), "{json}");
        assert!(json.contains("\"p99_latency_ns\":"), "{json}");
        assert!(json.contains("\"mean_slowdown_x1000\":"), "{json}");
        assert!(!json.contains("run_profile"), "wall-clock leaked: {json}");
    }

    #[test]
    fn locality_policies_beat_fifo_on_warm_hits() {
        let result = servebench(&tiny());
        let fifo = result.row("single_bin").unwrap().outcome.report.warm_hits;
        let flat = result.row("flat").unwrap().outcome.report.warm_hits;
        assert!(
            flat >= fifo,
            "locality binning should not lose warm hits: flat {flat} vs fifo {fifo}"
        );
    }
}

//! The online serving experiment: stream an Azure-style synthetic
//! trace through the continuously-draining engine under each bin
//! policy and score the serving-side metrics the batch tables cannot
//! see — cold/warm hit rate, modeled latency percentiles, queue depth,
//! and mean slowdown.
//!
//! Every number in the emitted `BENCH_serve.json` derives from the
//! virtual clock and the deterministic cache simulation, so the file
//! is byte-reproducible across runs and hosts; CI runs the experiment
//! twice and diffs the bytes.

use crate::scale::ExpScale;
use cachesim::MachineModel;
use locality_sched::EvictionPolicy;
use serve::{run_serve, ServeConfig, ServeOutcome, ServePolicy, TraceConfig, TraceGen};
use std::fmt::Write as _;

/// Trace seed committed alongside the baselines.
const TRACE_SEED: u64 = 1996;

/// One policy's serving scoreboard.
#[derive(Clone, Debug)]
pub struct ServeBenchRow {
    /// Policy identifier (`flat`, `hierarchical`, `topology`,
    /// `single_bin`, `unique_bin`).
    pub policy: &'static str,
    /// The run's full outcome (report + final cache stats).
    pub outcome: ServeOutcome,
}

/// The whole experiment: one row per policy over one shared trace.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Machine the service was modeled on.
    pub machine: String,
    /// Trace the policies shared.
    pub trace: TraceConfig,
    /// Serving knobs the policies shared.
    pub lanes: u64,
    /// Admission bound.
    pub queue_bound: u64,
    /// Admission policy (display form, e.g. `shed-oldest`).
    pub admission: String,
    /// Eviction policy (display form, e.g. `lru-cap(8192)`).
    pub eviction: String,
    /// Per-policy rows, in [`ServePolicy::all`] order.
    pub rows: Vec<ServeBenchRow>,
}

/// The trace `servebench` streams: Zipf-hot objects a few KiB each —
/// a working set far larger than the L2, with a hot set that fits —
/// under 8× bursts. `requests` comes from the scale preset.
pub fn serve_trace(requests: u64) -> TraceConfig {
    TraceConfig {
        seed: TRACE_SEED,
        requests,
        objects: 1 << 14,
        zipf_s: 0.9,
        object_bytes: 32 << 10,
        mean_interarrival_ns: 50_000,
        burst_factor: 8,
        burst_len: 512,
        calm_len: 1536,
    }
}

/// Runs the serving experiment at `scale` on the unscaled R8000 with
/// the default serving knobs (shed-oldest admission, LRU-capped bin
/// table).
pub fn servebench(scale: &ExpScale) -> ServeBenchResult {
    servebench_with(scale, &ServeConfig::default_bench())
}

/// [`servebench`] under explicit serving knobs.
pub fn servebench_with(scale: &ExpScale, config: &ServeConfig) -> ServeBenchResult {
    let machine = MachineModel::r8000();
    let trace = serve_trace(scale.serve_requests);
    let rows = ServePolicy::all()
        .into_iter()
        .map(|policy| ServeBenchRow {
            policy: policy.name(),
            outcome: run_serve(TraceGen::new(trace), &machine, config, policy)
                .expect("bench machines have separable caches"),
        })
        .collect();
    ServeBenchResult {
        machine: machine.name().to_owned(),
        trace,
        lanes: config.lanes as u64,
        queue_bound: config.queue_bound,
        admission: config.admission.to_string(),
        eviction: config.eviction.to_string(),
        rows,
    }
}

/// The long-run memory-bound gate (`servelong`): stream the full
/// request volume under a deliberately small LRU cap and fail loudly
/// if the live bin table ever exceeded it or the request accounting
/// does not balance. This is what makes "bounded memory" a CI
/// invariant instead of a code comment.
///
/// The cap must clear the run's peak *backlog* (bins holding undrained
/// threads are pinned; only drained-and-empty records can be evicted),
/// so it is set just above the admission bound plus drain-unit slack —
/// far below the 16k-object key universe the table would otherwise
/// track.
pub const SERVELONG_CAP: u64 = 6_000;

/// Runs the gate and returns the violations (empty = pass).
pub fn servelong(scale: &ExpScale) -> (ServeBenchResult, Vec<String>) {
    let config = ServeConfig {
        eviction: EvictionPolicy::LruCap {
            max_records: SERVELONG_CAP,
        },
        ..ServeConfig::default_bench()
    };
    let result = servebench_with(scale, &config);
    let mut violations = Vec::new();
    for row in &result.rows {
        let report = &row.outcome.report;
        if report.peak_live_bin_records > SERVELONG_CAP {
            violations.push(format!(
                "{}: peak_live_bin_records {} exceeds cap {SERVELONG_CAP}",
                row.policy, report.peak_live_bin_records
            ));
        }
        if report.completed + report.shed != report.admitted {
            violations.push(format!(
                "{}: completed {} + shed {} != admitted {}",
                row.policy, report.completed, report.shed, report.admitted
            ));
        }
        if report.admitted + report.rejected != report.offered {
            violations.push(format!(
                "{}: admitted {} + rejected {} != offered {}",
                row.policy, report.admitted, report.rejected, report.offered
            ));
        }
    }
    (result, violations)
}

impl ServeBenchResult {
    /// The row for `policy`, if measured.
    pub fn row(&self, policy: &str) -> Option<&ServeBenchRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }

    /// Benchdiff-compatible JSON. Deliberately omits anything
    /// wall-clock (probe spans, run profiles): the committed baseline
    /// and the CI byte-reproducibility check require every field to be
    /// a pure function of (trace, machine, policy).
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        write!(
            json,
            "{{\"experiment\":\"serve\",\"machine\":\"{}\",\"seed\":{},\"requests\":{},\
             \"objects\":{},\"zipf_s\":{:.4},\"object_bytes\":{},\"burst_factor\":{},\
             \"lanes\":{},\"queue_bound\":{},\"admission\":\"{}\",\"eviction\":\"{}\",\"rows\":[",
            self.machine,
            self.trace.seed,
            self.trace.requests,
            self.trace.objects,
            self.trace.zipf_s,
            self.trace.object_bytes,
            self.trace.burst_factor,
            self.lanes,
            self.queue_bound,
            self.admission,
            self.eviction,
        )
        .expect("writing to String cannot fail");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let report = &row.outcome.report;
            let sim = &row.outcome.sim;
            write!(
                json,
                "{{\"workload\":\"{}\",\"offered\":{},\"admitted\":{},\"rejected\":{},\
                 \"shed\":{},\"completed\":{},\"warm_hits\":{},\"cold_misses\":{},\
                 \"warm_hit_rate_pct\":{:.4},\"drains\":{},\"max_queue_depth\":{},\
                 \"mean_queue_depth_x1000\":{},\"p50_latency_ns\":{},\"p99_latency_ns\":{},\
                 \"mean_latency_ns\":{},\"mean_slowdown_x1000\":{},\"makespan_ns\":{},\
                 \"evictions\":{},\"peak_live_bin_records\":{},\"wasted_memory_time\":{},\
                 \"accesses\":{},\"l1_misses\":{},\"l2_misses\":{}}}",
                row.policy,
                report.offered,
                report.admitted,
                report.rejected,
                report.shed,
                report.completed,
                report.warm_hits,
                report.cold_misses,
                report.warm_hit_rate_pct(),
                report.drains,
                report.max_queue_depth,
                report.mean_queue_depth_x1000,
                report.p50_latency_ns,
                report.p99_latency_ns,
                report.mean_latency_ns,
                report.mean_slowdown_x1000,
                report.makespan_ns,
                report.evictions,
                report.peak_live_bin_records,
                report.wasted_memory_time,
                sim.data_references(),
                sim.l1.misses(),
                sim.l2.misses(),
            )
            .expect("writing to String cannot fail");
        }
        json.push_str("]}");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpScale {
        ExpScale {
            serve_requests: 3_000,
            ..ExpScale::smoke()
        }
    }

    #[test]
    fn reports_all_policies_and_is_deterministic() {
        let a = servebench(&tiny());
        assert_eq!(a.rows.len(), 5);
        for policy in [
            "flat",
            "hierarchical",
            "topology",
            "single_bin",
            "unique_bin",
        ] {
            let row = a.row(policy).expect("policy measured");
            let report = &row.outcome.report;
            assert_eq!(report.offered, 3_000, "{policy}");
            assert_eq!(
                report.admitted + report.rejected,
                report.offered,
                "{policy}"
            );
            assert_eq!(report.completed + report.shed, report.admitted, "{policy}");
            assert!(report.p99_latency_ns >= report.p50_latency_ns, "{policy}");
            assert!(report.makespan_ns > 0, "{policy}");
        }
        let b = servebench(&tiny());
        assert_eq!(a.to_json(), b.to_json(), "servebench must be byte-stable");
    }

    #[test]
    fn json_has_benchdiff_shape_and_no_wall_clock() {
        let json = servebench(&tiny()).to_json();
        assert!(json.contains("\"experiment\":\"serve\""), "{json}");
        assert!(json.contains("\"workload\":\"flat\""), "{json}");
        assert!(json.contains("\"warm_hit_rate_pct\":"), "{json}");
        assert!(json.contains("\"p99_latency_ns\":"), "{json}");
        assert!(json.contains("\"mean_slowdown_x1000\":"), "{json}");
        assert!(json.contains("\"shed\":"), "{json}");
        assert!(json.contains("\"evictions\":"), "{json}");
        assert!(json.contains("\"peak_live_bin_records\":"), "{json}");
        assert!(json.contains("\"wasted_memory_time\":"), "{json}");
        assert!(json.contains("\"admission\":\"shed-oldest\""), "{json}");
        assert!(json.contains("\"eviction\":\"lru-cap(8192)\""), "{json}");
        assert!(!json.contains("run_profile"), "wall-clock leaked: {json}");
    }

    #[test]
    fn servelong_gate_passes_at_smoke_scale() {
        let (result, violations) = servelong(&tiny());
        assert!(violations.is_empty(), "{violations:?}");
        for row in &result.rows {
            assert!(
                row.outcome.report.peak_live_bin_records <= SERVELONG_CAP,
                "{}: {}",
                row.policy,
                row.outcome.report.peak_live_bin_records
            );
        }
    }

    #[test]
    fn locality_policies_beat_fifo_on_warm_hits() {
        let result = servebench(&tiny());
        let fifo = result.row("single_bin").unwrap().outcome.report.warm_hits;
        let flat = result.row("flat").unwrap().outcome.report.warm_hits;
        assert!(
            flat >= fifo,
            "locality binning should not lose warm hits: flat {flat} vs fifo {fifo}"
        );
    }
}

//! Plain-text table rendering for the harness binaries.

/// A simple aligned-column text table.
///
/// # Examples
///
/// ```
/// use repro::fmt::TextTable;
///
/// let mut t = TextTable::new(vec!["version", "paper", "ours"]);
/// t.row(vec!["untiled".into(), "102.98".into(), "1.53".into()]);
/// let s = t.render();
/// assert!(s.contains("untiled"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = impl Into<String>>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}"));
                } else {
                    out.push_str(&format!("  {cell:>width$}"));
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a count in thousands, the paper's table unit.
pub fn thousands(v: u64) -> String {
    format!("{}k", (v as f64 / 1000.0).round() as u64)
}

/// Formats seconds with two decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio like `5.1x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows render to the same width.
        assert_eq!(
            lines[0].len(),
            lines[2].trim_end().len().max(lines[0].len())
        );
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(thousands(68_225_000), "68225k");
        assert_eq!(secs(102.98), "102.98");
        assert_eq!(ratio(5.068), "5.07x");
    }
}

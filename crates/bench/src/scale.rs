//! Problem/machine scaling presets.

/// Problem sizes plus per-workload machine scale factors.
///
/// Trace-driven simulation of the paper's full problem sizes costs
/// 10⁹–10¹⁰ simulated references per version. The scaled presets shrink
/// each problem and the simulated machine's caches by the same factor,
/// preserving the data-set : cache ratios that determine capacity-miss
/// behaviour (the quantity every table in the paper turns on). The
/// ratios per workload:
///
/// * matmul (paper n = 1024): 24 MB of matrices vs 2 MB L2 → ratio 12.
/// * PDE (paper n = 2049): 3 × 33.6 MB arrays vs 2 MB → ratio ~50.
/// * SOR (paper n = 2005): 32 MB array vs 2 MB → ratio 16.
/// * N-body (paper 64,000 bodies): ~12 MB bodies+tree vs 2 MB → ratio ~6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpScale {
    /// Matmul dimension.
    pub matmul_n: usize,
    /// Machine scale factor for matmul experiments.
    pub matmul_factor: f64,
    /// PDE grid dimension.
    pub pde_n: usize,
    /// PDE iterations ("iters ≤ 5 in practical multigrid solvers").
    pub pde_iters: usize,
    /// Machine scale factor for PDE experiments.
    pub pde_factor: f64,
    /// SOR array dimension.
    pub sor_n: usize,
    /// SOR sweep count.
    pub sor_t: usize,
    /// SOR tile size.
    pub sor_tile: usize,
    /// Machine scale factor for SOR experiments.
    pub sor_factor: f64,
    /// Body count.
    pub nbody_n: usize,
    /// N-body timesteps.
    pub nbody_iters: usize,
    /// Machine scale factor for N-body experiments.
    pub nbody_factor: f64,
    /// Requests the online serving experiment streams (`servebench`).
    pub serve_requests: u64,
}

impl ExpScale {
    /// The paper's exact problem sizes on the unscaled machines.
    /// Expect hours of simulation for the full suite.
    pub fn full() -> Self {
        ExpScale {
            matmul_n: 1024,
            matmul_factor: 1.0,
            pde_n: 2049,
            pde_iters: 5,
            pde_factor: 1.0,
            sor_n: 2005,
            sor_t: 30,
            sor_tile: 18,
            sor_factor: 1.0,
            nbody_n: 64_000,
            nbody_iters: 4,
            nbody_factor: 1.0,
            serve_requests: 4_000_000,
        }
    }

    /// The default ratio-preserving scale: every problem and its
    /// machine shrink 4–16×, keeping the paper's data : cache ratios.
    /// The whole suite simulates in a few minutes.
    pub fn default_scaled() -> Self {
        ExpScale {
            matmul_n: 256,             // 1.5 MB of matrices
            matmul_factor: 1.0 / 16.0, // 128 KB L2 -> ratio 12, as in the paper
            pde_n: 1025,
            pde_iters: 5,
            pde_factor: 1.0 / 4.0,
            sor_n: 1001,
            sor_t: 30,
            sor_tile: 18,
            sor_factor: 1.0 / 4.0,
            nbody_n: 16_000,
            nbody_iters: 4,
            nbody_factor: 1.0 / 4.0,
            serve_requests: 1_000_000,
        }
    }

    /// A tiny smoke-test scale for CI; shapes still hold, in minutes of
    /// CPU time they do not need.
    pub fn smoke() -> Self {
        ExpScale {
            matmul_n: 96,
            matmul_factor: 1.0 / 128.0,
            pde_n: 257,
            pde_iters: 5,
            pde_factor: 1.0 / 64.0,
            sor_n: 251,
            sor_t: 10,
            sor_tile: 18,
            sor_factor: 1.0 / 64.0,
            nbody_n: 2_000,
            nbody_iters: 2,
            nbody_factor: 1.0 / 32.0,
            serve_requests: 100_000,
        }
    }
}

impl Default for ExpScale {
    fn default() -> Self {
        ExpScale::default_scaled()
    }
}

/// Picks the scale from command-line flags: `--full` for the paper's
/// exact sizes, `--smoke` for a fast sanity run, otherwise the default
/// ratio-preserving scale.
pub fn scale_from_args<I: IntoIterator<Item = String>>(args: I) -> ExpScale {
    let mut scale = ExpScale::default_scaled();
    for arg in args {
        match arg.as_str() {
            "--full" => scale = ExpScale::full(),
            "--smoke" => scale = ExpScale::smoke(),
            _ => {}
        }
    }
    scale
}

/// Picks the shard count for experiments with a sharded cell from a
/// `--shards N` flag, defaulting when absent. The count is a *request*:
/// the shard planner still clamps it to what the simulated machine's
/// geometry supports (see `cachesim::ShardPlan`).
pub fn shards_from_args<I: IntoIterator<Item = String>>(args: I, default: u32) -> u32 {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            if let Some(n) = args.next().and_then(|n| n.parse().ok()) {
                return n;
            }
            eprintln!("--shards needs a count; using {default}");
            return default;
        } else if let Some(n) = arg.strip_prefix("--shards=") {
            match n.parse() {
                Ok(n) => return n,
                Err(_) => {
                    eprintln!("--shards needs a count; using {default}");
                    return default;
                }
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_preserves_matmul_ratio() {
        let full = ExpScale::full();
        let scaled = ExpScale::default_scaled();
        let ratio = |n: usize, factor: f64| {
            let data = 3.0 * (n * n * 8) as f64;
            data / ((2 << 20) as f64 * factor)
        };
        let r_full = ratio(full.matmul_n, full.matmul_factor);
        let r_scaled = ratio(scaled.matmul_n, scaled.matmul_factor);
        assert!(
            (r_full - r_scaled).abs() / r_full < 0.05,
            "{r_full} vs {r_scaled}"
        );
    }

    #[test]
    fn shards_flag_parses_both_spellings_and_defaults() {
        let argv = |s: &[&str]| s.iter().map(|a| (*a).to_owned()).collect::<Vec<_>>();
        assert_eq!(shards_from_args(argv(&["--smoke"]), 4), 4);
        assert_eq!(shards_from_args(argv(&["--shards", "8"]), 4), 8);
        assert_eq!(shards_from_args(argv(&["--shards=2"]), 4), 2);
        assert_eq!(shards_from_args(argv(&["--shards", "nope"]), 4), 4);
        assert_eq!(shards_from_args(argv(&["--shards"]), 4), 4);
    }

    #[test]
    fn scaled_preserves_sor_ratio() {
        let full = ExpScale::full();
        let scaled = ExpScale::default_scaled();
        let ratio = |n: usize, factor: f64| (n * n * 8) as f64 / ((2 << 20) as f64 * factor);
        let r_full = ratio(full.sor_n, full.sor_factor);
        let r_scaled = ratio(scaled.sor_n, scaled.sor_factor);
        assert!(
            (r_full - r_scaled).abs() / r_full < 0.05,
            "{r_full} vs {r_scaled}"
        );
    }
}

//! Rendering of experiment results next to the paper's numbers.

use crate::experiments::{
    BinPolicyResult, Figure4Result, MissRow, StealAblationResult, Table1Result, TimeRow,
    TopologyResult,
};
use crate::fmt::{ratio, secs, thousands, TextTable};
use crate::paper;
use crate::servebench::ServeBenchResult;
use crate::simbench::SimBenchResult;
use locality_sched::StealPolicy;

/// Prints Table 1: measured host overhead vs the paper's per-machine
/// values.
pub fn table1(result: &Table1Result) {
    println!("Table 1: thread overhead (this host, Rust implementation) vs paper (microseconds)\n");
    let mut t = TextTable::new(vec!["", "host (us)", "paper R8000", "paper R10000"]);
    t.row(vec![
        "Fork".into(),
        format!("{:.3}", result.fork_ns / 1000.0),
        format!("{:.2}", paper::table1::FORK_US.0),
        format!("{:.2}", paper::table1::FORK_US.1),
    ]);
    t.row(vec![
        "Run".into(),
        format!("{:.3}", result.run_ns / 1000.0),
        format!("{:.2}", paper::table1::RUN_US.0),
        format!("{:.2}", paper::table1::RUN_US.1),
    ]);
    t.row(vec![
        "Total".into(),
        format!("{:.3}", result.total_ns() / 1000.0),
        format!("{:.2}", paper::table1::TOTAL_US.0),
        format!("{:.2}", paper::table1::TOTAL_US.1),
    ]);
    t.row(vec![
        "L2 miss (modeled)".into(),
        "-".into(),
        format!("{:.2}", paper::table1::L2_MISS_US.0),
        format!("{:.2}", paper::table1::L2_MISS_US.1),
    ]);
    print!("{}", t.render());
    println!(
        "\n({} null threads, uniformly distributed hints, best of 3)",
        result.threads
    );
}

/// Prints a timing table (Tables 2/4/6/8): modeled seconds per machine
/// with speedup-vs-baseline ratios, next to the paper's seconds.
pub fn time_table(title: &str, rows: &[TimeRow], paper_rows: &[(&str, f64, f64)], note: &str) {
    println!("{title}\n");
    let mut t = TextTable::new(vec![
        "version",
        "R8000 model (s)",
        "vs base",
        "paper (s)",
        "paper vs base",
        "R10000 model (s)",
        "vs base",
        "paper (s)",
        "paper vs base",
    ]);
    let base8 = rows.first().map_or(1.0, |r| r.r8000.total());
    let base10 = rows.first().map_or(1.0, |r| r.r10000.total());
    let pbase8 = paper_rows.first().map_or(1.0, |r| r.1);
    let pbase10 = paper_rows.first().map_or(1.0, |r| r.2);
    for (i, row) in rows.iter().enumerate() {
        let paper_row = paper_rows.get(i);
        t.row(vec![
            row.version.clone(),
            secs(row.r8000.total()),
            ratio(base8 / row.r8000.total()),
            paper_row.map(|p| secs(p.1)).unwrap_or_default(),
            paper_row.map(|p| ratio(pbase8 / p.1)).unwrap_or_default(),
            secs(row.r10000.total()),
            ratio(base10 / row.r10000.total()),
            paper_row.map(|p| secs(p.2)).unwrap_or_default(),
            paper_row.map(|p| ratio(pbase10 / p.2)).unwrap_or_default(),
        ]);
    }
    print!("{}", t.render());
    if !note.is_empty() {
        println!("\n{note}");
    }
}

/// Prints a simulation table (Tables 3/5/7/9) in the paper's row
/// layout, one column pair (ours, paper) per version.
pub fn miss_table(title: &str, rows: &[MissRow], paper_cols: &[Vec<u64>], note: &str) {
    println!("{title}\n");
    let mut header = vec!["metric".to_owned()];
    for row in rows {
        let short = row.version.split('/').nth(1).unwrap_or(&row.version);
        header.push(format!("{short} (ours)"));
        header.push(format!("{short} (paper)"));
    }
    let mut t = TextTable::new(header);
    type MetricFn = Box<dyn Fn(&MissRow) -> String>;
    let metrics: [(&str, MetricFn); 9] = [
        ("I fetches", Box::new(|r| thousands(r.report.instructions))),
        (
            "D references",
            Box::new(|r| thousands(r.report.data_references())),
        ),
        ("L1 misses", Box::new(|r| thousands(r.report.l1.misses()))),
        (
            "  rate %",
            Box::new(|r| format!("{:.1}", r.report.l1_miss_rate_percent())),
        ),
        ("L2 misses", Box::new(|r| thousands(r.report.l2.misses()))),
        (
            "  rate %",
            Box::new(|r| format!("{:.1}", r.report.l2_miss_rate_percent())),
        ),
        (
            "L2 compulsory",
            Box::new(|r| thousands(r.report.classes.compulsory)),
        ),
        (
            "L2 capacity",
            Box::new(|r| thousands(r.report.classes.capacity)),
        ),
        (
            "L2 conflict",
            Box::new(|r| thousands(r.report.classes.conflict)),
        ),
    ];
    // paper_cols[version][metric]: the paper's seven counts per column
    // (I, D, L1, L2, compulsory, capacity, conflict) in thousands.
    let paper_metric_for = |version: usize, metric: usize| -> String {
        let map: [Option<usize>; 9] = [
            Some(0),
            Some(1),
            Some(2),
            None,
            Some(3),
            None,
            Some(4),
            Some(5),
            Some(6),
        ];
        match map[metric] {
            Some(idx) => paper_cols
                .get(version)
                .and_then(|col| col.get(idx))
                .map(|v| format!("{v}k"))
                .unwrap_or_default(),
            None => String::new(),
        }
    };
    for (mi, (name, get)) in metrics.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (vi, row) in rows.iter().enumerate() {
            cells.push(get(row));
            cells.push(paper_metric_for(vi, mi));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    if !note.is_empty() {
        println!("\n{note}");
    }
}

/// Extracts the paper's per-version metric columns from a table-shaped
/// constant (rows of (metric, v1, v2, v3)).
pub fn paper_columns3(rows: &[(&str, u64, u64, u64)]) -> Vec<Vec<u64>> {
    let take = rows.len().min(7);
    let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
    for row in &rows[..take] {
        cols[0].push(row.1);
        cols[1].push(row.2);
        cols[2].push(row.3);
    }
    cols
}

/// Extracts the paper's per-version metric columns from a two-version
/// table constant.
pub fn paper_columns2(rows: &[(&str, u64, u64)]) -> Vec<Vec<u64>> {
    let mut cols = vec![Vec::new(), Vec::new()];
    for row in rows {
        cols[0].push(row.1);
        cols[1].push(row.2);
    }
    cols
}

/// Prints the fast-path simulation benchmark: per workload the
/// simulated-access throughput with the fast lookup paths off and on,
/// plus the sharded replay pipeline, after the built-in check that all
/// three produce identical reports. The sharded column times trace
/// *replay* only (capture excluded), so it measures the engine.
pub fn simbench(result: &SimBenchResult) {
    println!(
        "Simulation fast-path benchmark: accesses/sec, slow (exhaustive) vs fast path vs sharded replay, best of {} (reports verified identical)\n",
        result.reps
    );
    let mut t = TextTable::new(vec![
        "workload",
        "accesses",
        "slow (ms)",
        "fast (ms)",
        "shard (ms)",
        "slow Macc/s",
        "fast Macc/s",
        "shard Macc/s",
        "speedup",
        "shard speedup",
    ]);
    for row in &result.rows {
        t.row(vec![
            row.label(),
            thousands(row.accesses),
            format!("{:.2}", row.slow_ns as f64 / 1e6),
            format!("{:.2}", row.fast_ns as f64 / 1e6),
            format!("{:.2}", row.sharded_ns as f64 / 1e6),
            format!("{:.2}", row.slow_accesses_per_sec() / 1e6),
            format!("{:.2}", row.fast_accesses_per_sec() / 1e6),
            format!("{:.2}", row.sharded_accesses_per_sec() / 1e6),
            ratio(row.speedup()),
            ratio(row.sharded_speedup()),
        ]);
    }
    print!("{}", t.render());
}

/// Prints the steal-policy ablation: per (workers, policy) the
/// critical path in deterministic work units, its modeled time,
/// speedups over `StealPolicy::None`, and aggregate steal counters.
pub fn steal(result: &StealAblationResult) {
    println!(
        "Steal-policy ablation: windowed-sum, {} bins, {} threads, triangular per-thread cost (best of 3 by critical path)\n",
        result.bins, result.threads
    );
    let mut t = TextTable::new(vec![
        "workers",
        "policy",
        "crit path (units)",
        "modeled (ms)",
        "wall (ms)",
        "Kthreads/s",
        "vs none",
        "steals succ/att",
        "parked (us)",
    ]);
    for &workers in &result.worker_counts {
        for policy in [
            StealPolicy::None,
            StealPolicy::Random,
            StealPolicy::LocalityAware,
        ] {
            let Some(row) = result.row(policy, workers) else {
                continue;
            };
            let parked_us: u64 = row
                .report
                .stats
                .workers()
                .iter()
                .map(|w| w.parked_ns)
                .sum::<u64>()
                / 1000;
            t.row(vec![
                workers.to_string(),
                policy.to_string(),
                row.makespan_units.to_string(),
                format!("{:.3}", row.modeled_ns as f64 / 1e6),
                format!("{:.3}", row.wall_ns as f64 / 1e6),
                format!("{:.1}", row.threads_per_sec / 1e3),
                ratio(result.speedup_vs_none(policy, workers)),
                format!(
                    "{}/{}",
                    row.report.stats.steals_succeeded(),
                    row.report.stats.steals_attempted()
                ),
                parked_us.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nCritical path = max per-worker sum of known per-bin costs (work\nunits), i.e. the makespan under ideal parallel execution; modeled\ntime converts it at the single-worker calibration rate. Wall-clock\nadditionally depends on how many physical cores the host has. The\nstatic partition balances thread *counts*, not thread *cost*; stealing\nabsorbs the resulting tail, and locality-aware victim selection does\nso while keeping each worker's tour segment contiguous."
    );
}

/// Prints the bin-policy ablation: per (kernel, machine) the simulated
/// misses under flat vs hierarchical binning and the deltas.
pub fn binpolicy(result: &BinPolicyResult) {
    println!(
        "Bin-policy ablation: flat (paper §3.2, L2-sized bins) vs hierarchical\n(L1-sized sub-bins nested in L2-sized bins), threaded versions, simulated\n"
    );
    let mut t = TextTable::new(vec![
        "workload",
        "machine",
        "policy",
        "block(s)",
        "threads",
        "L1 misses",
        "L2 misses",
        "L1 rate",
        "L2 rate",
        "modeled (ms)",
    ]);
    for row in &result.rows {
        let blocks = if row.policy == "hierarchical" {
            format!("{}K in {}K", row.l1_block >> 10, row.l2_block >> 10)
        } else {
            format!("{}K", row.l2_block >> 10)
        };
        t.row(vec![
            row.kernel.clone(),
            row.machine.clone(),
            row.policy.clone(),
            blocks,
            thousands(row.threads),
            thousands(row.report.l1.misses()),
            thousands(row.report.l2.misses()),
            format!("{:.1}%", row.report.l1_miss_rate_percent()),
            format!("{:.1}%", row.report.l2_miss_rate_percent()),
            format!("{:.3}", row.modeled_ns as f64 / 1e6),
        ]);
    }
    print!("{}", t.render());
    println!();
    let mut d = TextTable::new(vec![
        "workload",
        "machine",
        "L1 miss Δ",
        "L2 miss Δ",
        "modeled Δ",
    ]);
    for (kernel, machine) in result.pairs() {
        d.row(vec![
            kernel.clone(),
            machine.clone(),
            format!("{:+.1}%", result.l1_miss_delta_pct(&kernel, &machine)),
            format!("{:+.1}%", result.l2_miss_delta_pct(&kernel, &machine)),
            format!("{:+.1}%", result.modeled_delta_pct(&kernel, &machine)),
        ]);
    }
    print!("{}", d.render());
    println!(
        "\nΔ = hierarchical vs flat (negative = hierarchical better). Sub-bins\nkeep each L1-sized working set resident while the parent bin still\nbounds the L2 working set; the L2 columns should be ~unchanged while\nL1 misses move."
    );
}

/// Prints the topology ablation: per (kernel, machine) the simulated
/// misses under flat, two-level, and full machine-tree binning, and
/// each deeper policy's deltas against flat.
pub fn topology(result: &TopologyResult) {
    println!(
        "Topology ablation: flat (paper §3.2) vs two-level (L1-in-L2) vs full\nmachine-tree binning, threaded versions, simulated on a two-level paper\nmachine and a four-level NUMA machine\n"
    );
    let mut t = TextTable::new(vec![
        "workload",
        "machine",
        "policy",
        "ladder",
        "threads",
        "L1 misses",
        "L2 misses",
        "L1 rate",
        "L2 rate",
        "modeled (ms)",
    ]);
    let block = |b: u64| {
        if b >= 1 << 10 {
            format!("{}K", b >> 10)
        } else {
            format!("{b}")
        }
    };
    for row in &result.rows {
        let ladder = row
            .blocks
            .iter()
            .map(|&b| block(b))
            .collect::<Vec<_>>()
            .join(" in ");
        t.row(vec![
            row.kernel.clone(),
            row.machine.clone(),
            row.policy.clone(),
            ladder,
            thousands(row.threads),
            thousands(row.report.l1.misses()),
            thousands(row.report.l2.misses()),
            format!("{:.1}%", row.report.l1_miss_rate_percent()),
            format!("{:.1}%", row.report.l2_miss_rate_percent()),
            format!("{:.3}", row.modeled_ns as f64 / 1e6),
        ]);
    }
    print!("{}", t.render());
    println!();
    let mut d = TextTable::new(vec![
        "workload",
        "machine",
        "policy",
        "L1 miss Δ",
        "L2 miss Δ",
        "modeled Δ",
    ]);
    for (kernel, machine) in result.pairs() {
        for policy in ["hierarchical", "topology"] {
            d.row(vec![
                kernel.clone(),
                machine.clone(),
                policy.to_owned(),
                format!(
                    "{:+.1}%",
                    result.l1_miss_delta_pct(&kernel, &machine, policy)
                ),
                format!(
                    "{:+.1}%",
                    result.l2_miss_delta_pct(&kernel, &machine, policy)
                ),
                format!(
                    "{:+.1}%",
                    result.modeled_delta_pct(&kernel, &machine, policy)
                ),
            ]);
        }
    }
    print!("{}", d.render());
    println!(
        "\nΔ = policy vs flat (negative = deeper binning better). On the two-level\nmachine the topology policy must match hierarchical exactly; on the NUMA\nmachine its extra rungs keep sibling bins under the same L3/socket\nsubtree adjacent in the tour."
    );
}

/// Prints the online serving experiment: per-policy hit rates, queue
/// behaviour, and modeled latency percentiles over one shared trace.
pub fn servebench(result: &ServeBenchResult) {
    println!(
        "Online serving: {} Zipf-skewed bursty requests streamed through the\ncontinuously-draining engine on the {} ({} lanes, queue bound {},\nadmission {}, eviction {})\n",
        thousands(result.trace.requests),
        result.machine,
        result.lanes,
        result.queue_bound,
        result.admission,
        result.eviction,
    );
    let mut t = TextTable::new(vec![
        "policy",
        "admitted",
        "rejected",
        "shed",
        "warm-hit",
        "p50 (us)",
        "p99 (us)",
        "slowdown",
        "max depth",
        "peak bins",
        "evicted",
        "makespan (ms)",
    ]);
    for row in &result.rows {
        let report = &row.outcome.report;
        t.row(vec![
            row.policy.to_owned(),
            thousands(report.admitted),
            thousands(report.rejected),
            thousands(report.shed),
            format!("{:.1}%", report.warm_hit_rate_pct()),
            format!("{:.1}", report.p50_latency_ns as f64 / 1e3),
            format!("{:.1}", report.p99_latency_ns as f64 / 1e3),
            format!("{:.2}x", report.mean_slowdown_x1000 as f64 / 1e3),
            thousands(report.max_queue_depth),
            thousands(report.peak_live_bin_records),
            thousands(report.evictions),
            format!("{:.2}", report.makespan_ns as f64 / 1e6),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nwarm-hit = requests whose payload was mostly L2-resident; locality\npolicies should beat single_bin (FIFO) by batching requests per hot object.\npeak bins = most live bin records the table ever held (the memory the\neviction policy bounds); shed = queued requests cancelled for arrivals."
    );
}

/// Prints the Figure 4 sweep as a text table plus an ASCII plot.
pub fn figure4(result: &Figure4Result) {
    println!("Figure 4: execution time vs block dimension size (scaled R8000 model)\n");
    let mut header = vec!["block (full-equiv)".to_owned()];
    for (name, _) in &result.series {
        header.push(name.clone());
    }
    let mut t = TextTable::new(header);
    for (i, &block) in result.block_sizes.iter().enumerate() {
        let label = if block >= 1 << 20 {
            format!("{}M", block >> 20)
        } else {
            format!("{}K", block >> 10)
        };
        let mut cells = vec![label];
        for (_, times) in &result.series {
            cells.push(secs(times[i]));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    // ASCII sparkline per series, normalized to its own max.
    for (name, times) in &result.series {
        let max = times.iter().copied().fold(f64::MIN, f64::max);
        let min = times.iter().copied().fold(f64::MAX, f64::min);
        let glyphs: String = times
            .iter()
            .map(|&v| {
                let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
                let t = if max > min {
                    (v - min) / (max - min)
                } else {
                    0.0
                };
                levels[(t * 7.0).round() as usize]
            })
            .collect();
        println!("{name:>8}  [{glyphs}]  (min {min:.2}s, max {max:.2}s)");
    }
    println!("\n(The paper's curves are flat while block dimensions sum within the L2\nand degrade beyond it; matmul degrades most sharply.)");
}

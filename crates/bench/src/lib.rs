//! Reproduction harness for every table and figure in the paper's
//! evaluation (§4).
//!
//! Each `tableN`/`figure4` module computes structured results that the
//! corresponding binary prints next to the paper's published numbers.
//! Absolute times cannot match 1996 SGI hardware; what must match — and
//! what the integration tests assert — is the *shape*: which version
//! wins, by roughly what factor, and where behaviour changes (e.g.
//! Figure 4's degradation once the block size exceeds the L2 size).
//!
//! Problem/machine scaling: the paper's traces are 10⁹–10¹⁰
//! references. The default [`ExpScale`] shrinks each problem *and* the
//! machine's caches by the same factor, preserving every
//! data-set : cache ratio the analysis depends on (see EXPERIMENTS.md);
//! `ExpScale::full()` reproduces the paper's exact sizes.

pub mod benchdiff;
pub mod cli;
pub mod experiments;
pub mod fmt;
pub mod paper;
pub mod print;
pub mod scale;
pub mod servebench;
pub mod simbench;

pub use experiments::{
    binpolicy, binpolicy_with, figure4, run_cells, steal_ablation, table1, table2, table2_with,
    table3, table4, table4_with, table5, table6, table6_with, table7, table8, table8_with, table9,
    topology, topology_with, BinPolicyResult, BinPolicyRow, Cell, Driver, Figure4Result, MissRow,
    StealAblationResult, StealRow, Table1Result, TimeRow, TopologyResult, TopologyRow,
};
pub use scale::ExpScale;
pub use servebench::{servebench, ServeBenchResult, ServeBenchRow};
pub use simbench::{SimBenchResult, SimBenchRow};

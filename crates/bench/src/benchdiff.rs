//! `benchdiff`: field-by-field comparison of two benchmark JSON
//! reports (`BENCH_sim.json`, `BENCH_steal.json`) for CI regression
//! gating.
//!
//! Both files are flattened to `path → number` maps (array rows are
//! labeled by their identifying field — `workload`, `policy`+`workers`,
//! `worker` — so reordering rows never produces a spurious diff), then
//! compared pairwise under a configurable relative threshold.
//!
//! Not every metric can gate CI. Absolute wall times and throughputs
//! (`*_ns`, `*per_sec`) depend on the host machine, and the probe
//! layer's `run_profile` counters track nondeterministic runtime
//! behaviour (steal interleavings); those compare *informationally* —
//! shown when they move, never failing the run — unless a
//! [`GatePolicy`] promotes them. `--gate-throughput` promotes just the
//! `*per_sec` leaves (higher is better) for CI legs where baseline and
//! current run on the same runner class back-to-back; `--gate-all`
//! additionally promotes wall times and runtime counters for strict
//! same-machine A/B comparisons. What gates by default is what a
//! checked-in baseline from another machine can promise: `speedup*`
//! ratios (higher is better) and deterministic workload counts like
//! `accesses` (must match within threshold in either direction).

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. The repo is offline
// (no serde); report JSON is machine-written and small, so a strict
// ~100-line parser is enough.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes in one go.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Flattening: JSON tree → ordered (path, value) pairs.
// ---------------------------------------------------------------------

/// The stable label of one array row: its identifying field if it has
/// one, else its index.
fn row_label(row: &Json, index: usize) -> String {
    if let Some(Json::Str(w)) = row.get("workload") {
        return w.clone();
    }
    if let Some(Json::Str(p)) = row.get("policy") {
        return match row.get("workers") {
            Some(Json::Num(n)) => format!("{p}.w{n}"),
            _ => p.clone(),
        };
    }
    if let Some(Json::Num(w)) = row.get("worker") {
        return format!("w{w}");
    }
    index.to_string()
}

/// Flattens numeric leaves to `path → value`, in document order.
///
/// Arrays of objects recurse with row labels (`rows[matmul@s4].fast_ns`);
/// arrays of anything else (histogram bucket pairs, bare number lists)
/// are skipped — their comparable summaries (`count`, `p50`, …) are
/// already scalar fields next to them. Strings and booleans are
/// identity, not measurement, and are skipped too.
pub fn flatten(value: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Json, path: String, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Num(v) => out.push((path, *v)),
        Json::Obj(fields) => {
            for (key, field) in fields {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                walk(field, sub, out);
            }
        }
        Json::Arr(items) if items.iter().all(|i| matches!(i, Json::Obj(_))) => {
            for (index, item) in items.iter().enumerate() {
                walk(item, format!("{path}[{}]", row_label(item, index)), out);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

/// How a metric's movement is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Higher is better; regression = drop beyond threshold.
    Higher,
    /// Lower is better; regression = rise beyond threshold.
    Lower,
    /// Expected stable; regression = movement beyond threshold either
    /// way.
    Stable,
    /// Machine- or run-dependent; never a regression.
    Info,
}

/// Deterministic per-leaf names a cross-machine baseline can promise:
/// trace-derived counts that must reproduce exactly.
const STABLE_LEAVES: &[&str] = &[
    "accesses",
    "reps",
    "bins",
    "threads",
    "workers",
    "threads_run",
    // The effective shard count is machine-geometry-derived config, not
    // a measurement: it must reproduce exactly.
    "shards",
    // Trace-driven simulation results are bit-deterministic: the same
    // program order produces the same miss counts on any host.
    "l1_misses",
    "l2_misses",
    "l1_miss_rate_pct",
    "l2_miss_rate_pct",
    // The serving simulation runs entirely on a virtual clock: every
    // metric below — including the `_ns` latencies, which would
    // otherwise classify as machine-dependent — is modeled, and must
    // reproduce bit-exactly on any host.
    "offered",
    "admitted",
    "rejected",
    "shed",
    "completed",
    "warm_hits",
    "cold_misses",
    "warm_hit_rate_pct",
    "drains",
    "max_queue_depth",
    "mean_queue_depth_x1000",
    "p50_latency_ns",
    "p99_latency_ns",
    "mean_latency_ns",
    "mean_slowdown_x1000",
    "makespan_ns",
    // Bounded-memory serving: eviction counts, the peak live bin-record
    // bound, and shed memory-time are all virtual-clock-derived.
    "evictions",
    "peak_live_bin_records",
    "wasted_memory_time",
    // Happens-before certificates (schedlint): event, unit, obligation,
    // and race counts are replay-derived from seeded captures and must
    // reproduce bit-exactly — any drift means the HB engine or a
    // policy's schedule changed.
    "hb_events",
    "hb_units",
    "hb_obligations",
    "hb_races",
    "hb_conflict_pairs",
    "hb_violations",
    "hb_unordered",
    "hb_steal_safe",
    "hb_cross_shard_words",
];

/// Which machine-dependent metric families are promoted from
/// [`Direction::Info`] to a gated direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatePolicy {
    /// Gate `*per_sec` throughputs (higher is better): for CI legs
    /// where baseline and current run back-to-back on the same runner
    /// class, so a throughput drop is a code regression, not machine
    /// noise. A throughput *rise* never fails.
    pub throughput: bool,
    /// Gate everything gateable — wall times (lower is better) and the
    /// remaining runtime counters (stable) too. Strict same-machine
    /// A/B comparisons only. Implies the throughput gate.
    pub all: bool,
}

impl GatePolicy {
    /// The default cross-machine policy: ratios and deterministic
    /// counts only.
    pub fn baseline() -> Self {
        GatePolicy::default()
    }

    /// `--gate-throughput`.
    pub fn throughput() -> Self {
        GatePolicy {
            throughput: true,
            all: false,
        }
    }

    /// `--gate-all`.
    pub fn all() -> Self {
        GatePolicy {
            throughput: true,
            all: true,
        }
    }

    fn gates_throughput(self) -> bool {
        self.throughput || self.all
    }
}

/// Classifies a flattened path under a [`GatePolicy`].
pub fn classify(path: &str, policy: GatePolicy) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.starts_with("speedup") || leaf.ends_with("speedup") {
        return Direction::Higher;
    }
    if path.contains("run_profile") {
        // Probe counters track runtime nondeterminism (steal
        // interleavings, wall times) — informational even under
        // --gate-all.
        return Direction::Info;
    }
    if leaf == "makespan_ns" && path.contains(".report.") {
        // A `ParRunReport`'s makespan is the max *wall-clock* busy
        // time across workers — machine-dependent, unlike the serving
        // rows' virtual-clock leaf of the same name.
        return if policy.all {
            Direction::Lower
        } else {
            Direction::Info
        };
    }
    if STABLE_LEAVES.contains(&leaf) {
        return Direction::Stable;
    }
    if leaf.contains("per_sec") {
        return if policy.gates_throughput() {
            Direction::Higher
        } else {
            Direction::Info
        };
    }
    if leaf.ends_with("_ns") {
        return if policy.all {
            Direction::Lower
        } else {
            Direction::Info
        };
    }
    // Remaining leaves are runtime-dependent counters (steal counts,
    // per-worker executed totals, makespan units).
    if policy.all {
        Direction::Stable
    } else {
        Direction::Info
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Flattened metric path.
    pub path: String,
    /// Baseline value (`None` = only in current).
    pub baseline: Option<f64>,
    /// Current value (`None` = missing from current).
    pub current: Option<f64>,
    /// Relative change `(current - baseline) / |baseline|` when both
    /// sides exist and the baseline is nonzero.
    pub delta: Option<f64>,
    /// How the metric is judged.
    pub direction: Direction,
    /// Whether this row fails the gate.
    pub regression: bool,
}

/// The full comparison of two reports.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Every compared (or unmatched) metric, in baseline order.
    pub rows: Vec<DiffRow>,
    /// Relative threshold the gate used.
    pub threshold: f64,
}

impl DiffReport {
    /// Rows that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.regression)
    }

    /// Whether the comparison passes.
    pub fn passed(&self) -> bool {
        !self.rows.iter().any(|r| r.regression)
    }

    /// Renders the comparison as a markdown summary: a table of every
    /// gated metric plus any informational metric that moved beyond the
    /// threshold, then a pass/fail verdict line.
    pub fn to_markdown(&self) -> String {
        let mut md = String::from("| metric | baseline | current | Δ | status |\n");
        md.push_str("|---|---:|---:|---:|---|\n");
        let mut info_total = 0usize;
        let mut shown = 0usize;
        for row in &self.rows {
            let moved = row.delta.is_some_and(|d| d.abs() > self.threshold);
            if row.direction == Direction::Info {
                info_total += 1;
                if !moved {
                    continue;
                }
            }
            shown += 1;
            let fmt = |v: Option<f64>| match v {
                Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{v}"),
                Some(v) => format!("{v:.3}"),
                None => "—".to_owned(),
            };
            let delta = match row.delta {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "—".to_owned(),
            };
            let status = if row.regression {
                "**REGRESSION**"
            } else if row.direction == Direction::Info {
                "info"
            } else {
                "ok"
            };
            let _ = writeln!(
                md,
                "| `{}` | {} | {} | {} | {} |",
                row.path,
                fmt(row.baseline),
                fmt(row.current),
                delta,
                status
            );
        }
        if shown == 0 {
            md.push_str("| _no gated metrics_ | | | | |\n");
        }
        let gated = self.rows.len() - info_total;
        let _ = writeln!(
            md,
            "\n{} — {gated} gated metric(s) at ±{:.0}% threshold, {info_total} informational.",
            if self.passed() {
                "**PASS**"
            } else {
                "**FAIL**"
            },
            self.threshold * 100.0
        );
        md
    }
}

/// Compares two benchmark JSON documents.
///
/// Every baseline metric is matched by path. A gated metric missing
/// from `current` is a regression (schema drift must not silently
/// disable the gate); metrics only in `current` are informational.
pub fn diff(
    baseline: &str,
    current: &str,
    threshold: f64,
    policy: GatePolicy,
) -> Result<DiffReport, String> {
    let base = flatten(&Json::parse(baseline).map_err(|e| format!("baseline: {e}"))?);
    let cur = flatten(&Json::parse(current).map_err(|e| format!("current: {e}"))?);
    let mut rows = Vec::new();
    for (path, base_value) in &base {
        let direction = classify(path, policy);
        let current_value = cur.iter().find(|(p, _)| p == path).map(|&(_, v)| v);
        let delta = current_value
            .and_then(|c| (*base_value != 0.0).then(|| (c - base_value) / base_value.abs()));
        let regression = match (direction, current_value, delta) {
            (Direction::Info, _, _) => false,
            (_, None, _) => true,
            (Direction::Higher, _, Some(d)) => d < -threshold,
            (Direction::Lower, _, Some(d)) => d > threshold,
            (Direction::Stable, _, Some(d)) => d.abs() > threshold,
            // Zero baseline: any nonzero current on a stable metric is
            // movement; directional metrics can't compute a ratio and
            // pass.
            (Direction::Stable, Some(c), None) => c != *base_value,
            (_, Some(_), None) => false,
        };
        rows.push(DiffRow {
            path: path.clone(),
            baseline: Some(*base_value),
            current: current_value,
            delta,
            direction,
            regression,
        });
    }
    for (path, value) in &cur {
        if !base.iter().any(|(p, _)| p == path) {
            rows.push(DiffRow {
                path: path.clone(),
                baseline: None,
                current: Some(*value),
                delta: None,
                direction: Direction::Info,
                regression: false,
            });
        }
    }
    Ok(DiffReport { rows, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_json(fast_ns: u64) -> String {
        sharded_sim_json(fast_ns, 50000)
    }

    fn sharded_sim_json(fast_ns: u64, sharded_ns: u64) -> String {
        // Shape matches SimBenchResult::to_json.
        format!(
            "{{\"experiment\":\"simbench\",\"reps\":3,\"rows\":[\
             {{\"workload\":\"matmul@s4\",\"accesses\":1000,\"shards\":4,\
             \"slow_ns\":200000,\"fast_ns\":{fast_ns},\"sharded_ns\":{sharded_ns},\
             \"slow_accesses_per_sec\":5000000.0,\
             \"fast_accesses_per_sec\":{:.1},\
             \"sharded_accesses_per_sec\":{:.1},\
             \"speedup\":{:.3},\"sharded_speedup\":{:.3}}}],\
             \"run_profile\":{{\"matmul.l1\":{{\"hits\":900,\"misses\":100}}}}}}",
            1000.0 / (fast_ns as f64 / 1e9),
            1000.0 / (sharded_ns as f64 / 1e9),
            200000.0 / fast_ns as f64,
            200000.0 / sharded_ns as f64,
        )
    }

    #[test]
    fn parser_round_trips_report_shapes() {
        let doc = Json::parse(&sim_json(100000)).expect("valid JSON");
        let rows = doc.get("rows").expect("rows");
        match rows {
            Json::Arr(items) => assert_eq!(items.len(), 1),
            other => panic!("rows not an array: {other:?}"),
        }
        assert_eq!(
            doc.get("experiment"),
            Some(&Json::Str("simbench".to_owned()))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn flatten_labels_rows_by_identity() {
        let doc = Json::parse(&sim_json(100000)).expect("valid JSON");
        let flat = flatten(&doc);
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"rows[matmul@s4].fast_ns"), "{paths:?}");
        assert!(paths.contains(&"run_profile.matmul.l1.hits"), "{paths:?}");
        assert!(!paths.iter().any(|p| p.contains("[0]")), "{paths:?}");
    }

    #[test]
    fn wall_clock_report_makespan_is_informational() {
        // The serving rows' virtual-clock makespan stays gated…
        assert_eq!(
            classify("rows[flat].makespan_ns", GatePolicy::baseline()),
            Direction::Stable
        );
        // …but a ParRunReport's wall-clock makespan never gates
        // cross-machine, and gates as a time (lower is better) only
        // under --gate-all.
        assert_eq!(
            classify(
                "rows[locality-aware.w4].report.makespan_ns",
                GatePolicy::baseline()
            ),
            Direction::Info
        );
        assert_eq!(
            classify(
                "rows[locality-aware.w4].report.makespan_ns",
                GatePolicy::all()
            ),
            Direction::Lower
        );
    }

    #[test]
    fn identical_reports_pass() {
        let a = sim_json(100000);
        let report = diff(&a, &a, 0.15, GatePolicy::all()).expect("diff");
        assert!(report.passed(), "{}", report.to_markdown());
        assert!(report.to_markdown().contains("**PASS**"));
    }

    #[test]
    fn small_throughput_drop_is_accepted() {
        // 5% slower fast path: under the 15% gate even with --gate-all.
        let report = diff(
            &sim_json(100000),
            &sim_json(105000),
            0.15,
            GatePolicy::all(),
        )
        .expect("diff");
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn large_throughput_drop_is_flagged_under_gate_all() {
        // 25% slower fast path: throughput and speedup both breach 15%.
        let report = diff(
            &sim_json(100000),
            &sim_json(125000),
            0.15,
            GatePolicy::all(),
        )
        .expect("diff");
        assert!(!report.passed());
        let failing: Vec<&str> = report.regressions().map(|r| r.path.as_str()).collect();
        assert!(
            failing.contains(&"rows[matmul@s4].fast_accesses_per_sec"),
            "{failing:?}"
        );
        assert!(failing.contains(&"rows[matmul@s4].speedup"), "{failing:?}");
        assert!(failing.contains(&"rows[matmul@s4].fast_ns"), "{failing:?}");
        let md = report.to_markdown();
        assert!(md.contains("**FAIL**"), "{md}");
        assert!(md.contains("**REGRESSION**"), "{md}");
    }

    #[test]
    fn machine_dependent_metrics_do_not_gate_by_default() {
        // Same 25% wall-time swing, default gating: times and
        // throughputs are informational (another machine is simply
        // faster), but the speedup *ratio* still gates — and it moved
        // beyond 15%, so the diff fails on exactly that.
        let report = diff(
            &sim_json(100000),
            &sim_json(125000),
            0.15,
            GatePolicy::baseline(),
        )
        .expect("diff");
        let failing: Vec<&str> = report.regressions().map(|r| r.path.as_str()).collect();
        assert_eq!(failing, vec!["rows[matmul@s4].speedup"], "{failing:?}");
    }

    #[test]
    fn throughput_gate_promotes_per_sec_drops_only() {
        // 25% slower sharded replay. Under the default policy only the
        // sharded_speedup ratio gates; --gate-throughput additionally
        // fails the raw accesses/sec drop, while wall times stay
        // informational (that is --gate-all territory).
        let base = sharded_sim_json(100000, 40000);
        let slower = sharded_sim_json(100000, 50000);
        let default_fail: Vec<String> = diff(&base, &slower, 0.15, GatePolicy::baseline())
            .expect("diff")
            .regressions()
            .map(|r| r.path.clone())
            .collect();
        assert_eq!(default_fail, vec!["rows[matmul@s4].sharded_speedup"]);
        let gated = diff(&base, &slower, 0.15, GatePolicy::throughput()).expect("diff");
        let failing: Vec<&str> = gated.regressions().map(|r| r.path.as_str()).collect();
        assert!(
            failing.contains(&"rows[matmul@s4].sharded_accesses_per_sec"),
            "{failing:?}"
        );
        assert!(
            !failing.iter().any(|p| p.ends_with("_ns")),
            "wall times must not gate under --gate-throughput: {failing:?}"
        );
    }

    #[test]
    fn throughput_gate_is_one_sided() {
        // A throughput *rise* is an improvement, not a regression.
        let report = diff(
            &sharded_sim_json(100000, 50000),
            &sharded_sim_json(100000, 30000),
            0.15,
            GatePolicy::throughput(),
        )
        .expect("diff");
        assert!(report.passed(), "{}", report.to_markdown());
    }

    #[test]
    fn shard_count_in_identity_splits_rows() {
        // A baseline recorded at 4 shards never silently compares
        // against an 8-shard run: the row labels differ, so every
        // gated 4-shard metric reports as missing.
        let base = sharded_sim_json(100000, 50000);
        let other = base.replace("@s4", "@s8");
        let report = diff(&base, &other, 0.15, GatePolicy::baseline()).expect("diff");
        assert!(!report.passed());
        assert!(report
            .regressions()
            .any(|r| r.path == "rows[matmul@s4].speedup" && r.current.is_none()));
    }

    #[test]
    fn stable_counts_gate_both_directions() {
        let base = sim_json(100000);
        let grown = base.replace("\"accesses\":1000", "\"accesses\":2000");
        let report = diff(&base, &grown, 0.15, GatePolicy::baseline()).expect("diff");
        let failing: Vec<&str> = report.regressions().map(|r| r.path.as_str()).collect();
        assert!(failing.contains(&"rows[matmul@s4].accesses"), "{failing:?}");
    }

    #[test]
    fn missing_gated_metric_is_a_regression() {
        let base = sim_json(100000);
        let renamed = base.replace("\"speedup\"", "\"speedupX\"");
        let report = diff(&base, &renamed, 0.15, GatePolicy::baseline()).expect("diff");
        assert!(!report.passed());
        let row = report
            .rows
            .iter()
            .find(|r| r.path == "rows[matmul@s4].speedup")
            .expect("baseline row kept");
        assert!(row.current.is_none() && row.regression);
    }

    #[test]
    fn run_profile_never_gates() {
        let base = sim_json(100000);
        let drifted = base.replace("\"hits\":900", "\"hits\":1");
        let report = diff(&base, &drifted, 0.15, GatePolicy::all()).expect("diff");
        assert!(report.passed(), "{}", report.to_markdown());
        // ... but the movement is surfaced in the table.
        assert!(
            report.to_markdown().contains("run_profile.matmul.l1.hits"),
            "{}",
            report.to_markdown()
        );
    }
}

//! Shared command-line driver for the `repro` binaries.

use crate::scale::scale_from_args;
use crate::{paper, print};

/// Runs one named experiment at the scale selected by the process's
/// command-line flags (`--full`, `--smoke`, default scaled; `simbench`
/// additionally honours `--shards N`).
///
/// Recognised names: `table1` … `table9`, `figure4`, `steal`,
/// `simbench`, `binpolicy`, `topology`, `servebench` (those five also
/// write their `BENCH_*.json` payloads), `servelong` (the long-run bounded-memory
/// gate — exits nonzero if the bin table ever exceeded its cap), and
/// `analyze` (the `schedlint` four-kernel self-check, writing
/// `ANALYZE_smoke.json`).
pub fn run(experiment: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args);
    run_at(experiment, &scale);
}

/// Runs one named experiment at an explicit scale.
pub fn run_at(experiment: &str, scale: &crate::ExpScale) {
    match experiment {
        "table1" => {
            print::table1(&crate::table1(paper::table1::THREADS));
        }
        "table2" => print::time_table(
            &format!("Table 2: matrix multiply (n = {})", scale.matmul_n),
            &crate::table2(scale),
            &paper::table2::ROWS,
            "Modeled seconds on ratio-preserved scaled machines; compare ratios, not absolutes.",
        ),
        "table3" => print::miss_table(
            "Table 3: matmul memory references and cache misses (scaled R8000)",
            &crate::table3(scale),
            &print::paper_columns3(&paper::table3::ROWS[..7]),
            "",
        ),
        "table4" => print::time_table(
            &format!(
                "Table 4: PDE (n = {}, {} iterations + residual)",
                scale.pde_n, scale.pde_iters
            ),
            &crate::table4(scale),
            &paper::table4::ROWS,
            "",
        ),
        "table5" => print::miss_table(
            "Table 5: PDE cache misses (scaled R8000)",
            &crate::table5(scale),
            &print::paper_columns3(&paper::table5::ROWS),
            "",
        ),
        "table6" => print::time_table(
            &format!(
                "Table 6: SOR (n = {}, t = {}, tile {})",
                scale.sor_n, scale.sor_t, scale.sor_tile
            ),
            &crate::table6(scale),
            &paper::table6::ROWS,
            "",
        ),
        "table7" => print::miss_table(
            "Table 7: SOR memory references and cache misses (scaled R8000)",
            &crate::table7(scale),
            &print::paper_columns3(&paper::table7::ROWS),
            "",
        ),
        "table8" => print::time_table(
            &format!(
                "Table 8: N-body ({} bodies, {} iterations)",
                scale.nbody_n, scale.nbody_iters
            ),
            &crate::table8(scale),
            &paper::table8::ROWS,
            "",
        ),
        "table9" => print::miss_table(
            "Table 9: N-body cache misses, one iteration (scaled R8000)",
            &crate::table9(scale),
            &print::paper_columns2(&paper::table9::ROWS),
            "",
        ),
        "figure4" => print::figure4(&crate::figure4(scale)),
        "simbench" => {
            // `--shards N` (default 4) sizes the sharded replay cell;
            // the planner clamps to what the machine geometry allows.
            let shards = crate::scale::shards_from_args(
                std::env::args().skip(1),
                crate::simbench::DEFAULT_SHARDS,
            );
            let result = crate::simbench::simbench(scale, 3, shards);
            print::simbench(&result);
            let path = "BENCH_sim.json";
            match std::fs::write(path, result.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        "binpolicy" => {
            let result = crate::experiments::binpolicy(scale);
            print::binpolicy(&result);
            let path = "BENCH_binpolicy.json";
            match std::fs::write(path, result.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        "topology" => {
            let result = crate::experiments::topology(scale);
            print::topology(&result);
            let path = "BENCH_topology.json";
            match std::fs::write(path, result.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        "servebench" => {
            let result = crate::servebench::servebench(scale);
            print::servebench(&result);
            let path = "BENCH_serve.json";
            match std::fs::write(path, result.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        "servelong" => {
            let (result, violations) = crate::servebench::servelong(scale);
            print::servebench(&result);
            if violations.is_empty() {
                println!(
                    "\nservelong: OK — {} requests per policy, live bin records never exceeded {}",
                    result.trace.requests,
                    crate::servebench::SERVELONG_CAP
                );
            } else {
                for violation in &violations {
                    eprintln!("servelong VIOLATION: {violation}");
                }
                std::process::exit(1);
            }
        }
        "analyze" => {
            // Fixed analysis scale, independent of --smoke/--full: the
            // committed ANALYZE_smoke.json baseline must be
            // byte-reproducible on every host.
            let machine = analyze::default_machine();
            let opts = analyze::AnalyzeOptions::default();
            let mut report = analyze::AnalyzeReport::new(machine.name(), opts.hint_threshold_pct);
            for kernel in workloads::Kernel::ALL {
                let capture =
                    analyze::capture_kernel(kernel, &machine, &analyze::AnalyzeScale::default());
                report.kernels.push(analyze::analyze(&capture, &opts));
            }
            print!("{}", report.to_text());
            let path = "ANALYZE_smoke.json";
            match std::fs::write(path, report.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        "steal" => {
            let result = crate::experiments::steal(scale);
            print::steal(&result);
            let path = "BENCH_steal.json";
            match std::fs::write(path, result.to_json()) {
                Ok(()) => println!("\nwrote {path}"),
                Err(err) => eprintln!("could not write {path}: {err}"),
            }
        }
        other => eprintln!("unknown experiment: {other}"),
    }
    println!();
}

//! Regenerates the paper's Table 5. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table5");
}

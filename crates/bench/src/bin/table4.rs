//! Regenerates the paper's Table 4. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table4");
}

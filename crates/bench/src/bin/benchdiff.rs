//! CI regression gate: compares two benchmark JSON reports and exits
//! nonzero when a gated metric regressed.
//!
//! ```text
//! benchdiff <baseline.json> <current.json> [--threshold 0.15]
//!           [--gate-throughput] [--gate-all]
//! ```
//!
//! `--gate-throughput` promotes `*per_sec` metrics to gated
//! (higher-is-better: a drop beyond the threshold fails) for CI legs
//! that produce baseline and current on the same runner class;
//! `--gate-all` additionally gates wall times and runtime counters for
//! strict same-machine A/B runs.
//!
//! Prints a markdown delta table to stdout (pipe into
//! `$GITHUB_STEP_SUMMARY` in CI). Exit codes: 0 = pass, 1 = at least
//! one regression, 2 = usage or parse error.

use repro::benchdiff::{diff, GatePolicy};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: benchdiff <baseline.json> <current.json> [--threshold <rel>] \
         [--gate-throughput] [--gate-all]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = 0.15f64;
    let mut policy = GatePolicy::baseline();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(value) = iter.next() else {
                    return usage();
                };
                match value.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => threshold = t,
                    _ => {
                        eprintln!("benchdiff: bad threshold '{value}'");
                        return ExitCode::from(2);
                    }
                }
            }
            "--gate-throughput" => policy.throughput = true,
            "--gate-all" => policy = GatePolicy::all(),
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("benchdiff: unknown flag '{other}'");
                return usage();
            }
            path => files.push(path.to_owned()),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return usage();
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))
    };
    let result = read(baseline_path)
        .and_then(|base| read(current_path).map(|cur| (base, cur)))
        .and_then(|(base, cur)| diff(&base, &cur, threshold, policy));
    match result {
        Ok(report) => {
            println!("### benchdiff: `{baseline_path}` → `{current_path}`\n");
            println!("{}", report.to_markdown());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("benchdiff: {err}");
            ExitCode::from(2)
        }
    }
}

//! Regenerates the paper's Table 6. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table6");
}

//! Ablations of the scheduler's design choices, measured in simulated
//! cache misses (the Criterion `ablation` bench measures the same
//! choices in host wall-clock):
//!
//! 1. bin tour policy (paper §2.3's "preferably the shortest path"),
//! 2. symmetric-hint folding (§2.3's 50% bin saving),
//! 3. page-mapping policy under a physically-indexed L2 (§6),
//! 4. N-body hint dimensionality (§6: "limited to 3 address hints"),
//! 5. SMP steal policy (§7's future work), measured in host
//!    wall-clock and exported to `BENCH_steal.json`.
//!
//! Flags: `--full`, `--smoke` (problem scale, as for the tables).

use cachesim::{MachineModel, PagePolicy, SimSink};
use locality_sched::{ClosureScheduler, Hints, SchedulerConfig, Tour};
use memtrace::{AddressSpace, MatrixLayout, TraceSink, TracedMatrix};
use repro::fmt::TextTable;
use repro::scale::scale_from_args;
use std::cell::RefCell;
use workloads::{matmul, nbody, sor};

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    tour_ablation(&scale);
    symmetric_ablation();
    paging_ablation(&scale);
    hint_dims_ablation(&scale);
    steal_policy_ablation(&scale);
}

fn steal_policy_ablation(scale: &repro::ExpScale) {
    println!("\nAblation 5: SMP steal policy (windowed-sum workload, host wall-clock)\n");
    let result = repro::experiments::steal(scale);
    repro::print::steal(&result);
    let path = "BENCH_steal.json";
    match std::fs::write(path, result.to_json()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
}

fn tour_ablation(scale: &repro::ExpScale) {
    println!("Ablation 1: bin tour policy (threaded matmul, scaled R8000)\n");
    let machine = MachineModel::r8000()
        .scaled_split(1.0, scale.matmul_factor)
        .expect("valid scaled machine");
    let mut table = TextTable::new(vec!["tour", "L2 misses", "L2 capacity", "modeled s"]);
    for (name, tour) in [
        ("allocation-order (paper)", Tour::AllocationOrder),
        ("sorted-key", Tour::SortedKey),
        ("hilbert", Tour::Hilbert),
        ("morton", Tour::Morton),
        ("random", Tour::Random(42)),
    ] {
        let config = SchedulerConfig::builder()
            .block_size(machine.l2_config().size() / 2)
            .tour(tour)
            .build()
            .expect("valid config");
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, scale.matmul_n, 42);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
        let r = sim.finish();
        table.row(vec![
            name.into(),
            r.l2.misses().to_string(),
            r.classes.capacity.to_string(),
            format!("{:.3}", r.time_on(&machine).total()),
        ]);
    }
    print!("{}", table.render());
    println!("\nIntra-bin locality dominates; space-filling tours shave the\ninter-bin block reloads; random pays one extra block reload per bin.\n");
}

/// A pairwise-interaction kernel where both hint orders occur: task
/// (i, j) reads columns i and j of the same matrix, forked for all
/// ordered pairs — the situation §2.3's symmetric folding targets.
fn symmetric_ablation() {
    println!("Ablation 2: symmetric-hint folding (pairwise column kernel)\n");
    let machine = MachineModel::r8000()
        .scaled_split(1.0, 1.0 / 32.0)
        .expect("valid scaled machine");
    let n = 96usize;
    let mut table = TextTable::new(vec!["folding", "bins", "L2 misses", "modeled s"]);
    for (name, symmetric) in [("off", false), ("on (paper's 50% saving)", true)] {
        let mut space = AddressSpace::new();
        let m = TracedMatrix::from_fn(&mut space, n, n, MatrixLayout::ColMajor, |i, j| {
            (i + j) as f64
        });
        let sim = RefCell::new(SimSink::new(machine.hierarchy()));
        let config = SchedulerConfig::builder()
            .block_size(machine.l2_config().size() / 2)
            .symmetric(symmetric)
            .build()
            .expect("valid config");
        let mut sched = ClosureScheduler::new(config);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let m = &m;
                let sim = &sim;
                sched.fork(Hints::two(m.col_addr(i), m.col_addr(j)), move || {
                    let mut sink = sim.borrow_mut();
                    let mut acc = 0.0;
                    for k in 0..m.rows() {
                        acc += m.get(k, i, &mut *sink) * m.get(k, j, &mut *sink);
                    }
                    sink.instructions(4 * m.rows() as u64);
                    std::hint::black_box(acc);
                });
            }
        }
        let bins = sched.bins();
        let threads = sched.pending();
        sched.run();
        drop(sched);
        let mut sim = sim.into_inner();
        sim.add_threads(threads);
        let r = sim.finish();
        table.row(vec![
            name.into(),
            bins.to_string(),
            r.l2.misses().to_string(),
            format!("{:.3}", r.time_on(&machine).total()),
        ]);
    }
    print!("{}", table.render());
    println!("\nFolding halves the bin count (same data both orders) and keeps\nthe per-bin working set identical, so misses stay flat or improve.\n");
}

fn paging_ablation(scale: &repro::ExpScale) {
    println!("Ablation 3: page mapping under a physically-indexed L2 (threaded SOR)\n");
    let machine = MachineModel::r8000()
        .scaled_split(1.0, scale.sor_factor)
        .expect("valid scaled machine");
    let mut table = TextTable::new(vec![
        "mapping",
        "L2 misses",
        "L2 conflict",
        "TLB misses",
        "modeled s",
    ]);
    for (name, policy) in [
        ("virtual (paper's methodology)", None),
        ("identity frames", Some(PagePolicy::Identity)),
        ("random frames", Some(PagePolicy::RandomSeeded(7))),
        ("bin-hopping frames", Some(PagePolicy::BinHopping)),
    ] {
        let hierarchy = match policy {
            None => machine.hierarchy(),
            Some(p) => machine.hierarchy_with_paging(p),
        };
        let config = SchedulerConfig::builder()
            .block_size(machine.l2_config().size() / 4)
            .build()
            .expect("valid config");
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, scale.sor_n, 99);
        let mut sim = SimSink::new(hierarchy);
        let report = sor::threaded(&mut data, scale.sor_t, config, &mut sim);
        sim.add_threads(report.threads);
        let r = sim.finish();
        table.row(vec![
            name.into(),
            r.l2.misses().to_string(),
            r.classes.conflict.to_string(),
            r.tlb.misses.to_string(),
            format!("{:.3}", r.time_on(&machine).total()),
        ]);
    }
    print!("{}", table.render());
    println!("\nThe paper simulated virtual addresses and flagged physical indexing\nas a limitation; random frames perturb conflicts, and the TLB cost\nthe crude model omits becomes visible.\n");
}

fn hint_dims_ablation(scale: &repro::ExpScale) {
    println!("Ablation 4: N-body hint dimensionality (one timestep, scaled R8000)\n");
    let machine = MachineModel::r8000()
        .scaled_split(1.0, scale.nbody_factor)
        .expect("valid scaled machine");
    let mut table = TextTable::new(vec!["hints", "bins", "L2 misses", "L2 capacity"]);
    for dims in [1usize, 2, 3] {
        let params = nbody::NBodyParams {
            plane_extent: 4 * (machine.l2_config().size() / 3),
            hint_dims: dims,
            ..nbody::NBodyParams::default()
        };
        let config = SchedulerConfig::builder()
            .block_size(machine.l2_config().size() / 4)
            .build()
            .expect("valid config");
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, scale.nbody_n, 2024);
        data.shuffle_storage_order(1);
        let mut sim = SimSink::new(machine.hierarchy());
        let report = nbody::threaded(&mut data, 1, params, config, &mut sim);
        sim.add_threads(report.threads);
        let r = sim.finish();
        table.row(vec![
            format!("{dims}-D"),
            report.sched.map_or(0, |s| s.bins()).to_string(),
            r.l2.misses().to_string(),
            r.classes.capacity.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nOne coordinate clusters bodies into slabs; three cluster them into\ncubes — the tighter the spatial cell, the smaller each bin's tree\nworking set.");
}

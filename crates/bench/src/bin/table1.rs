//! Regenerates the paper's Table 1. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table1");
}

//! Regenerates the paper's Table 7. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table7");
}

//! Cache-geometry sensitivity of the threaded scheduler's benefit —
//! a Hill & Smith-style sweep (reference \[21\] of the paper) over the
//! L2's associativity, capacity, and line size, using untiled vs
//! threaded matmul as the probe.
//!
//! Flags: `--full`, `--smoke` (problem scale, as for the tables).

use cachesim::{CacheConfig, HierarchyConfig, MachineModel, SimSink};
use locality_sched::SchedulerConfig;
use memtrace::AddressSpace;
use repro::fmt::TextTable;
use repro::scale::scale_from_args;
use workloads::matmul;

fn run(machine: &MachineModel, n: usize, threaded: bool) -> cachesim::SimReport {
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 42);
    let mut sim = SimSink::new(machine.hierarchy());
    if threaded {
        let config =
            SchedulerConfig::for_cache(machine.l2_config().size(), 2).expect("valid cache config");
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
    } else {
        matmul::interchanged(&mut data, &mut sim);
    }
    sim.finish()
}

fn machine_with_l2(l2: CacheConfig) -> MachineModel {
    let base = MachineModel::r8000();
    MachineModel::custom(
        format!("R8000/L2={l2}"),
        75e6,
        1.0,
        7.0,
        1060.0,
        HierarchyConfig::new(base.l1_config(), l2),
        base.thread_overhead_ns(),
    )
}

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    let n = scale.matmul_n;
    let base_l2 = (3 * n * n * 8 / 12).next_power_of_two() as u64; // data : L2 = 12
    println!(
        "Sensitivity of threaded matmul (n = {n}) to L2 geometry; base L2 = {} KiB\n",
        base_l2 >> 10
    );

    // Associativity sweep at fixed capacity.
    println!(
        "L2 associativity (capacity {} KiB, 128 B lines):\n",
        base_l2 >> 10
    );
    let mut t = TextTable::new(vec![
        "assoc",
        "untiled misses",
        "(conflict)",
        "threaded misses",
        "(conflict)",
        "reduction",
    ]);
    for assoc in [1u32, 2, 4, 8] {
        let l2 = CacheConfig::new(base_l2, 128, assoc).expect("geometry");
        let machine = machine_with_l2(l2);
        let untiled = run(&machine, n, false);
        let threaded = run(&machine, n, true);
        t.row(vec![
            format!("{assoc}-way"),
            untiled.l2.misses().to_string(),
            untiled.classes.conflict.to_string(),
            threaded.l2.misses().to_string(),
            threaded.classes.conflict.to_string(),
            format!(
                "{:.1}x",
                untiled.l2.misses() as f64 / threaded.l2.misses().max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());

    // Line-size sweep at fixed capacity/assoc.
    println!("\nL2 line size (capacity {} KiB, 4-way):\n", base_l2 >> 10);
    let mut t = TextTable::new(vec![
        "line",
        "untiled misses",
        "threaded misses",
        "reduction",
    ]);
    for line in [32u64, 64, 128, 256] {
        let l2 = CacheConfig::new(base_l2, line, 4).expect("geometry");
        let machine = machine_with_l2(l2);
        let untiled = run(&machine, n, false);
        let threaded = run(&machine, n, true);
        t.row(vec![
            format!("{line}B"),
            untiled.l2.misses().to_string(),
            threaded.l2.misses().to_string(),
            format!(
                "{:.1}x",
                untiled.l2.misses() as f64 / threaded.l2.misses().max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());

    // Capacity sweep at fixed line/assoc: threading's benefit shrinks
    // as the cache approaches the data size.
    println!("\nL2 capacity (4-way, 128 B lines):\n");
    let mut t = TextTable::new(vec![
        "capacity",
        "data:L2",
        "untiled misses",
        "threaded misses",
        "reduction",
    ]);
    for shift in [-1i32, 0, 1, 2, 3] {
        let capacity = if shift < 0 {
            base_l2 >> (-shift)
        } else {
            base_l2 << shift
        };
        let l2 = CacheConfig::new(capacity, 128, 4).expect("geometry");
        let machine = machine_with_l2(l2);
        let untiled = run(&machine, n, false);
        let threaded = run(&machine, n, true);
        t.row(vec![
            format!("{}K", capacity >> 10),
            format!("{:.1}", (3 * n * n * 8) as f64 / capacity as f64),
            untiled.l2.misses().to_string(),
            threaded.l2.misses().to_string(),
            format!(
                "{:.1}x",
                untiled.l2.misses() as f64 / threaded.l2.misses().max(1) as f64
            ),
        ]);
    }
    print!("{}", t.render());
    println!("\nOnce the whole data set fits the L2, everyone's misses collapse to");
    println!("compulsory and scheduling stops mattering — locality scheduling is a");
    println!("capacity-miss technique, exactly as the paper frames it.");
}

//! Regenerates the paper's Table 9. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table9");
}

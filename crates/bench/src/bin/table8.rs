//! Regenerates the paper's Table 8. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table8");
}

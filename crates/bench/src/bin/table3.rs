//! Regenerates the paper's Table 3. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table3");
}

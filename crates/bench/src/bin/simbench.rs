//! Fast-path simulation throughput benchmark (writes `BENCH_sim.json`).

fn main() {
    repro::cli::run("simbench");
}

//! Regenerates the paper's Table 2. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("table2");
}

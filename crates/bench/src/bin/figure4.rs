//! Regenerates the paper's Figure 4 sweep. Flags: `--full`, `--smoke`.
fn main() {
    repro::cli::run("figure4");
}

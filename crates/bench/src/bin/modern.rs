//! Does 1996's locality scheduling still matter on a modern memory
//! hierarchy? The paper closes predicting "latency tolerance techniques
//! such as thread scheduling will become more important as the
//! performance gap between memory and CPU increases" — this study
//! re-runs the headline workloads on a three-level 2020s machine model
//! (32 KB L1 / 512 KB L2 / 32 MB L3, 80 ns DRAM) scaled against the
//! same data : LLC ratios.
//!
//! Flags: `--full`, `--smoke`.

use cachesim::{MachineModel, SimReport, SimSink};
use locality_sched::SchedulerConfig;
use memtrace::AddressSpace;
use repro::fmt::TextTable;
use repro::scale::scale_from_args;
use workloads::{matmul, sor};

fn llc(machine: &MachineModel) -> u64 {
    machine
        .hierarchy_config()
        .l3
        .map_or_else(|| machine.l2_config().size(), |c| c.size())
}

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    // Scale the modern machine so the LLC sees the same pressure the
    // paper's 2 MB L2 saw (ratio preserved via the matmul factor).
    let full_llc_ratio = (3 * 1024 * 1024 * 8) as f64 / (2u64 << 20) as f64; // paper: 12
    let data = (3 * scale.matmul_n * scale.matmul_n * 8) as u64;
    let target_llc = (data as f64 / full_llc_ratio) as u64;
    let modern_full = MachineModel::modern();
    let factor = target_llc as f64 / llc(&modern_full) as f64;
    let modern = modern_full
        .scaled_split(1.0, factor)
        .expect("valid scaled machine");
    let r8000 = MachineModel::r8000()
        .scaled_split(1.0, scale.matmul_factor)
        .expect("valid scaled machine");

    println!(
        "Locality scheduling, 1996 vs a modern hierarchy (matmul n = {})\n",
        scale.matmul_n
    );
    let mut t = TextTable::new(vec![
        "machine",
        "LLC",
        "untiled LLC misses",
        "threaded LLC misses",
        "miss reduction",
        "modeled speedup",
    ]);
    for machine in [&r8000, &modern] {
        let untiled = run_matmul(machine, scale.matmul_n, false);
        let threaded = run_matmul(machine, scale.matmul_n, true);
        t.row(vec![
            machine.name().to_owned(),
            format!(
                "{}",
                match machine.hierarchy_config().l3 {
                    Some(l3) => l3,
                    None => machine.l2_config(),
                }
            ),
            untiled.llc_misses().to_string(),
            threaded.llc_misses().to_string(),
            format!(
                "{:.1}x",
                untiled.llc_misses() as f64 / threaded.llc_misses().max(1) as f64
            ),
            format!(
                "{:.2}x",
                untiled.time_on(machine).total() / threaded.time_on(machine).total()
            ),
        ]);
    }
    print!("{}", t.render());

    println!("\nSOR (n = {}, t = {}):\n", scale.sor_n, scale.sor_t);
    let modern_sor = modern_full
        .scaled_split(
            1.0,
            (scale.sor_n * scale.sor_n * 8) as f64 / 16.0 / llc(&modern_full) as f64,
        )
        .expect("valid scaled machine");
    let r8000_sor = MachineModel::r8000()
        .scaled_split(1.0, scale.sor_factor)
        .expect("valid scaled machine");
    let mut t = TextTable::new(vec![
        "machine",
        "untiled LLC misses",
        "threaded LLC misses",
        "miss reduction",
        "modeled speedup",
    ]);
    for machine in [&r8000_sor, &modern_sor] {
        let untiled = run_sor(machine, &scale, false);
        let threaded = run_sor(machine, &scale, true);
        t.row(vec![
            machine.name().to_owned(),
            untiled.llc_misses().to_string(),
            threaded.llc_misses().to_string(),
            format!(
                "{:.1}x",
                untiled.llc_misses() as f64 / threaded.llc_misses().max(1) as f64
            ),
            format!(
                "{:.2}x",
                untiled.time_on(machine).total() / threaded.time_on(machine).total()
            ),
        ]);
    }
    print!("{}", t.render());

    println!("\nThe miss structure carries over to three levels, and the modeled");
    println!("gain GROWS: a DRAM miss now forfeits ~1300 instruction slots");
    println!("(80 ns x 4 GHz x 4-wide) versus ~80 on the 1996 R8000, so saved");
    println!("misses buy more than they ever did — the paper's closing");
    println!("prediction (\"latency tolerance techniques ... will become more");
    println!("important as the performance gap increases\"), quantified.");
}

fn run_matmul(machine: &MachineModel, n: usize, threaded: bool) -> SimReport {
    let mut space = AddressSpace::new();
    let mut data = matmul::MatMulData::new(&mut space, n, 42);
    let mut sim = SimSink::new(machine.hierarchy());
    if threaded {
        let config = SchedulerConfig::for_cache(llc(machine), 2).expect("valid config");
        let report = matmul::threaded(&mut data, config, &mut sim);
        sim.add_threads(report.threads);
    } else {
        matmul::interchanged(&mut data, &mut sim);
    }
    sim.finish()
}

fn run_sor(machine: &MachineModel, scale: &repro::ExpScale, threaded: bool) -> SimReport {
    let mut space = AddressSpace::new();
    let mut data = sor::SorData::new(&mut space, scale.sor_n, 99);
    let mut sim = SimSink::new(machine.hierarchy());
    if threaded {
        let config = SchedulerConfig::builder()
            .block_size((llc(machine) / 4).next_power_of_two())
            .build()
            .expect("valid config");
        let report = sor::threaded(&mut data, scale.sor_t, config, &mut sim);
        sim.add_threads(report.threads);
    } else {
        sor::untiled(&mut data, scale.sor_t, &mut sim);
    }
    sim.finish()
}

//! `repro` — runs any or all of the paper's tables/figures.
//!
//! ```text
//! repro [all|table1|table2|...|table9|figure4|steal|simbench|binpolicy|topology|servebench|analyze]...
//!       [--full|--smoke] [--analyze] [--shards N]
//! ```
//!
//! `--analyze` (or the `analyze` experiment name) appends the
//! `schedlint` four-kernel schedule-safety self-check and writes
//! `ANALYZE_smoke.json`.

use repro::scale::scale_from_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.iter().cloned());
    let mut wanted: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--shards" {
            iter.next(); // skip the count; cli::run_at re-parses it
        } else if !arg.starts_with("--") {
            wanted.push(arg.as_str());
        }
    }
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "figure4",
            "steal",
            "simbench",
            "binpolicy",
            "topology",
            "servebench",
        ];
    }
    if args.iter().any(|a| a == "--analyze") && !wanted.contains(&"analyze") {
        wanted.push("analyze");
    }
    println!(
        "thread-locality reproduction harness (scale: matmul n={}, pde n={}, sor n={}, nbody n={})\n",
        scale.matmul_n, scale.pde_n, scale.sor_n, scale.nbody_n
    );
    for experiment in wanted {
        repro::cli::run_at(experiment, &scale);
    }
}

//! The paper's published numbers, used as reference columns in the
//! harness output and as shape anchors in EXPERIMENTS.md.
//!
//! Everything here is transcribed from Philbin et al., ASPLOS 1996,
//! §4 (Tables 1–9). Times are CPU seconds; reference/miss counts are in
//! thousands, as printed.

/// Table 1: thread overhead in microseconds.
pub mod table1 {
    /// (R8000, R10000) fork overhead, µs.
    pub const FORK_US: (f64, f64) = (1.38, 0.95);
    /// (R8000, R10000) run overhead, µs.
    pub const RUN_US: (f64, f64) = (0.22, 0.14);
    /// (R8000, R10000) total overhead, µs.
    pub const TOTAL_US: (f64, f64) = (1.60, 1.09);
    /// (R8000, R10000) L2 miss cost, µs.
    pub const L2_MISS_US: (f64, f64) = (1.06, 0.85);
    /// Threads used by the micro-benchmark.
    pub const THREADS: u64 = 1_048_576;
}

/// Table 2: matrix multiply, seconds (n = 1024).
pub mod table2 {
    /// Rows: (version, R8000 s, R10000 s).
    pub const ROWS: [(&str, f64, f64); 5] = [
        ("interchanged", 102.98, 36.63),
        ("transposed", 95.06, 32.96),
        ("tiled-interchanged", 16.61, 12.24),
        ("tiled-transposed", 19.73, 18.71),
        ("threaded", 20.32, 16.85),
    ];
}

/// Table 3: matmul references and misses on the R8000, in thousands.
pub mod table3 {
    /// Rows: (metric, untiled, tiled, threaded).
    pub const ROWS: [(&str, u64, u64, u64); 8] = [
        ("I fetches", 5_388_645, 2_184_458, 3_929_858),
        ("D references", 3_222_274, 728_256, 2_193_690),
        ("L1 misses", 408_756, 215_652, 414_741),
        ("L2 misses", 68_225, 738, 1_872),
        ("L2 compulsory", 199, 200, 299),
        ("L2 capacity", 68_025, 528, 1_311),
        ("L2 conflict", 0, 10, 262),
        ("threads (count)", 0, 0, 1_048_576 / 1000),
    ];
}

/// Table 4: PDE, seconds (n = 2049, 5 iterations + residual).
pub mod table4 {
    /// Rows: (version, R8000 s, R10000 s).
    pub const ROWS: [(&str, f64, f64); 3] = [
        ("regular", 9.48, 7.80),
        ("cache-conscious", 5.21, 5.21),
        ("threaded", 7.24, 4.98),
    ];
}

/// Table 5: PDE cache misses on the R8000, in thousands.
pub mod table5 {
    /// Rows: (metric, regular, cache-conscious, threaded).
    pub const ROWS: [(&str, u64, u64, u64); 7] = [
        ("I fetches", 303_686, 277_622, 283_467),
        ("D references", 126_044, 122_598, 126_385),
        ("L1 misses", 80_767, 85_040, 94_516),
        ("L2 misses", 6_038, 2_888, 3_415),
        ("L2 compulsory", 788, 788, 789),
        ("L2 capacity", 5_251, 2_100, 2_627),
        ("L2 conflict", 0, 0, 0),
    ];
}

/// Table 6: SOR, seconds (n = 2005, t = 30, tile 18).
pub mod table6 {
    /// Rows: (version, R8000 s, R10000 s).
    pub const ROWS: [(&str, f64, f64); 3] = [
        ("untiled", 30.54, 12.81),
        ("hand-tiled", 26.90, 4.27),
        ("threaded", 23.10, 4.31),
    ];
}

/// Table 7: SOR references and misses on the R8000, in thousands.
pub mod table7 {
    /// Rows: (metric, untiled, hand-tiled, threaded).
    pub const ROWS: [(&str, u64, u64, u64); 7] = [
        ("I fetches", 1_205_767, 1_917_178, 1_212_039),
        ("D references", 482_042, 703_522, 483_973),
        ("L1 misses", 90_451, 5_259, 90_631),
        ("L2 misses", 7_545, 282, 263),
        ("L2 compulsory", 251, 268, 258),
        ("L2 capacity", 7_294, 0, 6),
        ("L2 conflict", 0, 13, 0),
    ];
}

/// Table 8: N-body, seconds (64,000 bodies, 4 iterations).
pub mod table8 {
    /// Rows: (version, R8000 s, R10000 s).
    pub const ROWS: [(&str, f64, f64); 2] =
        [("unthreaded", 153.81, 53.22), ("threaded", 148.60, 46.34)];
}

/// Table 9: N-body references and misses on the R8000 (one iteration),
/// in thousands.
pub mod table9 {
    /// Rows: (metric, unthreaded, threaded).
    pub const ROWS: [(&str, u64, u64); 7] = [
        ("I fetches", 1_820_656, 1_838_089),
        ("D references", 865_713, 872_130),
        ("L1 misses", 54_313, 55_035),
        ("L2 misses", 1_674, 778),
        ("L2 compulsory", 175, 190),
        ("L2 capacity", 1_131, 495),
        ("L2 conflict", 369, 93),
    ];
}

/// Figure 4: block-size sweep on the R8000 — the curves are flat while
/// the block dimension sum stays within the 2 MB L2 and degrade
/// sharply beyond it (most visibly for matmul).
pub mod figure4 {
    /// The paper's sweep of block dimension sizes, bytes.
    pub const BLOCK_SIZES: [u64; 8] = [
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
    ];
}

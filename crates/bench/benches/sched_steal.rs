//! Wall-clock work-stealing throughput: every `StealPolicy` at several
//! worker counts, on the same windowed-sum workload as the steal
//! ablation (`repro ablation` / `repro steal`) — triangular per-thread
//! cost, so the static thread-count-balanced partition misjudges work
//! and stealing has a tail to absorb.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use locality_sched::{Hints, ParScheduler, SchedulerConfig, StealPolicy};
use std::sync::atomic::{AtomicU64, Ordering};

const BINS: usize = 48;
const THREADS_PER_BIN: usize = 8;
const WINDOW: usize = 512;
const PASSES_SCALE: usize = 2;
const BLOCK: u64 = 4096;

struct Ctx {
    data: Vec<f64>,
    passes: Vec<usize>,
    out: Vec<AtomicU64>,
}

fn windowed_sum(ctx: &Ctx, thread: usize, bin: usize) {
    let window = &ctx.data[bin * WINDOW..(bin + 1) * WINDOW];
    let mut acc = 0.0f64;
    for _ in 0..ctx.passes[bin] {
        for &x in window {
            acc += x;
        }
    }
    ctx.out[thread].store(acc.to_bits(), Ordering::Relaxed);
}

fn build_ctx() -> Ctx {
    Ctx {
        data: (0..BINS * WINDOW).map(|i| (i % 97) as f64 * 0.5).collect(),
        passes: (0..BINS).map(|b| (b + 1) * PASSES_SCALE).collect(),
        out: (0..BINS * THREADS_PER_BIN)
            .map(|_| AtomicU64::new(0))
            .collect(),
    }
}

fn forked(policy: StealPolicy) -> ParScheduler<Ctx> {
    let config = SchedulerConfig::builder()
        .block_size(BLOCK)
        .steal_policy(policy)
        .build()
        .expect("power-of-two block");
    let mut sched = ParScheduler::new(config);
    let mut thread = 0usize;
    for bin in 0..BINS {
        for _ in 0..THREADS_PER_BIN {
            sched.fork(
                windowed_sum,
                thread,
                bin,
                Hints::one((bin as u64 * BLOCK).into()),
            );
            thread += 1;
        }
    }
    sched
}

fn bench_steal(c: &mut Criterion) {
    let ctx = build_ctx();
    let threads = (BINS * THREADS_PER_BIN) as u64;
    let mut group = c.benchmark_group("sched_steal");
    group.throughput(Throughput::Elements(threads));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        for (name, policy) in [
            ("none", StealPolicy::None),
            ("random", StealPolicy::Random),
            ("locality", StealPolicy::LocalityAware),
        ] {
            group.bench_function(format!("{name}/w{workers}"), |b| {
                b.iter_batched(
                    || forked(policy),
                    |mut sched| {
                        let stats = sched.run(&ctx, workers);
                        assert_eq!(stats.threads_run, threads);
                        stats
                    },
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_steal);
criterion_main!(benches);

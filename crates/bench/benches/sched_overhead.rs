//! Wall-clock thread-package overhead on the host — the Criterion
//! counterpart of Table 1's micro-benchmark.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use locality_sched::{FifoScheduler, Hints, RunMode, Scheduler, SchedulerConfig, ThreadScheduler};

fn null_thread(_ctx: &mut (), _a: usize, _b: usize) {}

const THREADS: u64 = 65_536;

fn uniform_hints(i: u64) -> Hints {
    let block = 1u64 << 20;
    Hints::two(((i % 16) * block).into(), (((i / 16) % 16) * block).into())
}

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork");
    group.throughput(Throughput::Elements(THREADS));
    group.sample_size(10);

    group.bench_function("locality", |b| {
        let config = SchedulerConfig::default();
        b.iter_batched(
            || Scheduler::<()>::new(config),
            |mut sched| {
                for i in 0..THREADS {
                    sched.fork(null_thread, i as usize, 0, uniform_hints(i));
                }
                sched
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("fifo-baseline", |b| {
        b.iter_batched(
            FifoScheduler::<()>::new,
            |mut sched| {
                for i in 0..THREADS {
                    ThreadScheduler::fork(&mut sched, null_thread, i as usize, 0, uniform_hints(i));
                }
                sched
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_fork_and_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork+run");
    group.throughput(Throughput::Elements(THREADS));
    group.sample_size(10);

    for (name, hash_size) in [("hash16", 16usize), ("hash32", 32)] {
        group.bench_function(name, |b| {
            let config = SchedulerConfig::builder()
                .hash_size(hash_size)
                .build()
                .expect("valid config");
            b.iter(|| {
                let mut sched = Scheduler::<()>::new(config);
                for i in 0..THREADS {
                    sched.fork(null_thread, i as usize, 0, uniform_hints(i));
                }
                sched.run(&mut (), RunMode::Consume)
            });
        });
    }

    group.bench_function("run-only-retained", |b| {
        let config = SchedulerConfig::default();
        let mut sched = Scheduler::<()>::new(config);
        for i in 0..THREADS {
            sched.fork(null_thread, i as usize, 0, uniform_hints(i));
        }
        b.iter(|| sched.run(&mut (), RunMode::Retain));
    });
    group.finish();
}

criterion_group!(benches, bench_fork, bench_fork_and_run);
criterion_main!(benches);

//! Native wall-clock of the Barnes–Hut N-body versions — Table 8 on the
//! host. Because the host's real caches see the same locality the
//! simulated ones do, the threaded version's advantage shows up in real
//! time here too (machine permitting).

use criterion::{criterion_group, criterion_main, Criterion};
use locality_sched::SchedulerConfig;
use memtrace::{AddressSpace, NullSink};
use workloads::nbody;

const BODIES: usize = 20_000;

fn bench_nbody(c: &mut Criterion) {
    let params = nbody::NBodyParams::default();
    let mut group = c.benchmark_group("nbody-native");
    group.sample_size(10);

    group.bench_function("unthreaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, BODIES, 2024);
        data.shuffle_storage_order(3);
        let initial = data.snapshot();
        b.iter(|| {
            data.restore(&initial);
            nbody::unthreaded(&mut data, 1, params, &mut NullSink)
        });
    });

    group.bench_function("threaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, BODIES, 2024);
        data.shuffle_storage_order(3);
        let initial = data.snapshot();
        let config = SchedulerConfig::for_cache(2 << 20, 3).expect("valid config");
        b.iter(|| {
            data.restore(&initial);
            nbody::threaded(&mut data, 1, params, config, &mut NullSink)
        });
    });

    group.bench_function("tree-build-only", |b| {
        let mut space = AddressSpace::new();
        let mut data = nbody::NBodyData::new(&mut space, BODIES, 2024);
        b.iter(|| data.build_tree(&mut NullSink));
    });

    group.finish();
}

criterion_group!(benches, bench_nbody);
criterion_main!(benches);

//! Native (untraced) wall-clock of the five matmul versions — Table 2's
//! comparison on the host instead of 1996 SGI hardware.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use locality_sched::SchedulerConfig;
use memtrace::{AddressSpace, NullSink};
use workloads::matmul;

const N: usize = 160;

fn bench_matmul_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul-native");
    group.throughput(Throughput::Elements((N * N * N) as u64));
    group.sample_size(10);

    group.bench_function("interchanged", |b| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, N, 1);
        b.iter(|| {
            data.reset();
            matmul::interchanged(&mut data, &mut NullSink)
        });
    });

    group.bench_function("transposed", |b| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, N, 1);
        b.iter(|| {
            data.reset();
            matmul::transposed(&mut data, &mut NullSink)
        });
    });

    group.bench_function("tiled-interchanged", |b| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, N, 1);
        let tiles = matmul::TileConfig::default();
        b.iter(|| {
            data.reset();
            matmul::tiled_interchanged(&mut data, tiles, &mut space, &mut NullSink)
        });
    });

    group.bench_function("tiled-transposed", |b| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, N, 1);
        let tiles = matmul::TileConfig::default();
        b.iter(|| {
            data.reset();
            matmul::tiled_transposed(&mut data, tiles, &mut space, &mut NullSink)
        });
    });

    group.bench_function("threaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, N, 1);
        let config = SchedulerConfig::for_cache(2 << 20, 2).expect("valid config");
        b.iter(|| {
            data.reset();
            matmul::threaded(&mut data, config, &mut NullSink)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_matmul_versions);
criterion_main!(benches);

//! Simulator throughput: how many references per second the
//! trace-driven hierarchy sustains. This bounds the cost of the `--full`
//! paper-scale runs (10⁹–10¹⁰ references).

use cachesim::{MachineModel, SimSink};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memtrace::{Addr, TraceSink};

const ACCESSES: u64 = 1_000_000;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("cachesim-throughput");
    group.throughput(Throughput::Elements(ACCESSES));
    group.sample_size(10);

    group.bench_function("sequential-stream", |b| {
        let machine = MachineModel::r8000();
        b.iter(|| {
            let mut sim = SimSink::new(machine.hierarchy());
            for i in 0..ACCESSES {
                sim.read(Addr::new(0x1000_0000 + i * 8), 8);
            }
            sim.finish().l1.misses()
        });
    });

    group.bench_function("l1-resident", |b| {
        let machine = MachineModel::r8000();
        b.iter(|| {
            let mut sim = SimSink::new(machine.hierarchy());
            for i in 0..ACCESSES {
                sim.read(Addr::new(0x1000_0000 + (i * 8) % 8192), 8);
            }
            sim.finish().l1.misses()
        });
    });

    group.bench_function("random-l2-thrash", |b| {
        let machine = MachineModel::r8000();
        b.iter(|| {
            let mut sim = SimSink::new(machine.hierarchy());
            let mut state = 0x9e37_79b9u64;
            for _ in 0..ACCESSES {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                sim.read(Addr::new(0x1000_0000 + (state % (64 << 20))), 8);
            }
            sim.finish().l2.misses()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);

//! Ablations of the scheduler's design choices (DESIGN.md §4): bin
//! tour, symmetric-hint folding, and hash-table size — measured as host
//! wall-clock of fork+run over a realistic hint distribution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use locality_sched::{Hints, RunMode, Scheduler, SchedulerConfig, Tour};

fn null_thread(_ctx: &mut (), _a: usize, _b: usize) {}

const THREADS: u64 = 65_536;

/// Matmul-shaped hints: a 256x256 grid of column-address pairs.
fn grid_hints(i: u64) -> Hints {
    let col = 8u64 << 10;
    let a = 0x1000_0000 + (i % 256) * col;
    let b = 0x2000_0000 + ((i / 256) % 256) * col;
    Hints::two(a.into(), b.into())
}

fn fork_run(config: SchedulerConfig) -> u64 {
    let mut sched = Scheduler::<()>::new(config);
    for i in 0..THREADS {
        sched.fork(null_thread, i as usize, 0, grid_hints(i));
    }
    sched.run(&mut (), RunMode::Consume).threads_run
}

fn bench_tours(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-tour");
    group.throughput(Throughput::Elements(THREADS));
    group.sample_size(10);
    for (name, tour) in [
        ("allocation-order", Tour::AllocationOrder),
        ("sorted-key", Tour::SortedKey),
        ("hilbert", Tour::Hilbert),
        ("morton", Tour::Morton),
        ("random", Tour::Random(7)),
    ] {
        group.bench_function(name, |b| {
            let config = SchedulerConfig::builder()
                .block_size(1 << 20)
                .tour(tour)
                .build()
                .expect("valid config");
            b.iter(|| fork_run(config));
        });
    }
    group.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-symmetric");
    group.throughput(Throughput::Elements(THREADS));
    group.sample_size(10);
    for (name, symmetric) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            let config = SchedulerConfig::builder()
                .block_size(1 << 20)
                .symmetric(symmetric)
                .build()
                .expect("valid config");
            b.iter(|| fork_run(config));
        });
    }
    group.finish();
}

fn bench_hash_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-hash-size");
    group.throughput(Throughput::Elements(THREADS));
    group.sample_size(10);
    for hash_size in [2usize, 8, 16, 32] {
        group.bench_function(format!("hash{hash_size}"), |b| {
            let config = SchedulerConfig::builder()
                .block_size(1 << 20)
                .hash_size(hash_size)
                .build()
                .expect("valid config");
            b.iter(|| fork_run(config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tours, bench_symmetric, bench_hash_size);
criterion_main!(benches);

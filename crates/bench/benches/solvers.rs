//! Native wall-clock of the iterative solvers (PDE and SOR) — Tables 4
//! and 6 on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use locality_sched::SchedulerConfig;
use memtrace::{AddressSpace, NullSink};
use workloads::{pde, sor};

fn bench_pde(c: &mut Criterion) {
    let n = 513;
    let iters = 5;
    let mut group = c.benchmark_group("pde-native");
    group.sample_size(10);

    group.bench_function("regular", |b| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, n, 7);
        b.iter(|| {
            data.reset();
            pde::regular(&mut data, iters, &mut NullSink)
        });
    });
    group.bench_function("cache-conscious", |b| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, n, 7);
        b.iter(|| {
            data.reset();
            pde::cache_conscious(&mut data, iters, &mut NullSink)
        });
    });
    group.bench_function("threaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = pde::PdeData::new(&mut space, n, 7);
        let config = SchedulerConfig::for_cache(2 << 20, 1).expect("valid config");
        b.iter(|| {
            data.reset();
            pde::threaded(&mut data, iters, config, &mut NullSink)
        });
    });
    group.finish();
}

fn bench_sor(c: &mut Criterion) {
    let n = 501;
    let t = 10;
    let mut group = c.benchmark_group("sor-native");
    group.sample_size(10);

    group.bench_function("untiled", |b| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, n, 9);
        let initial = data.snapshot();
        b.iter(|| {
            data.restore(&initial);
            sor::untiled(&mut data, t, &mut NullSink)
        });
    });
    group.bench_function("hand-tiled", |b| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, n, 9);
        let initial = data.snapshot();
        b.iter(|| {
            data.restore(&initial);
            sor::hand_tiled(&mut data, t, sor::PAPER_TILE, &mut NullSink)
        });
    });
    group.bench_function("threaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = sor::SorData::new(&mut space, n, 9);
        let initial = data.snapshot();
        let config = SchedulerConfig::builder()
            .block_size(512 << 10)
            .build()
            .expect("valid config");
        b.iter(|| {
            data.restore(&initial);
            sor::threaded(&mut data, t, config, &mut NullSink)
        });
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions-native");
    group.sample_size(10);

    group.bench_function("spmv-worklist", |b| {
        let mut space = AddressSpace::new();
        let mut data = workloads::spmv::SpmvData::banded(&mut space, 30_000, 64, 6, 9);
        b.iter(|| {
            data.reset();
            workloads::spmv::worklist(&mut data, &mut NullSink)
        });
    });
    group.bench_function("spmv-threaded", |b| {
        let mut space = AddressSpace::new();
        let mut data = workloads::spmv::SpmvData::banded(&mut space, 30_000, 64, 6, 9);
        let config = SchedulerConfig::builder()
            .block_size(512 << 10)
            .build()
            .expect("valid config");
        b.iter(|| {
            data.reset();
            workloads::spmv::threaded(&mut data, config, &mut NullSink)
        });
    });

    for (name, smoother) in [
        ("multigrid-regular", workloads::multigrid::Smoother::Regular),
        (
            "multigrid-cc",
            workloads::multigrid::Smoother::CacheConscious,
        ),
        (
            "multigrid-threaded",
            workloads::multigrid::Smoother::Threaded(
                SchedulerConfig::builder()
                    .block_size(1 << 20)
                    .build()
                    .expect("valid config"),
            ),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut space = AddressSpace::new();
                let mut mg = workloads::multigrid::Multigrid::new(&mut space, 257, 7);
                mg.v_cycle(2, 2, smoother, &mut NullSink);
                mg.checksum()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pde, bench_sor, bench_extensions);
criterion_main!(benches);

//! Golden smoke tests: run the table/figure binaries end to end at
//! `--smoke` scale and snapshot the *shape* of their output — row and
//! column counts and numeric sanity — without pinning host-dependent
//! timing values.

use std::process::Command;

fn run_smoke(bin: &str) -> String {
    let output = Command::new(bin)
        .arg("--smoke")
        .output()
        .unwrap_or_else(|err| panic!("spawning {bin}: {err}"));
    assert!(
        output.status.success(),
        "{bin} --smoke failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("binaries emit UTF-8")
}

/// Every whitespace-separated numeric token in `line` after the first
/// `skip` tokens, asserted finite.
fn finite_numbers(line: &str, skip: usize) -> Vec<f64> {
    line.split_whitespace()
        .skip(skip)
        .map(|tok| {
            let v: f64 = tok
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric cell {tok:?} in {line:?}"));
            assert!(v.is_finite(), "non-finite cell in {line:?}");
            v
        })
        .collect()
}

#[test]
fn table1_smoke_output_has_the_papers_shape() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_table1"));
    assert!(
        stdout.contains("Table 1: thread overhead"),
        "missing title:\n{stdout}"
    );
    assert!(!stdout.contains("NaN"), "NaN in output:\n{stdout}");

    let lines: Vec<&str> = stdout.lines().collect();
    // One measured row per paper row, in the paper's order.
    for label in ["Fork", "Run", "Total"] {
        let row = lines
            .iter()
            .find(|l| l.split_whitespace().next() == Some(label))
            .unwrap_or_else(|| panic!("missing row {label}:\n{stdout}"));
        // Label + host + paper R8000 + paper R10000.
        let cells = finite_numbers(row, 1);
        assert_eq!(cells.len(), 3, "row {label}: {row:?}");
        assert!(cells.iter().all(|&v| v > 0.0), "row {label}: {row:?}");
    }
    // The modeled L2-miss row has no host measurement.
    let miss = lines
        .iter()
        .find(|l| l.starts_with("L2 miss"))
        .unwrap_or_else(|| panic!("missing L2 miss row:\n{stdout}"));
    assert!(miss.split_whitespace().any(|tok| tok == "-"), "{miss:?}");
    // Footer names the thread count.
    assert!(stdout.contains("null threads"), "{stdout}");
}

#[test]
fn figure4_smoke_output_has_the_papers_shape() {
    let stdout = run_smoke(env!("CARGO_BIN_EXE_figure4"));
    assert!(
        stdout.contains("Figure 4: execution time vs block dimension size"),
        "missing title:\n{stdout}"
    );
    assert!(!stdout.contains("NaN"), "NaN in output:\n{stdout}");

    let lines: Vec<&str> = stdout.lines().collect();
    let header = lines
        .iter()
        .find(|l| l.starts_with("block"))
        .unwrap_or_else(|| panic!("missing header:\n{stdout}"));
    // "block (full-equiv)" plus the four workload series.
    for series in ["matmul", "pde", "sor", "nbody"] {
        assert!(header.contains(series), "{header:?}");
    }

    // The paper sweeps 64K..8M: eight block-size rows, one modeled
    // time per series, all positive and finite.
    let expected_blocks = ["64K", "128K", "256K", "512K", "1M", "2M", "4M", "8M"];
    let mut seen = 0;
    for (i, block) in expected_blocks.iter().enumerate() {
        let row = lines
            .iter()
            .find(|l| l.split_whitespace().next() == Some(*block))
            .unwrap_or_else(|| panic!("missing block row {block}:\n{stdout}"));
        let cells = finite_numbers(row, 1);
        assert_eq!(cells.len(), 4, "block {block}: {row:?}");
        assert!(cells.iter().all(|&v| v > 0.0), "block {block}: {row:?}");
        seen = i + 1;
    }
    assert_eq!(seen, 8);

    // One ASCII sparkline per series, annotated with its min and max.
    for series in ["matmul", "pde", "sor", "nbody"] {
        let spark = lines
            .iter()
            .find(|l| l.trim_start().starts_with(series) && l.contains('['))
            .unwrap_or_else(|| panic!("missing sparkline for {series}:\n{stdout}"));
        assert!(spark.contains("(min") && spark.contains("max"), "{spark:?}");
    }
}

//! Tests of the reproduction harness itself: the paper constants are
//! internally consistent, the suites produce the expected version
//! lists, and the smoke-scale experiments have the paper's shape.

use repro::{experiments, paper, ExpScale};

#[test]
fn paper_constants_are_internally_consistent() {
    // Table 1: total = fork + run, per machine.
    assert!(
        (paper::table1::TOTAL_US.0 - paper::table1::FORK_US.0 - paper::table1::RUN_US.0).abs()
            < 1e-9
    );
    assert!(
        (paper::table1::TOTAL_US.1 - paper::table1::FORK_US.1 - paper::table1::RUN_US.1).abs()
            < 1e-9
    );
    // Thread overhead beats an L2 miss by less than 2x (the paper's
    // economics: one saved miss pays for most of a thread).
    assert!(paper::table1::TOTAL_US.0 < 2.0 * paper::table1::L2_MISS_US.0);

    // Miss tables: compulsory + capacity + conflict == misses.
    let check3 = |rows: &[(&str, u64, u64, u64)]| {
        let get = |name: &str, col: usize| {
            rows.iter()
                .find(|r| r.0 == name)
                .map(|r| match col {
                    0 => r.1,
                    1 => r.2,
                    _ => r.3,
                })
                .expect("row exists")
        };
        for col in 0..3 {
            let total = get("L2 misses", col);
            let parts =
                get("L2 compulsory", col) + get("L2 capacity", col) + get("L2 conflict", col);
            // The paper's tables round to thousands; allow 1% slack.
            assert!(
                (total as i64 - parts as i64).unsigned_abs() <= total / 100 + 2,
                "column {col}: {total} vs {parts}"
            );
        }
    };
    check3(&paper::table3::ROWS[..7]);
    check3(&paper::table5::ROWS);
    check3(&paper::table7::ROWS);

    // Timing tables: every version has positive times on both machines.
    for rows in [
        &paper::table2::ROWS[..],
        &paper::table4::ROWS[..],
        &paper::table6::ROWS[..],
    ] {
        for (name, r8, r10) in rows {
            assert!(*r8 > 0.0 && *r10 > 0.0, "{name}");
        }
    }
}

#[test]
fn suites_produce_the_papers_version_lists() {
    let scale = ExpScale::smoke();
    let (r8000, _) = experiments::machines(scale.matmul_factor);
    let names: Vec<String> = experiments::matmul_suite(&scale, &r8000)
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    assert_eq!(
        names,
        vec![
            "matmul/interchanged",
            "matmul/transposed",
            "matmul/tiled-interchanged",
            "matmul/tiled-transposed",
            "matmul/threaded",
        ]
    );
}

#[test]
fn smoke_scale_tables_have_the_papers_shape() {
    let scale = ExpScale::smoke();

    // Table 3 shape: untiled >> threaded >= tiled-ish on L2 misses.
    let rows = repro::table3(&scale);
    assert_eq!(rows.len(), 3);
    let untiled = &rows[0].report;
    let tiled = &rows[1].report;
    let threaded = &rows[2].report;
    assert!(untiled.l2.misses() > 2 * threaded.l2.misses());
    assert!(untiled.l2.misses() > 2 * tiled.l2.misses());
    assert!(untiled.classes.capacity > untiled.classes.conflict);

    // Table 7 shape: both transformations kill SOR capacity misses.
    // (At smoke scale the tiled version's O(n·s) band no longer fits
    // the over-shrunk L2, so its reduction is weaker than at default
    // scale — see the scaling_consistency tests.)
    let rows = repro::table7(&scale);
    let untiled = &rows[0].report;
    let tiled = &rows[1].report;
    let threaded = &rows[2].report;
    assert!(untiled.classes.capacity > 3 * tiled.classes.capacity.max(1));
    assert!(untiled.classes.capacity > 10 * threaded.classes.capacity.max(1));

    // Figure 4 shape: oversized blocks degrade matmul.
    let fig = repro::figure4(&scale);
    let matmul_series = &fig
        .series
        .iter()
        .find(|(n, _)| n == "matmul")
        .expect("series")
        .1;
    let best = matmul_series.iter().copied().fold(f64::MAX, f64::min);
    let last = *matmul_series.last().expect("nonempty");
    assert!(
        last > 1.2 * best,
        "no knee: best {best}, 8M-equivalent {last}"
    );
}

#[test]
fn scale_flags_select_presets() {
    use repro::scale::scale_from_args;
    let default = scale_from_args(Vec::<String>::new());
    assert_eq!(default.matmul_n, ExpScale::default_scaled().matmul_n);
    let full = scale_from_args(vec!["--full".to_owned()]);
    assert_eq!(full.matmul_n, 1024);
    let smoke = scale_from_args(vec!["x".to_owned(), "--smoke".to_owned()]);
    assert_eq!(smoke.matmul_n, ExpScale::smoke().matmul_n);
}

#[test]
fn table1_thread_overhead_is_far_below_a_paper_l2_miss() {
    // The package's economics on a modern host: forking+running a
    // thread costs well under the paper's 1.06 µs L2 miss.
    let result = repro::table1(50_000);
    assert!(
        result.total_ns() < 1060.0,
        "thread overhead {} ns",
        result.total_ns()
    );
}

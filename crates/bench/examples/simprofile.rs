//! Where does simulation time go? Times one workload against a
//! no-op sink (workload floor), the exhaustive hierarchy, and the
//! fast-path hierarchy.

use cachesim::SimSink;
use memtrace::{AddressSpace, CountingSink};
use repro::experiments::machines;
use repro::ExpScale;
use std::time::Instant;
use workloads::matmul;

fn main() {
    let scale = ExpScale::default_scaled();
    let machine = machines(scale.matmul_factor).0;
    let n = scale.matmul_n;

    let time = |label: &str, f: &mut dyn FnMut()| {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_nanos() as u64);
        }
        println!("{label:24} {:9.2} ms", best as f64 / 1e6);
    };

    time("counting (floor)", &mut || {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, n, 42);
        let mut sink = CountingSink::new();
        matmul::interchanged(&mut data, &mut sink);
        std::hint::black_box(sink.reads());
    });
    time("sim slow", &mut || {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, n, 42);
        let mut sim = SimSink::new(machine.hierarchy());
        sim.set_fast_path(false);
        matmul::interchanged(&mut data, &mut sim);
        std::hint::black_box(sim.report().l1.misses());
    });
    time("sim fast", &mut || {
        let mut space = AddressSpace::new();
        let mut data = matmul::MatMulData::new(&mut space, n, 42);
        let mut sim = SimSink::new(machine.hierarchy());
        matmul::interchanged(&mut data, &mut sim);
        std::hint::black_box(sim.report().l1.misses());
    });
}

//! Property-based tests of the locality scheduler's invariants.

use locality_sched::{
    Addr, BinPolicy, FifoScheduler, Hierarchical, Hints, PaperBlockHash, RandomScheduler, RunMode,
    Scheduler, SchedulerConfig, SingleBin, ThreadScheduler, TopologyPolicy, Tour,
};
use proptest::prelude::*;

type Log = Vec<(usize, usize)>;

fn record(log: &mut Log, a: usize, b: usize) {
    log.push((a, b));
}

/// Arbitrary hint tuples over a bounded address space.
fn arb_hints() -> impl Strategy<Value = Hints> {
    let addr = 0u64..(1 << 26);
    prop_oneof![
        Just(Hints::none()),
        addr.clone().prop_map(|a| Hints::one(Addr::new(a))),
        (addr.clone(), addr.clone()).prop_map(|(a, b)| Hints::two(Addr::new(a), Addr::new(b))),
        (addr.clone(), addr.clone(), addr.clone()).prop_map(|(a, b, c)| Hints::three(
            Addr::new(a),
            Addr::new(b),
            Addr::new(c)
        )),
        (addr.clone(), addr.clone(), addr.clone(), addr).prop_map(|(a, b, c, d)| {
            Hints::four(Addr::new(a), Addr::new(b), Addr::new(c), Addr::new(d))
        }),
    ]
}

fn arb_policy() -> impl Strategy<Value = locality_sched::StealPolicy> {
    use locality_sched::StealPolicy;
    prop_oneof![
        Just(StealPolicy::None),
        Just(StealPolicy::Random),
        Just(StealPolicy::LocalityAware),
        Just(StealPolicy::TopologyAware),
    ]
}

fn arb_tour() -> impl Strategy<Value = Tour> {
    prop_oneof![
        Just(Tour::AllocationOrder),
        Just(Tour::SortedKey),
        Just(Tour::Hilbert),
        Just(Tour::Morton),
        any::<u64>().prop_map(Tour::Random),
    ]
}

fn arb_config() -> impl Strategy<Value = SchedulerConfig> {
    (6u32..24, 1usize..6, any::<bool>(), arb_tour()).prop_map(
        |(block_log2, hash_log2, symmetric, tour)| {
            SchedulerConfig::builder()
                .block_size(1 << block_log2)
                .hash_size(1 << hash_log2)
                .symmetric(symmetric)
                .tour(tour)
                .build()
                .expect("generated configs are valid")
        },
    )
}

/// FNV-1a digest of `block_coords` over a deterministic pseudo-random
/// hint set, captured from the pre-refactor mapping: the policy
/// extraction must not move a single bin key.
#[test]
fn block_coords_digest_matches_pre_refactor_golden() {
    for (symmetric, golden) in [
        (false, 0xb241_e70e_f124_5edd_u64),
        (true, 0x1b46_4ef1_f4fe_c907),
    ] {
        let cfg = SchedulerConfig::builder()
            .block_size(1 << 16)
            .symmetric(symmetric)
            .build()
            .unwrap();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..500 {
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let a = next() % (1 << 30);
            let b = next() % (1 << 30);
            let c = next() % (1 << 30);
            let hints = Hints::three(Addr::new(a), Addr::new(b), Addr::new(c));
            for v in cfg.block_coords(hints) {
                digest ^= v;
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        assert_eq!(digest, golden, "symmetric={symmetric}");
    }
}

proptest! {
    /// Every forked thread runs exactly once, under any configuration,
    /// tour, and hint mixture.
    #[test]
    fn every_thread_runs_exactly_once(
        config in arb_config(),
        hints in prop::collection::vec(arb_hints(), 0..300),
    ) {
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        for (i, h) in hints.iter().enumerate() {
            sched.fork(record, i, 0, *h);
        }
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        prop_assert_eq!(stats.threads_run, hints.len() as u64);
        let mut ids: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..hints.len()).collect::<Vec<_>>());
    }

    /// Threads sharing a bin run contiguously: for any two threads with
    /// identical hints, no thread with a different bin runs between
    /// them.
    #[test]
    fn identical_hints_run_contiguously(
        config in arb_config(),
        hints in prop::collection::vec(arb_hints(), 1..100),
        picks in prop::collection::vec(0usize..100, 2..50),
    ) {
        // Fork threads whose hints repeat (tagged by hint index).
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        let assignments: Vec<usize> =
            picks.iter().map(|&p| p % hints.len()).collect();
        for (i, &which) in assignments.iter().enumerate() {
            sched.fork(record, i, which, hints[which]);
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Consume);
        // Threads sharing a *block key* (bin) must form one contiguous
        // run in the log — the scheduler drains each bin completely.
        for target in 0..hints.len() {
            let target_key = config.block_coords(hints[target]);
            let positions: Vec<usize> = log
                .iter()
                .enumerate()
                .filter(|(_, &(_, w))| config.block_coords(hints[w]) == target_key)
                .map(|(pos, _)| pos)
                .collect();
            if let (Some(&first), Some(&last)) = (positions.first(), positions.last()) {
                prop_assert_eq!(
                    last - first + 1,
                    positions.len(),
                    "bin {:?} scattered", target_key
                );
            }
        }
    }

    /// Retained schedules re-run identically.
    #[test]
    fn retain_is_deterministic(
        config in arb_config(),
        hints in prop::collection::vec(arb_hints(), 0..100),
    ) {
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        for (i, h) in hints.iter().enumerate() {
            sched.fork(record, i, 0, *h);
        }
        let mut log = Log::new();
        sched.run(&mut log, RunMode::Retain);
        let first: Log = log.clone();
        log.clear();
        sched.run(&mut log, RunMode::Consume);
        prop_assert_eq!(first, log);
    }

    /// Symmetric folding: mirrored two-dimensional hints land in the
    /// same bin (§2.3's 50% bin saving), for any pair of addresses.
    #[test]
    fn symmetric_folding_merges_mirrored_pairs(
        a in 0u64..(1 << 30),
        b in 0u64..(1 << 30),
        block_log2 in 6u32..20,
    ) {
        let config = SchedulerConfig::builder()
            .block_size(1 << block_log2)
            .symmetric(true)
            .build()
            .unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        sched.fork(record, 0, 0, Hints::two(Addr::new(a), Addr::new(b)));
        sched.fork(record, 1, 0, Hints::two(Addr::new(b), Addr::new(a)));
        prop_assert_eq!(sched.bins(), 1);
    }

    /// Block assignment matches the arithmetic definition: hints whose
    /// per-dimension blocks all match share a bin; hints differing in
    /// any dimension's block do not (symmetric folding off).
    #[test]
    fn bin_sharing_matches_block_arithmetic(
        a in 0u64..(1 << 26),
        b in 0u64..(1 << 26),
        block_log2 in 6u32..20,
    ) {
        let block = 1u64 << block_log2;
        let config = SchedulerConfig::builder().block_size(block).build().unwrap();
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        sched.fork(record, 0, 0, Hints::one(Addr::new(a)));
        sched.fork(record, 1, 0, Hints::one(Addr::new(b)));
        let same_block = (a / block) == (b / block);
        prop_assert_eq!(sched.bins(), if same_block { 1 } else { 2 });
    }

    /// All scheduler policies run the same thread multiset.
    #[test]
    fn baselines_run_the_same_threads(
        hints in prop::collection::vec(arb_hints(), 0..100),
        seed in any::<u64>(),
    ) {
        let mut reference: Vec<usize> = (0..hints.len()).collect();
        reference.sort_unstable();

        let mut locality: Scheduler<Log> = Scheduler::with_defaults();
        let mut fifo: FifoScheduler<Log> = FifoScheduler::new();
        let mut random: RandomScheduler<Log> = RandomScheduler::new(seed);
        for (i, h) in hints.iter().enumerate() {
            ThreadScheduler::fork(&mut locality, record, i, 0, *h);
            fifo.fork(record, i, 0, *h);
            random.fork(record, i, 0, *h);
        }
        for sched in [
            &mut locality as &mut dyn ThreadScheduler<Log>,
            &mut fifo,
            &mut random,
        ] {
            let mut log = Log::new();
            sched.run(&mut log, RunMode::Consume);
            let mut ids: Vec<usize> = log.iter().map(|&(a, _)| a).collect();
            ids.sort_unstable();
            prop_assert_eq!(&ids, &reference);
        }
    }

    /// The parallel scheduler runs every thread exactly once for any
    /// worker count, steal policy, and hint distribution — the
    /// workers-racing-and-stealing analogue of
    /// `every_thread_runs_exactly_once`.
    #[test]
    fn parallel_runs_every_thread_once(
        hints in prop::collection::vec(arb_hints(), 1..200),
        workers in 1usize..9,
        policy in arb_policy(),
    ) {
        use locality_sched::ParScheduler;
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Ctx {
            counts: Vec<AtomicU64>,
        }
        fn bump(ctx: &Ctx, i: usize, _j: usize) {
            ctx.counts[i].fetch_add(1, Ordering::Relaxed);
        }

        let config = SchedulerConfig::builder().steal_policy(policy).build().unwrap();
        let mut sched: ParScheduler<Ctx> = ParScheduler::new(config);
        for (i, h) in hints.iter().enumerate() {
            sched.fork(bump, i, 0, *h);
        }
        let ctx = Ctx {
            counts: (0..hints.len()).map(|_| AtomicU64::new(0)).collect(),
        };
        let stats = sched.run(&ctx, workers);
        prop_assert_eq!(stats.threads_run, hints.len() as u64);
        for (i, c) in ctx.counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "thread {} ran wrong count", i);
        }
    }

    /// Per-worker steal counters stay coherent for any run: the
    /// per-worker execution counts sum to the run totals, a worker
    /// never succeeds more often than it attempts, and under
    /// `StealPolicy::None` nobody attempts (or is parked) at all.
    #[test]
    fn steal_counters_are_consistent(
        hints in prop::collection::vec(arb_hints(), 1..200),
        workers in 1usize..9,
        policy in arb_policy(),
    ) {
        use locality_sched::{ParScheduler, StealPolicy};

        fn nop(_ctx: &(), _i: usize, _j: usize) {}

        let config = SchedulerConfig::builder().steal_policy(policy).build().unwrap();
        let mut sched: ParScheduler<()> = ParScheduler::new(config);
        for (i, h) in hints.iter().enumerate() {
            sched.fork(nop, i, 0, *h);
        }
        let report = sched.run_report(&(), workers);
        prop_assert_eq!(report.policy, policy);
        prop_assert_eq!(report.workers, workers);
        prop_assert_eq!(report.stats.workers().len(), workers);
        let threads: u64 = report.stats.workers().iter().map(|w| w.threads_executed).sum();
        let bins: u64 = report.stats.workers().iter().map(|w| w.bins_executed).sum();
        prop_assert_eq!(threads, report.run.threads_run);
        prop_assert_eq!(bins, report.run.bins_visited as u64);
        for w in report.stats.workers() {
            prop_assert!(
                w.steals_succeeded <= w.steals_attempted,
                "worker succeeded {} of {} attempts",
                w.steals_succeeded,
                w.steals_attempted
            );
        }
        if policy == StealPolicy::None {
            prop_assert_eq!(report.stats.steals_attempted(), 0);
            prop_assert_eq!(report.stats.steals_succeeded(), 0);
            for w in report.stats.workers() {
                prop_assert_eq!(w.parked_ns, 0);
            }
        }
        if workers == 1 {
            // A lone worker has no victims: it owns every bin.
            prop_assert_eq!(report.stats.steals_succeeded(), 0);
        }
    }

    /// Phased scheduling never lets a later phase overtake an earlier
    /// one, while still binning within phases.
    #[test]
    fn phases_never_interleave(
        hints in prop::collection::vec(arb_hints(), 1..60),
        phases in prop::collection::vec(0u32..5, 1..60),
    ) {
        use locality_sched::PhasedScheduler;
        let mut sched: PhasedScheduler<Log> = PhasedScheduler::new(SchedulerConfig::default());
        let n = hints.len().min(phases.len());
        for i in 0..n {
            sched.fork(phases[i], record, phases[i] as usize, i, hints[i]);
        }
        let mut log = Log::new();
        let stats = sched.run(&mut log, RunMode::Consume);
        prop_assert_eq!(stats.threads_run, n as u64);
        let seen: Vec<usize> = log.iter().map(|&(p, _)| p).collect();
        prop_assert!(seen.windows(2).all(|w| w[0] <= w[1]), "{:?}", seen);
    }

    /// Any policy reporting `symmetric() == true` is invariant under
    /// permutation of its hint addresses: mirrored (or arbitrarily
    /// reordered) hints land in the same bin. This is the trait-level
    /// restatement of the paper's §2.3 symmetric folding, checked for
    /// every shipped symmetric policy.
    #[test]
    fn symmetric_policies_are_hint_permutation_invariant(
        addr_tuple in (0u64..(1 << 30), 0u64..(1 << 30), 0u64..(1 << 30), 0u64..(1 << 30)),
        seed in any::<u64>(),
        block_log2 in 6u32..20,
        sub_log2 in 3u32..6,
    ) {
        fn permuted(addrs: [u64; 4], seed: u64) -> [u64; 4] {
            let mut rest = addrs.to_vec();
            let mut out = [0u64; 4];
            let mut s = seed;
            for slot in &mut out {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *slot = rest.remove((s >> 33) as usize % rest.len());
            }
            out
        }

        fn check<P: BinPolicy>(mut policy: P, a: [u64; 4], b: [u64; 4]) {
            assert!(policy.symmetric(), "{policy:?} must report symmetric");
            let key = |p: &mut P, v: [u64; 4]| {
                p.bin_key(Hints::four(
                    Addr::new(v[0]),
                    Addr::new(v[1]),
                    Addr::new(v[2]),
                    Addr::new(v[3]),
                ))
            };
            assert_eq!(key(&mut policy, a), key(&mut policy, b), "{policy:?}");
        }

        let addrs = [addr_tuple.0, addr_tuple.1, addr_tuple.2, addr_tuple.3];
        let other = permuted(addrs, seed);
        let block = 1u64 << block_log2;
        check(
            PaperBlockHash::new([block; 4], true).unwrap(),
            addrs,
            other,
        );
        check(
            Hierarchical::uniform(block >> sub_log2, block, true).unwrap(),
            addrs,
            other,
        );
        check(
            TopologyPolicy::uniform(&[block >> sub_log2, block], true).unwrap(),
            addrs,
            other,
        );
        check(SingleBin, addrs, other);
    }

    /// A two-rung [`TopologyPolicy`] ladder IS the two-level
    /// [`Hierarchical`] policy: identical bin keys, identical ancestor
    /// ladder, and an identical drain order under any configuration,
    /// tour, and hint mixture. This is what licenses `Hierarchical` to
    /// remain a thin alias for the depth-2 case.
    #[test]
    fn topology_depth2_matches_hierarchical(
        config in arb_config(),
        hints in prop::collection::vec(arb_hints(), 0..150),
        sub_log2 in 3u32..10,
        block_log2 in 10u32..24,
        symmetric in any::<bool>(),
    ) {
        let (sub, block) = (1u64 << sub_log2, 1u64 << block_log2);
        let mut hier = Hierarchical::uniform(sub, block, symmetric).unwrap();
        let mut tree = TopologyPolicy::uniform(&[sub, block], symmetric).unwrap();
        prop_assert_eq!(BinPolicy::depth(&hier), 2);
        prop_assert_eq!(BinPolicy::depth(&tree), 2);
        for h in &hints {
            let key = hier.bin_key(*h);
            prop_assert_eq!(key, tree.bin_key(*h));
            for level in 0..2 {
                prop_assert_eq!(
                    hier.ancestor_key(key, level),
                    tree.ancestor_key(key, level),
                    "level {}", level
                );
            }
        }
        let mut a: Scheduler<Log, _> = Scheduler::with_policy(config, hier);
        let mut b: Scheduler<Log, _> = Scheduler::with_policy(config, tree);
        for (i, h) in hints.iter().enumerate() {
            a.fork(record, i, 0, *h);
            b.fork(record, i, 0, *h);
        }
        let mut log_a = Log::new();
        let mut log_b = Log::new();
        a.run(&mut log_a, RunMode::Consume);
        b.run(&mut log_b, RunMode::Consume);
        prop_assert_eq!(log_a, log_b, "drain order diverged");
    }

    /// [`PaperBlockHash`] computes exactly the pre-refactor hints→bin
    /// arithmetic — per-dimension address shift, then (symmetric only)
    /// a descending coordinate sort — and agrees with the public
    /// [`SchedulerConfig::block_coords`] on every hint shape.
    #[test]
    fn paper_block_hash_matches_pre_refactor_mapping(
        hints in arb_hints(),
        block_log2 in 6u32..24,
        symmetric in any::<bool>(),
    ) {
        let mut expect = [0u64; 4];
        for (dim, coord) in expect.iter_mut().enumerate() {
            *coord = hints.get(dim).raw() >> block_log2;
        }
        if symmetric {
            expect.sort_unstable_by(|a, b| b.cmp(a));
        }
        let mut policy =
            PaperBlockHash::new([1u64 << block_log2; 4], symmetric).unwrap();
        prop_assert_eq!(policy.bin_key(hints), expect);
        let config = SchedulerConfig::builder()
            .block_size(1 << block_log2)
            .symmetric(symmetric)
            .build()
            .unwrap();
        prop_assert_eq!(config.block_coords(hints), expect);
    }

    /// Scheduler stats are consistent with what fork recorded.
    #[test]
    fn stats_are_consistent(
        config in arb_config(),
        hints in prop::collection::vec(arb_hints(), 0..200),
    ) {
        let mut sched: Scheduler<Log> = Scheduler::new(config);
        for (i, h) in hints.iter().enumerate() {
            sched.fork(record, i, 0, *h);
        }
        let stats = sched.stats();
        prop_assert_eq!(stats.threads(), hints.len() as u64);
        prop_assert_eq!(stats.bins(), sched.bins());
        prop_assert_eq!(
            stats.threads_per_bin().iter().sum::<u64>(),
            hints.len() as u64
        );
        if !hints.is_empty() {
            prop_assert!(stats.max_threads_per_bin() >= 1);
            prop_assert!(stats.min_threads_per_bin() >= 1);
        }
    }
}

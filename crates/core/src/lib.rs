//! Fine-grained thread scheduling for cache locality.
//!
//! This crate is a Rust implementation of the thread package described
//! in *Thread Scheduling for Cache Locality* (Philbin, Edler, Anshus,
//! Douglas, Li — ASPLOS VII, 1996). The idea: decompose a sequential
//! program into very fine-grained, independent, run-to-completion
//! threads, attach one to three *address hints* to each thread at fork
//! time, and let the scheduler reorder execution so that threads whose
//! data shares a region of the address space run back-to-back. When the
//! per-bin working set fits in the second-level cache, the reordering
//! eliminates most L2 *capacity* misses — recovering most of the benefit
//! of loop tiling without static analysis, which makes the technique
//! applicable to irregular and dynamic programs (the paper's N-body
//! benchmark) where compilers cannot tile.
//!
//! # The algorithm (paper §2.3)
//!
//! Each thread's k hint addresses place it at a point in a k-dimensional
//! space. The space is divided into blocks whose dimension sizes sum to
//! (at most) the cache size; all threads falling into the same block are
//! placed in the same *bin*, bins are kept in a hash table and chained
//! onto a *ready list* in allocation order, and running the threads
//! walks the ready list bin by bin, draining each bin completely before
//! moving on.
//!
//! # Mapping from the paper's C interface
//!
//! | Paper                                  | This crate                          |
//! |----------------------------------------|-------------------------------------|
//! | `th_init(blocksize, hashsize)`         | [`SchedulerConfig`] (builder)       |
//! | `th_fork(f, a1, a2, h1, h2, h3)`       | [`Scheduler::fork`] with [`Hints`]  |
//! | `th_run(keep)`                         | [`Scheduler::run`] with [`RunMode`] |
//!
//! The scheduler is generic over a *context* type `C` passed by
//! exclusive reference to every thread body: `fn(&mut C, usize, usize)`.
//! The context carries whatever the threads operate on (matrices, trace
//! sinks, …), which replaces the global state the C version relied on
//! while keeping thread records two words of arguments, exactly as
//! compact as the paper's.
//!
//! # Examples
//!
//! Threaded 4×4 matrix multiply from paper §2.4 — fork one thread per
//! dot product, hinted by the two column addresses it reads:
//!
//! ```
//! use locality_sched::{Hints, RunMode, Scheduler, SchedulerConfig};
//!
//! struct Ctx { sum: usize }
//! // The "dot product" body: just records which (i, j) it computed.
//! fn dot(ctx: &mut Ctx, i: usize, j: usize) { ctx.sum += i * 4 + j; }
//!
//! // Cache of 4 "vectors" of 32 bytes; block dimension = half of that.
//! let config = SchedulerConfig::builder().block_size(64).build()?;
//! let mut sched = Scheduler::new(config);
//! for i in 0..4usize {
//!     for j in 0..4usize {
//!         let a_col = 0x1000 + (i as u64) * 32; // &A[1, i]
//!         let b_col = 0x2000 + (j as u64) * 32; // &B[1, j]
//!         sched.fork(dot, i, j, Hints::two(a_col.into(), b_col.into()));
//!     }
//! }
//! let mut ctx = Ctx { sum: 0 };
//! let stats = sched.run(&mut ctx, RunMode::Consume);
//! assert_eq!(stats.threads_run, 16);
//! assert_eq!(ctx.sum, (0..16).sum());
//! # Ok::<(), locality_sched::ConfigError>(())
//! ```

mod baseline;
mod closure;
mod config;
mod engine;
mod hint;
mod parallel;
mod phased;
mod policy;
mod scheduler;
mod stats;
mod table;
mod tour;

pub use baseline::{FifoScheduler, RandomScheduler};
pub use closure::ClosureScheduler;
pub use config::{
    ConfigError, EvictionPolicy, SchedulerConfig, SchedulerConfigBuilder, StealPolicy,
};
pub use engine::PACKAGE_TRACE_BASE;
pub use hint::{Hints, MAX_DIMS};
pub use parallel::{ParRunReport, ParScheduler, ParThreadFn};
pub use phased::PhasedScheduler;
pub use policy::{
    BinPolicy, Hierarchical, PaperBlockHash, SingleBin, TopologyPolicy, UniqueBin, MAX_LEVELS,
};
pub use scheduler::{RunMode, Scheduler, ThreadFn, ThreadScheduler};
pub use stats::{RunStats, SchedulerStats, WorkerStats};
pub use tour::Tour;

/// Hint addresses are virtual addresses, shared with the tracing crate.
pub use memtrace::Addr;

//! Scheduling statistics.

use std::fmt;

/// What one [`run`](crate::Scheduler::run) executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Threads executed.
    pub threads_run: u64,
    /// Non-empty bins visited.
    pub bins_visited: usize,
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads in {} bins",
            self.threads_run, self.bins_visited
        )
    }
}

/// What one [`ParScheduler`](crate::ParScheduler) worker did during a
/// parallel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Bins this worker drained to completion.
    pub bins_executed: u64,
    /// Threads this worker executed.
    pub threads_executed: u64,
    /// Steal attempts (one per victim inspected with intent to steal).
    pub steals_attempted: u64,
    /// Steal attempts that transferred at least one bin.
    pub steals_succeeded: u64,
    /// Wall-clock nanoseconds spent executing thread bodies. On a host
    /// with at least as many idle cores as workers, the maximum across
    /// workers approximates the run's critical path (makespan); on an
    /// oversubscribed host it also counts time the worker spent
    /// descheduled mid-bin, so treat it as an upper bound there.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent out of work (searching for victims
    /// or giving up), as opposed to executing thread bodies.
    pub parked_ns: u64,
}

impl fmt::Display for WorkerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads in {} bins, {}/{} steals, busy {} ns, parked {} ns",
            self.threads_executed,
            self.bins_executed,
            self.steals_succeeded,
            self.steals_attempted,
            self.busy_ns,
            self.parked_ns
        )
    }
}

/// Distribution of scheduled threads over bins.
///
/// The paper reports these for every benchmark, e.g. "the threaded
/// version creates 1,048,576 threads distributed in 81 bins for an
/// average of 12,945 threads per bin. The distribution of the threads
/// in the bins was quite uniform." (§4.2)
///
/// After a parallel run
/// ([`ParScheduler::run_report`](crate::ParScheduler::run_report)), the
/// stats additionally carry one [`WorkerStats`] entry per worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    per_bin: Vec<u64>,
    per_worker: Vec<WorkerStats>,
}

impl SchedulerStats {
    pub(crate) fn from_bin_counts(per_bin: Vec<u64>) -> Self {
        SchedulerStats {
            per_bin,
            per_worker: Vec::new(),
        }
    }

    pub(crate) fn set_workers(&mut self, per_worker: Vec<WorkerStats>) {
        self.per_worker = per_worker;
    }

    /// Per-worker execution counters, one entry per worker of the run
    /// that produced these stats (empty for a sequential schedule or
    /// before any run).
    pub fn workers(&self) -> &[WorkerStats] {
        &self.per_worker
    }

    /// Total steal attempts across workers.
    pub fn steals_attempted(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals_attempted).sum()
    }

    /// Total successful steals across workers.
    pub fn steals_succeeded(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals_succeeded).sum()
    }

    /// The run's critical path under ideal parallel execution: the
    /// maximum [`busy_ns`](WorkerStats::busy_ns) across workers (0
    /// with no workers recorded).
    pub fn makespan_ns(&self) -> u64 {
        self.per_worker.iter().map(|w| w.busy_ns).max().unwrap_or(0)
    }

    /// Total scheduled threads.
    pub fn threads(&self) -> u64 {
        self.per_bin.iter().sum()
    }

    /// Number of allocated bins.
    pub fn bins(&self) -> usize {
        self.per_bin.len()
    }

    /// Thread count of each bin, in allocation order.
    pub fn threads_per_bin(&self) -> &[u64] {
        &self.per_bin
    }

    /// Mean threads per bin (0 if no bins).
    pub fn avg_threads_per_bin(&self) -> f64 {
        if self.per_bin.is_empty() {
            0.0
        } else {
            self.threads() as f64 / self.per_bin.len() as f64
        }
    }

    /// Largest bin (0 if no bins).
    pub fn max_threads_per_bin(&self) -> u64 {
        self.per_bin.iter().copied().max().unwrap_or(0)
    }

    /// Smallest bin (0 if no bins).
    pub fn min_threads_per_bin(&self) -> u64 {
        self.per_bin.iter().copied().min().unwrap_or(0)
    }

    /// Coefficient of variation of the bin sizes (standard deviation ÷
    /// mean; 0 for perfectly uniform distributions). The paper
    /// contrasts matmul's "quite uniform" distribution with N-body's
    /// "much less uniform" one; this quantifies that.
    pub fn bin_size_cv(&self) -> f64 {
        let n = self.per_bin.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.avg_threads_per_bin();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_bin
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

impl fmt::Display for SchedulerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads in {} bins (avg {:.0}/bin, max {}, cv {:.2})",
            self.threads(),
            self.bins(),
            self.avg_threads_per_bin(),
            self.max_threads_per_bin(),
            self.bin_size_cv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution() {
        let s = SchedulerStats::from_bin_counts(vec![10, 10, 10, 10]);
        assert_eq!(s.threads(), 40);
        assert_eq!(s.bins(), 4);
        assert_eq!(s.avg_threads_per_bin(), 10.0);
        assert_eq!(s.max_threads_per_bin(), 10);
        assert_eq!(s.min_threads_per_bin(), 10);
        assert_eq!(s.bin_size_cv(), 0.0);
    }

    #[test]
    fn skewed_distribution_has_positive_cv() {
        let s = SchedulerStats::from_bin_counts(vec![1, 1, 1, 97]);
        assert_eq!(s.threads(), 100);
        assert!(s.bin_size_cv() > 1.0);
        assert_eq!(s.max_threads_per_bin(), 97);
        assert_eq!(s.min_threads_per_bin(), 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SchedulerStats::default();
        assert_eq!(s.threads(), 0);
        assert_eq!(s.bins(), 0);
        assert_eq!(s.avg_threads_per_bin(), 0.0);
        assert_eq!(s.bin_size_cv(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = SchedulerStats::from_bin_counts(vec![5, 15]);
        let text = s.to_string();
        assert!(text.contains("20 threads in 2 bins"), "{text}");
    }

    #[test]
    fn worker_stats_aggregate_and_display() {
        let mut s = SchedulerStats::from_bin_counts(vec![4, 4]);
        assert!(s.workers().is_empty());
        s.set_workers(vec![
            WorkerStats {
                bins_executed: 1,
                threads_executed: 4,
                steals_attempted: 3,
                steals_succeeded: 1,
                busy_ns: 900,
                parked_ns: 50,
            },
            WorkerStats {
                bins_executed: 1,
                threads_executed: 4,
                steals_attempted: 2,
                steals_succeeded: 0,
                busy_ns: 700,
                parked_ns: 10,
            },
        ]);
        assert_eq!(s.workers().len(), 2);
        assert_eq!(s.steals_attempted(), 5);
        assert_eq!(s.steals_succeeded(), 1);
        assert_eq!(s.makespan_ns(), 900);
        let text = s.workers()[0].to_string();
        assert!(text.contains("1/3 steals"), "{text}");
    }

    #[test]
    fn run_stats_display() {
        let r = RunStats {
            threads_run: 7,
            bins_visited: 3,
        };
        assert_eq!(r.to_string(), "7 threads in 3 bins");
    }
}

//! Scheduling statistics.

use std::fmt;

/// What one [`run`](crate::Scheduler::run) executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Threads executed.
    pub threads_run: u64,
    /// Non-empty bins visited.
    pub bins_visited: usize,
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads in {} bins",
            self.threads_run, self.bins_visited
        )
    }
}

/// Distribution of scheduled threads over bins.
///
/// The paper reports these for every benchmark, e.g. "the threaded
/// version creates 1,048,576 threads distributed in 81 bins for an
/// average of 12,945 threads per bin. The distribution of the threads
/// in the bins was quite uniform." (§4.2)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    per_bin: Vec<u64>,
}

impl SchedulerStats {
    pub(crate) fn from_bin_counts(per_bin: Vec<u64>) -> Self {
        SchedulerStats { per_bin }
    }

    /// Total scheduled threads.
    pub fn threads(&self) -> u64 {
        self.per_bin.iter().sum()
    }

    /// Number of allocated bins.
    pub fn bins(&self) -> usize {
        self.per_bin.len()
    }

    /// Thread count of each bin, in allocation order.
    pub fn threads_per_bin(&self) -> &[u64] {
        &self.per_bin
    }

    /// Mean threads per bin (0 if no bins).
    pub fn avg_threads_per_bin(&self) -> f64 {
        if self.per_bin.is_empty() {
            0.0
        } else {
            self.threads() as f64 / self.per_bin.len() as f64
        }
    }

    /// Largest bin (0 if no bins).
    pub fn max_threads_per_bin(&self) -> u64 {
        self.per_bin.iter().copied().max().unwrap_or(0)
    }

    /// Smallest bin (0 if no bins).
    pub fn min_threads_per_bin(&self) -> u64 {
        self.per_bin.iter().copied().min().unwrap_or(0)
    }

    /// Coefficient of variation of the bin sizes (standard deviation ÷
    /// mean; 0 for perfectly uniform distributions). The paper
    /// contrasts matmul's "quite uniform" distribution with N-body's
    /// "much less uniform" one; this quantifies that.
    pub fn bin_size_cv(&self) -> f64 {
        let n = self.per_bin.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.avg_threads_per_bin();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_bin
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

impl fmt::Display for SchedulerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads in {} bins (avg {:.0}/bin, max {}, cv {:.2})",
            self.threads(),
            self.bins(),
            self.avg_threads_per_bin(),
            self.max_threads_per_bin(),
            self.bin_size_cv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution() {
        let s = SchedulerStats::from_bin_counts(vec![10, 10, 10, 10]);
        assert_eq!(s.threads(), 40);
        assert_eq!(s.bins(), 4);
        assert_eq!(s.avg_threads_per_bin(), 10.0);
        assert_eq!(s.max_threads_per_bin(), 10);
        assert_eq!(s.min_threads_per_bin(), 10);
        assert_eq!(s.bin_size_cv(), 0.0);
    }

    #[test]
    fn skewed_distribution_has_positive_cv() {
        let s = SchedulerStats::from_bin_counts(vec![1, 1, 1, 97]);
        assert_eq!(s.threads(), 100);
        assert!(s.bin_size_cv() > 1.0);
        assert_eq!(s.max_threads_per_bin(), 97);
        assert_eq!(s.min_threads_per_bin(), 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SchedulerStats::default();
        assert_eq!(s.threads(), 0);
        assert_eq!(s.bins(), 0);
        assert_eq!(s.avg_threads_per_bin(), 0.0);
        assert_eq!(s.bin_size_cv(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = SchedulerStats::from_bin_counts(vec![5, 15]);
        let text = s.to_string();
        assert!(text.contains("20 threads in 2 bins"), "{text}");
    }

    #[test]
    fn run_stats_display() {
        let r = RunStats {
            threads_run: 7,
            bins_visited: 3,
        };
        assert_eq!(r.to_string(), "7 threads in 3 bins");
    }
}

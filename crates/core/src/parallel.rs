//! Symmetric-multiprocessor extension — the paper's SMP future work
//! (§7).
//!
//! "It appears that the idea proposed in this paper can be extended in
//! a straightforward manner to improve performance on symmetric
//! multiprocessors, but this remains to be demonstrated."
//!
//! [`ParScheduler`] is that demonstration: hints bin threads exactly
//! as in the sequential [`Scheduler`](crate::Scheduler), and
//! [`run`](ParScheduler::run) hands out *whole bins* to worker OS
//! threads. A bin is the unit of work distribution because it is the
//! unit of locality: every thread of a bin runs on the same core, so
//! the bin's cache-sized working set is loaded once into that core's
//! cache — per-core locality scheduling plus cache-affinity placement
//! in one mechanism (compare Squillante & Lazowska's affinity
//! scheduling, reference [38] of the paper).
//!
//! Because threads now run concurrently, bodies take the context by
//! *shared* reference (`fn(&C, usize, usize)`) and the context must be
//! [`Sync`]; writes go through interior mutability (atomics, or
//! disjoint-index cells the caller vouches for). Threads remain
//! independent and run-to-completion; there is no synchronization
//! between them beyond the final join.

use crate::stats::{RunStats, SchedulerStats};
use crate::table::BinTable;
use crate::{Hints, SchedulerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread body for parallel execution: shared context plus the two
/// word-sized arguments.
pub type ParThreadFn<C> = fn(&C, usize, usize);

#[derive(Clone, Copy, Debug)]
struct ParSpec<C> {
    func: ParThreadFn<C>,
    arg1: usize,
    arg2: usize,
}

/// A locality scheduler whose `run` executes bins on multiple worker
/// threads.
///
/// # Examples
///
/// ```
/// use locality_sched::{Hints, ParScheduler, SchedulerConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// struct Ctx {
///     sums: Vec<AtomicU64>,
/// }
/// fn body(ctx: &Ctx, slot: usize, value: usize) {
///     ctx.sums[slot].fetch_add(value as u64, Ordering::Relaxed);
/// }
///
/// let mut sched = ParScheduler::new(SchedulerConfig::default());
/// for i in 0..100usize {
///     sched.fork(body, i % 4, i, Hints::one((i as u64 * 100_000).into()));
/// }
/// let ctx = Ctx {
///     sums: (0..4).map(|_| AtomicU64::new(0)).collect(),
/// };
/// let stats = sched.run(&ctx, 4);
/// assert_eq!(stats.threads_run, 100);
/// let total: u64 = ctx.sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
/// assert_eq!(total, (0..100).sum::<usize>() as u64);
/// ```
#[derive(Debug)]
pub struct ParScheduler<C> {
    config: SchedulerConfig,
    table: BinTable,
    bins: Vec<Vec<ParSpec<C>>>,
    threads: u64,
}

impl<C: Sync> ParScheduler<C> {
    /// Creates an empty parallel scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        ParScheduler {
            table: BinTable::new(config.hash_size()),
            bins: Vec::new(),
            threads: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Creates and schedules a thread to call `func(ctx, arg1, arg2)`,
    /// binned by `hints`.
    pub fn fork(&mut self, func: ParThreadFn<C>, arg1: usize, arg2: usize, hints: Hints) {
        let key = self.config.block_coords(hints);
        let (id, created) = self.table.lookup_or_insert(key);
        if created {
            self.bins.push(Vec::new());
        }
        self.bins[id as usize].push(ParSpec { func, arg1, arg2 });
        self.threads += 1;
    }

    /// Number of threads currently scheduled.
    pub fn pending(&self) -> u64 {
        self.threads
    }

    /// Number of bins currently allocated.
    pub fn bins(&self) -> usize {
        self.table.len()
    }

    /// Distribution statistics over the current schedule.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats::from_bin_counts(self.bins.iter().map(|b| b.len() as u64).collect())
    }

    /// Runs and consumes every scheduled thread on `workers` OS
    /// threads. Bins are claimed atomically in tour order; each bin is
    /// executed to completion by one worker.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, or propagates a panic from a thread
    /// body.
    pub fn run(&mut self, ctx: &C, workers: usize) -> RunStats {
        assert!(workers > 0, "need at least one worker");
        let order = self.config.tour().order(self.table.keys());
        let bins = &self.bins;
        let cursor = AtomicUsize::new(0);
        let threads_run: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let order = &order;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut ran = 0u64;
                        loop {
                            let next = cursor.fetch_add(1, Ordering::Relaxed);
                            if next >= order.len() {
                                return ran;
                            }
                            let bin = &bins[order[next] as usize];
                            for spec in bin {
                                (spec.func)(ctx, spec.arg1, spec.arg2);
                            }
                            ran += bin.len() as u64;
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        });
        let bins_visited = self.bins.iter().filter(|b| !b.is_empty()).count();
        self.table.clear();
        self.bins.clear();
        self.threads = 0;
        RunStats {
            threads_run,
            bins_visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtrace::Addr;
    use std::sync::atomic::AtomicU64;

    struct Counters {
        slots: Vec<AtomicU64>,
    }

    fn bump(ctx: &Counters, slot: usize, value: usize) {
        ctx.slots[slot].fetch_add(value as u64, Ordering::Relaxed);
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::builder().block_size(4096).build().unwrap()
    }

    fn counters(n: usize) -> Counters {
        Counters {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[test]
    fn every_thread_runs_exactly_once_in_parallel() {
        for workers in [1, 2, 4, 8] {
            let mut sched: ParScheduler<Counters> = ParScheduler::new(config());
            for i in 0..1000usize {
                sched.fork(
                    bump,
                    i % 10,
                    1,
                    Hints::one(Addr::new((i as u64 % 64) * 100_000)),
                );
            }
            assert_eq!(sched.pending(), 1000);
            let ctx = counters(10);
            let stats = sched.run(&ctx, workers);
            assert_eq!(stats.threads_run, 1000, "workers = {workers}");
            let total: u64 = ctx.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
            assert_eq!(total, 1000);
            assert_eq!(sched.pending(), 0);
        }
    }

    #[test]
    fn single_worker_matches_sequential_semantics() {
        // With one worker, bins run in tour order just like the
        // sequential scheduler.
        struct OrderLog {
            order: std::sync::Mutex<Vec<usize>>,
        }
        fn log_it(ctx: &OrderLog, i: usize, _j: usize) {
            ctx.order.lock().unwrap().push(i);
        }
        let mut sched: ParScheduler<OrderLog> = ParScheduler::new(config());
        for i in 0..6usize {
            let addr = if i % 2 == 0 { 0u64 } else { 1 << 30 };
            sched.fork(log_it, i, 0, Hints::one(Addr::new(addr)));
        }
        let ctx = OrderLog {
            order: std::sync::Mutex::new(Vec::new()),
        };
        sched.run(&ctx, 1);
        assert_eq!(*ctx.order.lock().unwrap(), vec![0, 2, 4, 1, 3, 5]);
    }

    #[test]
    fn bins_never_split_across_workers() {
        // Tag each thread with its bin; assert all threads of a bin saw
        // the same worker (thread id).
        struct BinWorkers {
            seen: Vec<std::sync::Mutex<Option<std::thread::ThreadId>>>,
            violations: AtomicU64,
        }
        fn check(ctx: &BinWorkers, bin: usize, _j: usize) {
            let me = std::thread::current().id();
            let mut slot = ctx.seen[bin].lock().unwrap();
            match *slot {
                None => *slot = Some(me),
                Some(owner) => {
                    if owner != me {
                        ctx.violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let bins = 16usize;
        let mut sched: ParScheduler<BinWorkers> = ParScheduler::new(config());
        for i in 0..800usize {
            let bin = i % bins;
            sched.fork(check, bin, 0, Hints::one(Addr::new(bin as u64 * 1_000_000)));
        }
        let ctx = BinWorkers {
            seen: (0..bins).map(|_| std::sync::Mutex::new(None)).collect(),
            violations: AtomicU64::new(0),
        };
        sched.run(&ctx, 4);
        assert_eq!(ctx.violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn more_workers_than_bins_is_fine() {
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config());
        sched.fork(bump, 0, 5, Hints::none());
        let ctx = counters(1);
        let stats = sched.run(&ctx, 16);
        assert_eq!(stats.threads_run, 1);
        assert_eq!(ctx.slots[0].load(Ordering::Relaxed), 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let mut sched: ParScheduler<Counters> = ParScheduler::new(config());
        let ctx = counters(1);
        let _ = sched.run(&ctx, 0);
    }
}
